"""Abstract syntax tree for the warehouse SQL dialect.

The AST is deliberately independent of the algebra and the catalog: the
parser produces it from tokens alone, and the translator resolves names
and types afterwards.  All nodes are frozen dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple, Union


@dataclass(frozen=True)
class ColumnName:
    """A possibly-qualified column reference as written in the query."""

    table: Optional[str]
    name: str

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class LiteralValue:
    """A constant as written in the query (string, int, or float)."""

    value: Any

    def __str__(self) -> str:
        return repr(self.value)


Operand = Union[ColumnName, LiteralValue]


@dataclass(frozen=True)
class ComparisonCondition:
    """``left <op> right`` with op in =, !=, <, <=, >, >=."""

    op: str
    left: Operand
    right: Operand

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class BooleanCondition:
    """``AND``/``OR`` over two or more conditions."""

    op: str  # "and" | "or"
    parts: Tuple["Condition", ...]

    def __str__(self) -> str:
        joiner = f" {self.op.upper()} "
        return "(" + joiner.join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class NotCondition:
    operand: "Condition"

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


Condition = Union[ComparisonCondition, BooleanCondition, NotCondition]


@dataclass(frozen=True)
class AggregateCall:
    """``FUNC(column)`` or ``COUNT(*)`` in a select list."""

    function: str  # count/sum/avg/min/max (lowercase)
    argument: Optional[ColumnName]  # None only for COUNT(*)

    def __str__(self) -> str:
        inner = str(self.argument) if self.argument else "*"
        return f"{self.function.upper()}({inner})"


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: a column or aggregate, optionally aliased."""

    expression: Union[ColumnName, AggregateCall]
    alias: Optional[str] = None

    def __str__(self) -> str:
        rendered = str(self.expression)
        return f"{rendered} AS {self.alias}" if self.alias else rendered


@dataclass(frozen=True)
class TableRef:
    """A FROM-list entry, optionally aliased (``Product Pd``)."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name the table is known by inside the query."""
        return self.alias or self.name

    def __str__(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key: a column and its direction."""

    column: ColumnName
    ascending: bool = True

    def __str__(self) -> str:
        return f"{self.column} {'ASC' if self.ascending else 'DESC'}"


@dataclass(frozen=True)
class SelectStatement:
    """A full ``SELECT`` statement.

    ``select_items`` is empty for ``SELECT *``.
    """

    select_items: Tuple[SelectItem, ...]
    tables: Tuple[TableRef, ...]
    where: Optional[Condition] = None
    group_by: Tuple[ColumnName, ...] = field(default_factory=tuple)
    order_by: Tuple[OrderItem, ...] = field(default_factory=tuple)
    limit: Optional[int] = None
    distinct: bool = False

    @property
    def is_star(self) -> bool:
        return not self.select_items

    @property
    def has_aggregates(self) -> bool:
        return any(
            isinstance(item.expression, AggregateCall) for item in self.select_items
        )

    def __str__(self) -> str:
        select = "*" if self.is_star else ", ".join(str(i) for i in self.select_items)
        qualifier = "DISTINCT " if self.distinct else ""
        text = f"SELECT {qualifier}{select} FROM {', '.join(str(t) for t in self.tables)}"
        if self.where is not None:
            text += f" WHERE {self.where}"
        if self.group_by:
            text += f" GROUP BY {', '.join(str(c) for c in self.group_by)}"
        if self.order_by:
            text += f" ORDER BY {', '.join(str(o) for o in self.order_by)}"
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        return text
