"""Tokenizer for the warehouse SQL dialect.

The dialect covers the paper's query class: ``SELECT``/``FROM``/``WHERE``
with comparison predicates and ``AND``/``OR``/``NOT``, plus the
aggregation extension (``GROUP BY``, ``COUNT/SUM/AVG/MIN/MAX``, ``AS``).
Keywords are case-insensitive; identifiers preserve case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator, List

from repro.errors import LexerError

KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "AND",
        "OR",
        "NOT",
        "GROUP",
        "BY",
        "AS",
        "JOIN",
        "ON",
        "BETWEEN",
        "IN",
        "COUNT",
        "SUM",
        "AVG",
        "MIN",
        "MAX",
    }
)

#: Multi-character operators must be listed before their prefixes.
OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">")

PUNCTUATION = {",": "COMMA", "(": "LPAREN", ")": "RPAREN", ".": "DOT", "*": "STAR"}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    DOT = "dot"
    STAR = "star"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Any
    position: int

    def matches(self, token_type: TokenType, value: Any = None) -> bool:
        if self.type is not token_type:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; raises :class:`LexerError` on invalid input."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'" or ch == '"':
            end = text.find(ch, i + 1)
            if end < 0:
                raise LexerError("unterminated string literal", i)
            yield Token(TokenType.STRING, text[i + 1 : end], i)
            i = end + 1
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A trailing dot starts qualification, not a float.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            raw = text[i:j]
            value: Any = float(raw) if "." in raw else int(raw)
            yield Token(TokenType.NUMBER, value, i)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                yield Token(TokenType.KEYWORD, word.upper(), i)
            else:
                yield Token(TokenType.IDENT, word, i)
            i = j
            continue
        matched_operator = next(
            (op for op in OPERATORS if text.startswith(op, i)), None
        )
        if matched_operator is not None:
            canonical = "!=" if matched_operator == "<>" else matched_operator
            yield Token(TokenType.OPERATOR, canonical, i)
            i += len(matched_operator)
            continue
        if ch in PUNCTUATION:
            yield Token(TokenType[PUNCTUATION[ch]], ch, i)
            i += 1
            continue
        raise LexerError(f"unexpected character {ch!r}", i)
    yield Token(TokenType.EOF, None, n)
