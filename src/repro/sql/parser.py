"""Recursive-descent parser for the warehouse SQL dialect.

Grammar (keywords case-insensitive)::

    statement   := SELECT select_list FROM table_list
                   [WHERE condition] [GROUP BY column_list]
                   [ORDER BY column [ASC|DESC] (',' ...)*] [LIMIT NUMBER]
    select_list := '*' | select_item (',' select_item)*
    select_item := aggregate | column [AS ident]
    aggregate   := FUNC '(' (column | '*') ')' [AS ident]
    table_list  := join_chain (',' join_chain)*
    join_chain  := table_ref (JOIN table_ref ON condition)*
    table_ref   := ident [ident]              -- optional alias
    condition   := and_cond (OR and_cond)*
    and_cond    := not_cond (AND not_cond)*
    not_cond    := NOT not_cond | primary
    primary     := '(' condition ')'
                 | operand OP operand
                 | operand [NOT] BETWEEN operand AND operand
                 | operand [NOT] IN '(' literal (',' literal)* ')'
    operand     := column | NUMBER | STRING
    column      := ident ['.' ident]

``JOIN ... ON`` conditions are folded into the WHERE conjunction;
``BETWEEN`` and ``IN`` desugar to comparison combinations, so the
algebra layer sees only the core condition forms.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import ParseError
from repro.sql.ast_nodes import (
    AggregateCall,
    BooleanCondition,
    ColumnName,
    ComparisonCondition,
    Condition,
    LiteralValue,
    NotCondition,
    Operand,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize

AGGREGATE_KEYWORDS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


def parse(sql: str) -> SelectStatement:
    """Parse ``sql`` into a :class:`SelectStatement`."""
    return _Parser(tokenize(sql)).parse_statement()


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # ---------------------------------------------------------------- utils
    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        self._pos += 1
        return token

    def _expect(self, token_type: TokenType, value: Optional[str] = None) -> Token:
        token = self._current
        if not token.matches(token_type, value):
            wanted = value or token_type.value
            raise ParseError(
                f"expected {wanted} at position {token.position}, "
                f"found {token.value!r}"
            )
        return self._advance()

    def _accept(self, token_type: TokenType, value: Optional[str] = None) -> Optional[Token]:
        if self._current.matches(token_type, value):
            return self._advance()
        return None

    def _accept_soft(self, word: str) -> Optional[Token]:
        """Accept a *soft* keyword: an identifier matching ``word``
        case-insensitively.  ORDER/ASC/DESC/LIMIT are soft so that
        relations named e.g. ``Order`` (the paper's schema!) keep
        working as plain identifiers."""
        token = self._current
        if token.type is TokenType.IDENT and token.value.upper() == word:
            return self._advance()
        return None

    def _accept_distinct(self) -> bool:
        """DISTINCT is soft too: ``SELECT distinct FROM R`` reads a
        *column* named distinct.  It is the keyword only when another
        select item follows it (a select list cannot be empty)."""
        token = self._current
        if token.type is not TokenType.IDENT or token.value.upper() != "DISTINCT":
            return False
        following = self._tokens[self._pos + 1]
        if following.matches(TokenType.KEYWORD, "FROM") or (
            following.type in (TokenType.COMMA, TokenType.EOF)
        ):
            return False
        self._advance()
        return True

    # ------------------------------------------------------------ statement
    def parse_statement(self) -> SelectStatement:
        self._expect(TokenType.KEYWORD, "SELECT")
        distinct = self._accept_distinct()
        select_items = self._parse_select_list()
        self._expect(TokenType.KEYWORD, "FROM")
        tables, join_conditions = self._parse_table_list()
        where = None
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._parse_condition()
        group_by: Tuple[ColumnName, ...] = ()
        if self._accept(TokenType.KEYWORD, "GROUP"):
            self._expect(TokenType.KEYWORD, "BY")
            group_by = self._parse_column_list()
        order_by = ()
        if self._accept_soft("ORDER"):
            self._expect(TokenType.KEYWORD, "BY")
            order_by = self._parse_order_list()
        limit = None
        if self._accept_soft("LIMIT"):
            token = self._expect(TokenType.NUMBER)
            if not isinstance(token.value, int) or token.value < 0:
                raise ParseError(
                    f"LIMIT requires a non-negative integer, got {token.value!r}"
                )
            limit = token.value
        self._expect(TokenType.EOF)
        conditions = list(join_conditions)
        if where is not None:
            conditions.append(where)
        if not conditions:
            combined = None
        elif len(conditions) == 1:
            combined = conditions[0]
        else:
            combined = BooleanCondition("and", tuple(conditions))
        return SelectStatement(
            select_items, tables, combined, group_by, order_by, limit, distinct
        )

    def _parse_select_list(self) -> Tuple[SelectItem, ...]:
        if self._accept(TokenType.STAR):
            return ()
        items = [self._parse_select_item()]
        while self._accept(TokenType.COMMA):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        expression: Union[ColumnName, AggregateCall]
        if self._current.type is TokenType.KEYWORD and self._current.value in AGGREGATE_KEYWORDS:
            function = self._advance().value.lower()
            self._expect(TokenType.LPAREN)
            if self._accept(TokenType.STAR):
                argument = None
                if function != "count":
                    raise ParseError(f"{function.upper()}(*) is not valid")
            else:
                argument = self._parse_column()
            self._expect(TokenType.RPAREN)
            expression = AggregateCall(function, argument)
        else:
            expression = self._parse_column()
        alias = None
        if self._accept(TokenType.KEYWORD, "AS"):
            alias = self._expect(TokenType.IDENT).value
        return SelectItem(expression, alias)

    def _parse_table_list(self):
        """Comma-separated JOIN chains; returns (tables, ON conditions)."""
        tables: List[TableRef] = []
        conditions: List[Condition] = []

        def parse_chain() -> None:
            tables.append(self._parse_table_ref())
            while self._accept(TokenType.KEYWORD, "JOIN"):
                tables.append(self._parse_table_ref())
                self._expect(TokenType.KEYWORD, "ON")
                conditions.append(self._parse_condition())

        parse_chain()
        while self._accept(TokenType.COMMA):
            parse_chain()
        return tuple(tables), tuple(conditions)

    def _parse_table_ref(self) -> TableRef:
        name = self._expect(TokenType.IDENT).value
        alias = None
        token = self._current
        # An identifier after the table name is an alias — unless it is
        # one of the soft keywords that may legally follow a FROM list.
        if token.type is TokenType.IDENT and token.value.upper() not in (
            "ORDER",
            "LIMIT",
        ):
            alias = self._advance().value
        return TableRef(name, alias)

    def _parse_order_list(self):
        items = [self._parse_order_item()]
        while self._accept(TokenType.COMMA):
            items.append(self._parse_order_item())
        return tuple(items)

    def _parse_order_item(self) -> OrderItem:
        column = self._parse_column()
        ascending = True
        if self._accept_soft("DESC"):
            ascending = False
        else:
            self._accept_soft("ASC")
        return OrderItem(column, ascending)

    def _parse_column_list(self) -> Tuple[ColumnName, ...]:
        columns = [self._parse_column()]
        while self._accept(TokenType.COMMA):
            columns.append(self._parse_column())
        return tuple(columns)

    def _parse_column(self) -> ColumnName:
        first = self._expect(TokenType.IDENT).value
        if self._accept(TokenType.DOT):
            second = self._expect(TokenType.IDENT).value
            return ColumnName(first, second)
        return ColumnName(None, first)

    # ------------------------------------------------------------ condition
    def _parse_condition(self) -> Condition:
        parts = [self._parse_and_condition()]
        while self._accept(TokenType.KEYWORD, "OR"):
            parts.append(self._parse_and_condition())
        if len(parts) == 1:
            return parts[0]
        return BooleanCondition("or", tuple(parts))

    def _parse_and_condition(self) -> Condition:
        parts = [self._parse_not_condition()]
        while self._accept(TokenType.KEYWORD, "AND"):
            parts.append(self._parse_not_condition())
        if len(parts) == 1:
            return parts[0]
        return BooleanCondition("and", tuple(parts))

    def _parse_not_condition(self) -> Condition:
        if self._accept(TokenType.KEYWORD, "NOT"):
            return NotCondition(self._parse_not_condition())
        return self._parse_primary_condition()

    def _parse_primary_condition(self) -> Condition:
        if self._accept(TokenType.LPAREN):
            inner = self._parse_condition()
            self._expect(TokenType.RPAREN)
            return inner
        left = self._parse_operand()
        negated = self._accept(TokenType.KEYWORD, "NOT") is not None
        if self._accept(TokenType.KEYWORD, "BETWEEN"):
            condition = self._parse_between(left)
        elif self._accept(TokenType.KEYWORD, "IN"):
            condition = self._parse_in(left)
        elif negated:
            raise ParseError(
                "NOT after an operand must introduce BETWEEN or IN"
            )
        else:
            op = self._expect(TokenType.OPERATOR).value
            right = self._parse_operand()
            condition = ComparisonCondition(op, left, right)
        return NotCondition(condition) if negated else condition

    def _parse_between(self, left: Operand) -> Condition:
        """Desugar ``x BETWEEN a AND b`` into ``x >= a AND x <= b``."""
        low = self._parse_operand()
        self._expect(TokenType.KEYWORD, "AND")
        high = self._parse_operand()
        return BooleanCondition(
            "and",
            (
                ComparisonCondition(">=", left, low),
                ComparisonCondition("<=", left, high),
            ),
        )

    def _parse_in(self, left: Operand) -> Condition:
        """Desugar ``x IN (a, b, ...)`` into a disjunction of equalities."""
        self._expect(TokenType.LPAREN)
        members = [self._parse_operand()]
        while self._accept(TokenType.COMMA):
            members.append(self._parse_operand())
        self._expect(TokenType.RPAREN)
        comparisons = tuple(
            ComparisonCondition("=", left, member) for member in members
        )
        if len(comparisons) == 1:
            return comparisons[0]
        return BooleanCondition("or", comparisons)

    def _parse_operand(self) -> Operand:
        token = self._current
        if token.type is TokenType.NUMBER or token.type is TokenType.STRING:
            self._advance()
            return LiteralValue(token.value)
        if token.type is TokenType.IDENT:
            return self._parse_column()
        raise ParseError(
            f"expected column or literal at position {token.position}, "
            f"found {token.value!r}"
        )
