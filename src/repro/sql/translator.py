"""Translate parsed SQL into relational algebra.

The translator resolves every column reference against the catalog to a
fully qualified name (``"Division.city"``), types literals (strings
compared to DATE columns become dates), and produces a canonical initial
plan:

    Project( [Aggregate(] Select( left-deep join tree ) [)] )

Join order follows FROM-list order, connecting each new table through the
available equi-join predicates; the optimizer replaces this with the
cost-based order afterwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra import predicates as P
from repro.algebra.expressions import (
    ColumnRef,
    Comparison,
    Expression,
    Literal,
)
from repro.algebra.operators import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
    Join,
    Limit,
    Operator,
    Relation,
    Sort,
    project_if,
    select_if,
)
from repro.catalog.datatypes import DataType
from repro.catalog.schema import Catalog, RelationSchema
from repro.errors import TranslationError
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse


def parse_query(sql: str, catalog: Catalog) -> Operator:
    """Parse and translate ``sql`` in one step."""
    return translate(parse(sql), catalog)


def translate(statement: ast.SelectStatement, catalog: Catalog) -> Operator:
    """Translate a parsed statement into an operator tree."""
    return _Translator(statement, catalog).build()


class _Translator:
    def __init__(self, statement: ast.SelectStatement, catalog: Catalog):
        self._statement = statement
        self._catalog = catalog
        # binding (alias or table name) -> real relation name
        self._bindings: Dict[str, str] = {}
        # real relation name -> original (unqualified) schema
        self._schemas: Dict[str, RelationSchema] = {}
        for table in statement.tables:
            schema = catalog.schema(table.name)  # raises UnknownRelationError
            if table.name in self._schemas:
                raise TranslationError(
                    f"relation {table.name!r} appears twice in FROM; "
                    f"self-joins are not supported"
                )
            self._schemas[table.name] = schema
            for binding in dict.fromkeys((table.binding, table.name)):
                if binding in self._bindings and self._bindings[binding] != table.name:
                    raise TranslationError(f"ambiguous table binding {binding!r}")
                self._bindings[binding] = table.name

    # ------------------------------------------------------------- building
    def build(self) -> Operator:
        where = (
            self._translate_condition(self._statement.where)
            if self._statement.where is not None
            else None
        )
        selections, joins = P.split_selection_and_join(where)
        plan = self._build_join_tree(list(joins))
        plan = select_if(plan, P.conjunction(selections))
        plan = self._apply_aggregation(plan)
        plan = self._apply_projection(plan)
        return self._apply_order_limit(plan)

    def _build_join_tree(self, join_predicates: List[Expression]) -> Operator:
        tables = self._statement.tables
        remaining = [Relation(t.name, self._schemas[t.name].qualify()) for t in tables]
        plan = remaining.pop(0)
        pending = list(join_predicates)
        while remaining:
            chosen_index = None
            for index, leaf in enumerate(remaining):
                if self._connecting(pending, plan, leaf):
                    chosen_index = index
                    break
            if chosen_index is None:
                chosen_index = 0  # cross product with the next table
            leaf = remaining.pop(chosen_index)
            applicable = self._connecting(pending, plan, leaf)
            for predicate in applicable:
                pending.remove(predicate)
            plan = Join(plan, leaf, P.conjunction(applicable))
        if pending:
            # Join predicates that became selections (all operands now in
            # one subtree) are applied above the completed tree.
            plan = select_if(plan, P.conjunction(pending))
        return plan

    @staticmethod
    def _connecting(
        predicates: Sequence[Expression], left: Operator, right: Operator
    ) -> List[Expression]:
        """Predicates joining ``left``'s columns with ``right``'s."""
        left_cols = set(left.schema.attribute_names)
        right_cols = set(right.schema.attribute_names)
        out = []
        for predicate in predicates:
            columns = predicate.columns()
            if (
                columns & left_cols
                and columns & right_cols
                and columns <= (left_cols | right_cols)
            ):
                out.append(predicate)
        return out

    def _apply_aggregation(self, plan: Operator) -> Operator:
        statement = self._statement
        if not statement.has_aggregates and not statement.group_by:
            return plan
        group_by = [self._resolve(c).name for c in statement.group_by]
        specs = []
        plain_columns = []
        for item in statement.select_items:
            if isinstance(item.expression, ast.AggregateCall):
                call = item.expression
                argument = (
                    self._resolve(call.argument).name if call.argument else None
                )
                specs.append(
                    AggregateSpec(AggregateFunction(call.function), argument, item.alias)
                )
            else:
                plain_columns.append(self._resolve(item.expression).name)
        not_grouped = [c for c in plain_columns if c not in group_by]
        if not_grouped:
            raise TranslationError(
                f"non-aggregated columns {not_grouped} must appear in GROUP BY"
            )
        return Aggregate(plan, group_by, specs)

    def _apply_projection(self, plan: Operator) -> Operator:
        statement = self._statement
        if statement.is_star:
            if statement.distinct:
                return project_if(
                    plan, plan.schema.attribute_names, distinct=True
                )
            return plan
        output = []
        for item in statement.select_items:
            if isinstance(item.expression, ast.AggregateCall):
                call = item.expression
                argument = self._resolve(call.argument).name if call.argument else None
                spec = AggregateSpec(AggregateFunction(call.function), argument, item.alias)
                output.append(spec.alias)
            else:
                if item.alias is not None:
                    raise TranslationError("column aliases (AS) on plain columns are not supported")
                output.append(self._resolve(item.expression).name)
        return project_if(plan, output, distinct=statement.distinct)

    def _apply_order_limit(self, plan: Operator) -> Operator:
        statement = self._statement
        if statement.order_by:
            keys = []
            for item in statement.order_by:
                keys.append(
                    (self._resolve_output(plan, item.column), item.ascending)
                )
            plan = Sort(plan, keys)
        if statement.limit is not None:
            plan = Limit(plan, statement.limit)
        return plan

    def _resolve_output(self, plan: Operator, column: ast.ColumnName) -> str:
        """Resolve an ORDER BY key against the query's output schema
        (covering aggregate aliases such as ``ORDER BY total``)."""
        from repro.errors import UnknownAttributeError

        candidates = []
        if column.table is not None:
            real = self._bindings.get(column.table, column.table)
            candidates.append(f"{real}.{column.name}")
        candidates.append(column.name)
        for candidate in candidates:
            try:
                return plan.schema.attribute(candidate).name
            except UnknownAttributeError:
                continue
        raise TranslationError(
            f"ORDER BY column {column} must appear in the query output"
        )

    # ----------------------------------------------------------- resolution
    def _resolve(self, column: ast.ColumnName) -> ColumnRef:
        """Resolve an AST column to a qualified :class:`ColumnRef`."""
        if column.table is not None:
            real = self._bindings.get(column.table)
            if real is None:
                raise TranslationError(f"unknown table reference {column.table!r}")
            schema = self._schemas[real]
            attribute = schema.attribute(column.name)  # raises if absent
            return ColumnRef(f"{real}.{attribute.name}")
        owners = [
            name for name, schema in self._schemas.items() if column.name in schema
        ]
        if not owners:
            raise TranslationError(f"unknown column {column.name!r}")
        if len(owners) > 1:
            raise TranslationError(
                f"ambiguous column {column.name!r}: owned by {sorted(owners)}"
            )
        real = owners[0]
        attribute = self._schemas[real].attribute(column.name)
        return ColumnRef(f"{real}.{attribute.name}")

    def _column_type(self, reference: ColumnRef) -> DataType:
        relation, short = reference.name.split(".", 1)
        return self._schemas[relation].attribute(short).datatype

    def _translate_condition(self, condition: ast.Condition) -> Expression:
        if isinstance(condition, ast.ComparisonCondition):
            return self._translate_comparison(condition)
        if isinstance(condition, ast.BooleanCondition):
            parts = [self._translate_condition(p) for p in condition.parts]
            combined = (
                P.conjunction(parts) if condition.op == "and" else P.disjunction(parts)
            )
            if combined is None:
                raise TranslationError("boolean condition collapsed to TRUE")
            return combined
        if isinstance(condition, ast.NotCondition):
            return P.negate(self._translate_condition(condition.operand))
        raise TranslationError(f"unsupported condition node: {condition!r}")

    def _translate_comparison(self, condition: ast.ComparisonCondition) -> Comparison:
        left = self._translate_operand(condition.left)
        right = self._translate_operand(condition.right)
        # Type literals against the column they are compared with, so date
        # strings like '1996-07-01' become DATE values.
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            right = self._coerce(right, self._column_type(left))
        elif isinstance(right, ColumnRef) and isinstance(left, Literal):
            left = self._coerce(left, self._column_type(right))
        return Comparison(condition.op, left, right)

    def _translate_operand(self, operand: ast.Operand) -> Expression:
        if isinstance(operand, ast.ColumnName):
            return self._resolve(operand)
        return Literal(operand.value)

    @staticmethod
    def _coerce(literal: Literal, target: DataType) -> Literal:
        if literal.datatype is target:
            return literal
        if target is DataType.DATE and literal.datatype is DataType.STRING:
            try:
                return Literal(target.parse(literal.value), target)
            except (ValueError, TypeError) as exc:
                raise TranslationError(
                    f"cannot parse {literal.value!r} as a date"
                ) from exc
        if target is DataType.FLOAT and literal.datatype is DataType.INTEGER:
            return Literal(float(literal.value), target)
        if target is DataType.INTEGER and literal.datatype is DataType.FLOAT:
            return literal  # numeric comparison works across int/float
        if target is DataType.STRING and literal.datatype is DataType.STRING:
            return literal
        if literal.datatype.is_numeric and target.is_numeric:
            return literal
        raise TranslationError(
            f"literal {literal.value!r} is incompatible with column type {target.name}"
        )
