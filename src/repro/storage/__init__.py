"""Physical storage: block-structured tables, indexes, I/O accounting."""

from repro.storage.block import IOCounter, IOSnapshot, block_count
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.table import DEFAULT_BLOCKING_FACTOR, Table, table_from_rows

__all__ = [
    "DEFAULT_BLOCKING_FACTOR",
    "HashIndex",
    "IOCounter",
    "IOSnapshot",
    "SortedIndex",
    "Table",
    "block_count",
    "table_from_rows",
]
