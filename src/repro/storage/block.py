"""Block-granular I/O accounting.

The paper's cost unit is the *block access*.  The storage engine tracks
every block read and write through an :class:`IOCounter`, so the executor
can report measured block I/O that is directly comparable to the
analytical cost model's predictions (the cost-model validation tests rely
on this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import obs


@dataclass
class IOSnapshot:
    """Immutable copy of the counters at one point in time."""

    reads: int
    writes: int

    @property
    def total(self) -> int:
        return self.reads + self.writes


class IOCounter:
    """Mutable block-I/O counters shared by tables and operators."""

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0

    def read_blocks(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"negative block read count: {count}")
        self.reads += count
        if obs.enabled():
            obs.metrics().counter("storage.blocks_read").inc(count)

    def write_blocks(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"negative block write count: {count}")
        self.writes += count
        if obs.enabled():
            obs.metrics().counter("storage.blocks_written").inc(count)

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0

    def snapshot(self) -> IOSnapshot:
        return IOSnapshot(self.reads, self.writes)

    def since(self, snapshot: IOSnapshot) -> IOSnapshot:
        """Counters accumulated since ``snapshot`` was taken."""
        return IOSnapshot(self.reads - snapshot.reads, self.writes - snapshot.writes)

    def __repr__(self) -> str:
        return f"IOCounter(reads={self.reads}, writes={self.writes})"


def block_count(row_count: int, blocking_factor: float) -> int:
    """Blocks occupied by ``row_count`` rows at ``blocking_factor``."""
    if row_count <= 0:
        return 0
    return max(1, math.ceil(row_count / max(blocking_factor, 1e-9)))
