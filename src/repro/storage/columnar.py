"""Columnar chunk views over block-structured tables.

The vectorized executor (``repro.executor.physical``) consumes tables
column-at-a-time.  :class:`ColumnView` is a lazily built, cached
transposition of a :class:`~repro.storage.table.Table`'s rows: one
Python list per attribute, built on first access and invalidated by the
table whenever its rows change (:meth:`Table.insert`,
:meth:`Table.insert_many`, :meth:`Table.clear`).

The view is purely an in-memory access path — it never touches the
table's :class:`~repro.storage.block.IOCounter`.  Block I/O accounting
stays exactly where the row engine put it: operators charge reads and
writes at scan/materialize boundaries, whether they then iterate rows
or columns.

Fault-injecting proxies (:class:`repro.resilience.faults.FaultyTable`)
share the wrapped table's view instance, so a mutation through either
handle invalidates the one cache both sides read.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class ColumnView:
    """A cached column-major view of one table's rows.

    Columns are plain Python lists aligned by row position; ``None``
    marks SQL NULL exactly as in the row representation.  The cache
    maps attribute *names* (the table schema's qualified names) to
    columns and is rebuilt per column on demand after invalidation.
    """

    __slots__ = ("_table", "_columns", "_cardinality")

    def __init__(self, table) -> None:
        self._table = table
        self._columns: Dict[str, List[object]] = {}
        self._cardinality: int = -1

    def invalidate(self) -> None:
        """Drop all cached columns (called by the owning table)."""
        self._columns.clear()
        self._cardinality = -1

    @property
    def cardinality(self) -> int:
        """Row count the cached columns correspond to."""
        return len(self._table._rows)

    def column(self, name: str) -> List[object]:
        """The values of attribute ``name`` in row order (cached).

        ``name`` must be an exact qualified attribute name from the
        table's schema (callers resolve short names first, with the
        same rules the row engine uses).
        """
        rows = self._table._rows
        if self._cardinality != len(rows):
            # Stale for a reason invalidation didn't see (defensive —
            # direct ``_rows`` mutation); rebuild everything lazily.
            self.invalidate()
            self._cardinality = len(rows)
        column = self._columns.get(name)
        if column is None:
            column = [row[name] for row in rows]
            self._columns[name] = column
        return column

    def columns(self, names) -> List[List[object]]:
        """Columns for ``names`` (exact qualified names), in order."""
        return [self.column(name) for name in names]

    def has_cached(self, name: str) -> bool:
        """Whether ``name`` is currently materialized (for tests)."""
        return name in self._columns


def column_view_of(table) -> Optional[ColumnView]:
    """The table's view if it supports one (``None`` otherwise)."""
    getter = getattr(table, "column_view", None)
    if getter is None:
        return None
    return getter()
