"""Secondary indexes over heap tables.

The paper argues (Section 3.2) that an index can always be built on a
materialized intermediate result, guaranteeing a performance gain; these
index structures back that claim in the execution engine and in the
maintenance layer (delta joins probe indexes instead of rescanning).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Tuple

from repro.errors import StorageError
from repro.storage.block import block_count
from repro.storage.table import Table


class HashIndex:
    """Equality index: attribute value -> matching rows.

    Lookups charge ``ceil(matches / blocking_factor)`` block reads (the
    blocks holding the matches) plus one read for the index probe itself.
    """

    def __init__(self, table: Table, attribute: str):
        self.table = table
        self.attribute = table.schema.attribute(attribute).name
        self._buckets: Dict[Any, List[int]] = {}
        self.rebuild()

    def rebuild(self) -> None:
        self._buckets.clear()
        for position, row in enumerate(self.table.rows()):
            self._buckets.setdefault(row[self.attribute], []).append(position)

    def lookup(self, value: Any, count_io: bool = True) -> List[Dict[str, Any]]:
        positions = self._buckets.get(value, [])
        if count_io:
            self.table.io.read_blocks(
                1 + block_count(len(positions), self.table.blocking_factor)
            )
        rows = self.table.rows()
        return [rows[p] for p in positions]

    def __len__(self) -> int:
        return sum(len(v) for v in self._buckets.values())


class SortedIndex:
    """Ordered index supporting range lookups via binary search."""

    def __init__(self, table: Table, attribute: str):
        self.table = table
        self.attribute = table.schema.attribute(attribute).name
        self._entries: List[Tuple[Any, int]] = []
        self.rebuild()

    def rebuild(self) -> None:
        self._entries = sorted(
            (row[self.attribute], position)
            for position, row in enumerate(self.table.rows())
            if row[self.attribute] is not None
        )

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
        count_io: bool = True,
    ) -> List[Dict[str, Any]]:
        """Rows with ``low <op> attribute <op> high`` (None = unbounded)."""
        keys = [entry[0] for entry in self._entries]
        start = 0
        if low is not None:
            start = (
                bisect.bisect_left(keys, low)
                if include_low
                else bisect.bisect_right(keys, low)
            )
        end = len(keys)
        if high is not None:
            end = (
                bisect.bisect_right(keys, high)
                if include_high
                else bisect.bisect_left(keys, high)
            )
        if end < start:
            end = start
        positions = [position for _, position in self._entries[start:end]]
        if count_io:
            self.table.io.read_blocks(
                1 + block_count(len(positions), self.table.blocking_factor)
            )
        rows = self.table.rows()
        return [rows[p] for p in positions]

    def __len__(self) -> int:
        return len(self._entries)
