"""In-memory block-structured heap tables.

Rows are dictionaries keyed by the schema's attribute names (which are
qualified, e.g. ``"Product.Pid"``, once a table participates in query
processing).  Physically, rows are grouped into blocks of
``blocking_factor`` rows; every scan charges one read per block to the
table's :class:`IOCounter`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from repro.catalog.schema import RelationSchema
from repro.errors import StorageError
from repro.storage.block import IOCounter, block_count

#: Rows per block when the caller does not specify a blocking factor.
DEFAULT_BLOCKING_FACTOR = 10


class Table:
    """A heap table: a schema, rows, and a blocking factor."""

    #: Optional change-capture callback ``hook(op, rows)`` with ``op`` in
    #: ``("insert", "delete")`` and ``rows`` the normalized rows written
    #: or removed.  Fired *after* a successful mutation (a fault-aborted
    #: write emits nothing), so a change log never records a write that
    #: did not happen.  Class-level default keeps proxies cheap.
    write_hook = None

    def __init__(
        self,
        schema: RelationSchema,
        blocking_factor: float = DEFAULT_BLOCKING_FACTOR,
        io: Optional[IOCounter] = None,
    ):
        if blocking_factor <= 0:
            raise StorageError(f"blocking factor must be positive: {blocking_factor}")
        self.schema = schema
        self.blocking_factor = blocking_factor
        self.io = io if io is not None else IOCounter()
        self._rows: List[Dict[str, Any]] = []
        self._colcache = None  # lazily created ColumnView

    # ---------------------------------------------------------------- sizing
    @property
    def cardinality(self) -> int:
        return len(self._rows)

    @property
    def num_blocks(self) -> int:
        return block_count(len(self._rows), self.blocking_factor)

    def __len__(self) -> int:
        return len(self._rows)

    # --------------------------------------------------------------- loading
    def insert(self, row: Mapping[str, Any], count_io: bool = False) -> None:
        """Insert one row (validated against the schema's types)."""
        normalized = self._normalize(row)
        self._rows.append(normalized)
        if self._colcache is not None:
            self._colcache.invalidate()
        if count_io:
            self.io.write_blocks(1)
        if self.write_hook is not None:
            self.write_hook("insert", [normalized])

    def insert_many(self, rows: Iterable[Mapping[str, Any]], count_io: bool = True) -> int:
        """Bulk insert; charges one write per *block* appended."""
        before = len(self._rows)
        for row in rows:
            self._rows.append(self._normalize(row))
        added = len(self._rows) - before
        if added and self._colcache is not None:
            self._colcache.invalidate()
        if count_io and added:
            self.io.write_blocks(block_count(added, self.blocking_factor))
        if added and self.write_hook is not None:
            self.write_hook("insert", self._rows[before:])
        return added

    def delete_many(
        self, rows: Iterable[Mapping[str, Any]], count_io: bool = True
    ) -> List[Dict[str, Any]]:
        """Remove one stored occurrence per given row (bag semantics).

        Rows are matched after normalization (short or qualified column
        names accepted), so the caller can pass exactly what it inserted.
        Returns the rows actually removed — a row with no stored match is
        skipped, not an error.  Charges one read per block scanned plus
        one write per block of removed rows.
        """
        wanted: Dict[tuple, int] = {}
        for row in rows:
            key = tuple(sorted(self._normalize(row).items()))
            wanted[key] = wanted.get(key, 0) + 1
        if not wanted:
            return []
        if count_io:
            self.io.read_blocks(self.num_blocks)
        kept: List[Dict[str, Any]] = []
        removed: List[Dict[str, Any]] = []
        for stored in self._rows:
            key = tuple(sorted(stored.items()))
            if wanted.get(key, 0) > 0:
                wanted[key] -= 1
                removed.append(stored)
            else:
                kept.append(stored)
        if removed:
            self._rows[:] = kept
            if self._colcache is not None:
                self._colcache.invalidate()
            if count_io:
                self.io.write_blocks(
                    block_count(len(removed), self.blocking_factor)
                )
            if self.write_hook is not None:
                self.write_hook("delete", removed)
        return removed

    def _normalize(self, row: Mapping[str, Any]) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for attribute in self.schema:
            if attribute.name in row:
                value = row[attribute.name]
            elif attribute.short_name in row:
                value = row[attribute.short_name]
            else:
                raise StorageError(
                    f"row missing attribute {attribute.name!r}: {sorted(row)}"
                )
            out[attribute.name] = attribute.datatype.validate(value)
        return out

    # --------------------------------------------------------------- reading
    def scan(self, count_io: bool = True) -> Iterator[Dict[str, Any]]:
        """Yield every row; charges one read per block when ``count_io``."""
        if count_io:
            self.io.read_blocks(self.num_blocks)
        yield from iter(self._rows)

    def rows(self) -> List[Dict[str, Any]]:
        """All rows without I/O accounting (inspection/testing only)."""
        return list(self._rows)

    def clear(self) -> None:
        self._rows.clear()
        if self._colcache is not None:
            self._colcache.invalidate()

    def column_view(self):
        """The cached columnar view of this table's rows.

        Created on first use and invalidated automatically whenever the
        rows change.  Fault-injecting proxies share the wrapped table's
        view, so both handles always observe the same cache.
        """
        if self._colcache is None:
            from repro.storage.columnar import ColumnView

            self._colcache = ColumnView(self)
        return self._colcache

    def qualified(self, relation_name: Optional[str] = None) -> "Table":
        """A view of this table with attribute names qualified.

        Used when a base table loaded with short column names enters
        query processing, where plans reference ``Relation.attr`` names.
        The returned table shares this table's :class:`IOCounter`.
        """
        name = relation_name or self.schema.name
        qualified_schema = self.schema.rename(name).qualify()
        out = Table(qualified_schema, self.blocking_factor, io=self.io)
        mapping = {
            old.name: new.name
            for old, new in zip(self.schema, qualified_schema)
        }
        for row in self._rows:
            out._rows.append({mapping[k]: v for k, v in row.items()})
        return out

    def __repr__(self) -> str:
        return (
            f"Table({self.schema.name}, rows={len(self._rows)}, "
            f"blocks={self.num_blocks})"
        )


def table_from_rows(
    schema: RelationSchema,
    rows: Sequence[Mapping[str, Any]],
    blocking_factor: float = DEFAULT_BLOCKING_FACTOR,
    io: Optional[IOCounter] = None,
) -> Table:
    """Build a table from rows without charging load I/O."""
    table = Table(schema, blocking_factor, io)
    table.insert_many(rows, count_io=False)
    return table
