"""Data warehouse facade: views, rewriting, maintenance, execution."""

from repro.warehouse.evolution import MigrationPlan, plan_migration
from repro.warehouse.maintenance import (
    INCREMENTAL,
    RECOMPUTE,
    RefreshReport,
    ViewMaintainer,
)
from repro.warehouse.rewriter import rewrite_with_views
from repro.warehouse.view import MaterializedView
from repro.warehouse.simulation import (
    SimulationConfig,
    SimulationReport,
    WarehouseSimulator,
    simulate,
)
from repro.warehouse.warehouse import DataWarehouse, QueryProfile, ServedResult

__all__ = [
    "DataWarehouse",
    "QueryProfile",
    "ServedResult",
    "INCREMENTAL",
    "MaterializedView",
    "MigrationPlan",
    "plan_migration",
    "RECOMPUTE",
    "RefreshReport",
    "SimulationConfig",
    "SimulationReport",
    "WarehouseSimulator",
    "simulate",
    "ViewMaintainer",
    "rewrite_with_views",
]
