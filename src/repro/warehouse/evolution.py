"""Design evolution: migrating between view sets as workloads drift.

When observed frequencies change (see
:mod:`repro.workload.query_log`), re-running ``design()`` may choose a
different view set.  :func:`plan_migration` diffs the installed views
against the new design by *plan signature* — a view whose defining plan
is unchanged keeps its stored table (and name) even if the new design
labels it differently — and :meth:`apply_migration` executes the plan
with minimal work: drop obsolete tables, materialize only genuinely new
views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.warehouse.view import MaterializedView


@dataclass(frozen=True)
class MigrationPlan:
    """The delta between an installed view set and a new design."""

    keep: Tuple[MaterializedView, ...]  # same defining plan; table reused
    create: Tuple[MaterializedView, ...]  # new plans to materialize
    drop: Tuple[MaterializedView, ...]  # installed views no longer wanted

    @property
    def is_noop(self) -> bool:
        return not self.create and not self.drop

    def describe(self) -> str:
        lines = []
        for label, views in (
            ("keep", self.keep),
            ("create", self.create),
            ("drop", self.drop),
        ):
            names = ", ".join(v.name for v in views) or "(none)"
            lines.append(f"{label}: {names}")
        return "\n".join(lines)


def plan_migration(
    installed: Sequence[MaterializedView],
    target: Sequence[MaterializedView],
) -> MigrationPlan:
    """Diff two view sets by defining-plan signature.

    Views present in both keep their *installed* identity (name and
    stored table); target views with unseen plans are created; installed
    views absent from the target are dropped.
    """
    installed_by_signature: Dict[str, MaterializedView] = {
        v.signature: v for v in installed
    }
    target_signatures = {v.signature for v in target}

    keep: List[MaterializedView] = []
    create: List[MaterializedView] = []
    for view in target:
        existing = installed_by_signature.get(view.signature)
        if existing is not None:
            keep.append(existing)
        else:
            create.append(view)
    drop = [
        view
        for view in installed
        if view.signature not in target_signatures
    ]
    return MigrationPlan(tuple(keep), tuple(create), tuple(drop))
