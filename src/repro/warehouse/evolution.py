"""Design evolution: migrating between view sets as workloads drift.

When observed frequencies change (see
:mod:`repro.workload.query_log`), re-running ``design()`` may choose a
different view set.  :func:`plan_migration` diffs the installed views
against the new design by *plan signature* — a view whose defining plan
is unchanged keeps its stored table (and name) even if the new design
labels it differently — and :meth:`apply_migration` executes the plan
with minimal work: drop obsolete tables, materialize only genuinely new
views.

A migration is itself a cost event, not just a diff: building each
created view costs its access cost ``Ca`` (the blocks touched to compute
it from base relations), and dropping a stored view costs bookkeeping
proportional to its stored blocks.  :func:`cost_migration` annotates a
plan with that price so the adaptive controller
(:mod:`repro.adaptive.controller`) can weigh a redesign's per-period
saving against the one-off cost of getting there.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.warehouse.view import MaterializedView


@dataclass(frozen=True)
class MigrationCost:
    """The one-off price of executing a migration plan.

    ``build`` is the total access cost ``Ca`` of computing the created
    views from base relations; ``teardown`` is the bookkeeping cost of
    dropping the obsolete view tables (catalog updates, index
    invalidation, space reclamation), charged per stored block.
    """

    build: float = 0.0
    teardown: float = 0.0

    @property
    def total(self) -> float:
        return self.build + self.teardown


@dataclass(frozen=True)
class MigrationPlan:
    """The delta between an installed view set and a new design."""

    keep: Tuple[MaterializedView, ...]  # same defining plan; table reused
    create: Tuple[MaterializedView, ...]  # new plans to materialize
    drop: Tuple[MaterializedView, ...]  # installed views no longer wanted
    cost: Optional[MigrationCost] = None  # set by cost_migration()

    @property
    def is_noop(self) -> bool:
        return not self.create and not self.drop

    @property
    def migration_cost(self) -> float:
        """The plan's one-off price (0.0 when never costed)."""
        return self.cost.total if self.cost is not None else 0.0

    def with_cost(self, cost: MigrationCost) -> "MigrationPlan":
        """A copy of this plan annotated with its one-off price."""
        return replace(self, cost=cost)

    def describe(self) -> str:
        lines = []
        for label, views in (
            ("keep", self.keep),
            ("create", self.create),
            ("drop", self.drop),
        ):
            names = ", ".join(v.name for v in views) or "(none)"
            lines.append(f"{label}: {names}")
        if self.cost is not None:
            lines.append(
                f"migration cost: {self.cost.total:,.0f} blocks "
                f"(build {self.cost.build:,.0f} + "
                f"teardown {self.cost.teardown:,.0f})"
            )
        return "\n".join(lines)


def plan_migration(
    installed: Sequence[MaterializedView],
    target: Sequence[MaterializedView],
) -> MigrationPlan:
    """Diff two view sets by defining-plan signature.

    Views present in both keep their *installed* identity (name and
    stored table); target views with unseen plans are created; installed
    views absent from the target are dropped.
    """
    installed_by_signature: Dict[str, MaterializedView] = {
        v.signature: v for v in installed
    }
    target_signatures = {v.signature for v in target}

    keep: List[MaterializedView] = []
    create: List[MaterializedView] = []
    for view in target:
        existing = installed_by_signature.get(view.signature)
        if existing is not None:
            keep.append(existing)
        else:
            create.append(view)
    drop = [
        view
        for view in installed
        if view.signature not in target_signatures
    ]
    return MigrationPlan(tuple(keep), tuple(create), tuple(drop))


def cost_migration(
    plan: MigrationPlan,
    access_costs: Mapping[str, float],
    stored_blocks: Mapping[str, float],
    drop_cost_per_block: float = 0.1,
) -> MigrationPlan:
    """Annotate ``plan`` with its one-off execution price.

    ``access_costs`` maps a defining-plan *signature* to the view's
    access cost ``Ca`` (the new design's annotation — what it costs to
    build the view from base relations); ``stored_blocks`` maps an
    installed view *name* to its stored block count.  A created view
    whose signature is missing costs 0 (no annotation available); a
    dropped view with no recorded blocks likewise tears down for free.
    """
    build = sum(
        access_costs.get(view.signature, 0.0) for view in plan.create
    )
    teardown = drop_cost_per_block * sum(
        stored_blocks.get(view.name, 0.0) for view in plan.drop
    )
    return plan.with_cost(MigrationCost(build=build, teardown=teardown))
