"""View maintenance: full recomputation and incremental (delta) refresh.

The paper assumes *recompute* maintenance ("re-computing is used whenever
an update of involved base relation occurs", Section 2) — that is the
default policy.  Incremental maintenance for insert-only deltas on SPJ
views is provided as the extension the paper's future-work section points
at, and is ablated in ``benchmarks/bench_ablation_maintenance.py``:
cheaper refresh shifts the weight formula's ``Cm`` term and can flip
materialization decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

from repro import obs
from repro.algebra.operators import Aggregate, Operator, Project, Relation
from repro.errors import DeltaSchemaError, WarehouseError
from repro.executor.engine import Database, ExecutionEngine
from repro.executor.physical import charge_materialize
from repro.storage.block import IOSnapshot
from repro.storage.table import Table
from repro.warehouse.view import MaterializedView

RECOMPUTE = "recompute"
INCREMENTAL = "incremental"


def validate_delta_rows(
    schema, rows: Iterable[Mapping[str, object]], relation: str
) -> List[Mapping[str, object]]:
    """Check delta rows against the base relation's schema up front.

    Every attribute must be present (by qualified or short name) and no
    extra columns are allowed — a misspelt column would otherwise either
    vanish silently during normalization or blow up deep inside the
    overlay executor.  Raises :class:`~repro.errors.DeltaSchemaError`
    naming the offending row and columns; returns the rows as a list so
    one-shot iterables survive validation.
    """
    names = {attribute.name for attribute in schema}
    shorts = {attribute.short_name for attribute in schema}
    out: List[Mapping[str, object]] = []
    for index, row in enumerate(rows):
        unknown = [
            key for key in row if key not in names and key not in shorts
        ]
        missing = [
            attribute.name
            for attribute in schema
            if attribute.name not in row and attribute.short_name not in row
        ]
        if unknown or missing:
            raise DeltaSchemaError(
                relation, tuple(unknown), tuple(missing), index
            )
        out.append(row)
    return out


def _record_refresh(
    span, report: "RefreshReport", view: Optional[MaterializedView] = None
) -> None:
    """Attach a refresh outcome to its span and the per-policy metrics."""
    span.set(
        io_reads=report.io.reads,
        io_writes=report.io.writes,
        rows_after=report.rows_after,
    )
    if obs.enabled():
        registry = obs.metrics()
        registry.counter(
            "maintenance.refreshes", policy=report.policy
        ).inc()
        registry.histogram(
            "maintenance.io", policy=report.policy
        ).observe(report.io.total)
        if view is not None and view.estimated_maintenance is not None:
            # Calibrate the design's Cm annotation against the refresh
            # the executor actually performed (blocks of I/O).
            obs.calibration().record(
                "maintenance",
                view.name,
                report.policy,
                view.estimated_maintenance,
                float(report.io.total),
            )


@dataclass(frozen=True)
class RefreshReport:
    """Outcome of refreshing one view."""

    view: str
    policy: str
    io: IOSnapshot
    rows_after: int


class ViewMaintainer:
    """Maintains the stored contents of materialized views."""

    def __init__(self, database: Database, engine: Optional[ExecutionEngine] = None):
        self.database = database
        self.engine = engine or ExecutionEngine(database)

    # -------------------------------------------------------------- recompute
    def materialize(self, view: MaterializedView) -> RefreshReport:
        """(Re)compute ``view`` from base relations and store it."""
        with obs.span(
            "maintenance.refresh", view=view.name, policy=RECOMPUTE
        ) as span:
            before = self.database.io.snapshot()
            result = self.engine.execute(view.plan)
            stored = Table(result.schema, result.blocking_factor, io=self.database.io)
            stored.insert_many(result.rows(), count_io=False)
            charge_materialize(stored)
            self.database.register(view.name, stored)
            report = RefreshReport(
                view=view.name,
                policy=RECOMPUTE,
                io=self.database.io.since(before),
                rows_after=stored.cardinality,
            )
            _record_refresh(span, report, view)
        return report

    # ------------------------------------------------------------ incremental
    def incremental_refresh(
        self,
        view: MaterializedView,
        relation: str,
        delta_rows: Iterable[Mapping[str, object]],
    ) -> RefreshReport:
        """Apply an insert-only delta of ``relation`` to ``view``.

        For an SPJ view, the new tuples are exactly the view's plan
        evaluated with ``relation`` replaced by the delta — the classic
        counting-free insert rule.  Aggregate views fall back to
        recomputation, as do *self-join* views: substituting the delta
        for every occurrence of ``relation`` would evaluate ``δR ⋈ δR``
        instead of ``δR ⋈ R  ∪  R_old ⋈ δR``, silently dropping rows.
        Views with a duplicate-eliminating projection insert only delta
        tuples not already stored, preserving set semantics.

        The refresh is atomic: deltas are applied to a shadow copy that
        replaces the stored table only once fully built, so concurrent
        readers never observe a partially-refreshed view.
        """
        if view.name not in self.database:
            raise WarehouseError(
                f"view {view.name!r} has not been materialized yet"
            )
        if not view.depends_on(relation):
            stored = self.database.table(view.name)
            return RefreshReport(
                view=view.name,
                policy=INCREMENTAL,
                io=IOSnapshot(0, 0),
                rows_after=stored.cardinality,
            )
        if any(isinstance(node, Aggregate) for node in view.plan.walk()):
            return self.materialize(view)
        references = sum(
            1
            for node in view.plan.walk()
            if isinstance(node, Relation) and node.name == relation
        )
        if references > 1:
            return self.materialize(view)
        distinct_plan = any(
            isinstance(node, Project) and node.distinct
            for node in view.plan.walk()
        )

        with obs.span(
            "maintenance.refresh", view=view.name, policy=INCREMENTAL,
            relation=relation,
        ) as span:
            before = self.database.io.snapshot()
            delta_table = self._delta_table(relation, delta_rows)
            overlay = _OverlayDatabase(self.database, {relation: delta_table})
            delta_engine = ExecutionEngine(
                overlay,
                self.engine.join_method,
                engine=self.engine.engine,
                batch_size=self.engine.batch_size,
            )
            delta_result = delta_engine.execute(view.plan)

            stored = self.database.table(view.name)
            new_rows = delta_result.rows()
            if distinct_plan:
                names = stored.schema.attribute_names
                existing = {
                    tuple(row[n] for n in names) for row in stored.rows()
                }
                new_rows = [
                    row
                    for row in new_rows
                    if tuple(row[n] for n in names) not in existing
                ]
            shadow = Table(
                stored.schema, stored.blocking_factor, io=self.database.io
            )
            shadow.insert_many(stored.rows(), count_io=False)
            added = shadow.insert_many(new_rows, count_io=True)
            self.database.register(view.name, shadow)
            span.set(rows_added=added)
            report = RefreshReport(
                view=view.name,
                policy=INCREMENTAL,
                io=self.database.io.since(before),
                rows_after=shadow.cardinality,
            )
            _record_refresh(span, report, view)
        return report

    def _delta_table(
        self, relation: str, delta_rows: Iterable[Mapping[str, object]]
    ) -> Table:
        base = self.database.table(relation)
        delta = Table(base.schema, base.blocking_factor, io=self.database.io)
        for row in validate_delta_rows(base.schema, delta_rows, relation):
            delta.insert(row)
        return delta


class _OverlayDatabase(Database):
    """A database view where selected tables are substituted.

    Used to evaluate a view plan "as if" a base relation contained only
    the delta rows, while every other relation reads through to the real
    database (sharing its I/O counter).
    """

    def __init__(self, base: Database, overrides: Dict[str, Table]):
        super().__init__()
        self.io = base.io  # share accounting with the real database
        # Forward the injector: the vectorized engine keys build-side
        # caching (and FaultyTable wrapping) off this attribute, so a
        # delta evaluation must fail exactly like a direct one would.
        self.fault_injector = base.fault_injector
        self._base = base
        self._overrides = overrides

    def table(self, name: str) -> Table:
        if name in self._overrides:
            return self._overrides[name]
        return self._base.table(name)

    def __contains__(self, name: str) -> bool:
        return name in self._overrides or name in self._base


#: Public alias: the sharded serving path substitutes shard-union tables
#: through the same overlay mechanism incremental maintenance uses.
OverlayDatabase = _OverlayDatabase
