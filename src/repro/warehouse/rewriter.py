"""Answering queries from materialized views.

The rewriter replaces every plan subtree that matches a materialized
view's defining plan with a scan of the stored view.  Two match modes:

* **exact** — identical canonical signature (the common-subexpression
  criterion the MVPP is built on).  The design pipeline produces query
  plans and view definitions from the same shared DAG, so every intended
  reuse is an exact match;
* **subsumption** (extension) — the subtree is ``σ_p(X)`` and some view
  is defined as ``σ_q(X)`` (or plainly ``X``) with ``p ⇒ q``: the view
  contains a superset of the needed rows, so the rewrite reads the view
  and re-applies ``p`` as a compensating selection.  The implication test
  is the sound-but-incomplete
  :func:`repro.algebra.predicates.implies`, so every accepted rewrite is
  semantics-preserving.

Matching is top-down, so the largest applicable view wins.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.algebra import predicates as P
from repro.algebra.operators import Operator, Relation, Select
from repro.warehouse.view import MaterializedView


def rewrite_with_views(
    plan: Operator,
    views: Iterable[MaterializedView],
    subsumption: bool = True,
) -> Tuple[Operator, List[MaterializedView]]:
    """Rewrite ``plan`` to read from ``views`` where subtrees match.

    Returns the rewritten plan and the views actually used (topmost
    matches only — a view nested under another matched view is not
    reported, since it is not read).  ``subsumption=False`` restricts the
    rewrite to exact signature matches.
    """
    view_list = list(views)
    by_signature: Dict[str, MaterializedView] = {
        v.signature: v for v in view_list
    }
    used: List[MaterializedView] = []

    def scan_of(view: MaterializedView, like: Operator) -> Relation:
        # The stored view keeps the defining plan's (qualified) attribute
        # names, so expressions above keep resolving.
        return Relation(view.name, like.schema.rename(view.name))

    def try_subsumption(node: Operator) -> Optional[Operator]:
        """``σ_p(X)`` answered from a view ``σ_q(X)`` (or ``X``), p ⇒ q."""
        if not isinstance(node, Select):
            return None
        p = node.predicate
        for view in view_list:
            definition = view.plan
            if isinstance(definition, Select):
                q, body = definition.predicate, definition.child
            else:
                q, body = None, definition
            if body.signature != node.child.signature:
                continue
            if not P.implies(p, q):
                continue
            used.append(view)
            return Select(scan_of(view, definition), p)
        return None

    def descend(node: Operator) -> Operator:
        view = by_signature.get(node.signature)
        if view is not None:
            used.append(view)
            return scan_of(view, node)
        if subsumption:
            compensated = try_subsumption(node)
            if compensated is not None:
                return compensated
        if node.is_leaf:
            return node
        children = tuple(descend(child) for child in node.children)
        if all(new is old for new, old in zip(children, node.children)):
            return node
        return node.with_children(children)

    return descend(plan), used
