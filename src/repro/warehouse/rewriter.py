"""Answering queries from materialized views.

The rewriter replaces every plan subtree that matches a materialized
view's defining plan with a scan of the stored view.  Two match modes:

* **exact** — identical canonical signature (the common-subexpression
  criterion the MVPP is built on).  The design pipeline produces query
  plans and view definitions from the same shared DAG, so every intended
  reuse is an exact match;
* **subsumption** (extension) — the subtree is ``σ_p(X)`` and some view
  is defined as ``σ_q(X)`` (or plainly ``X``) with ``p ⇒ q``: the view
  contains a superset of the needed rows, so the rewrite reads the view
  and re-applies ``p`` as a compensating selection.  The implication test
  is the sound-but-incomplete
  :func:`repro.algebra.predicates.implies`, so every accepted rewrite is
  semantics-preserving.

Matching is top-down, so the largest applicable view wins.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.algebra import predicates as P
from repro.algebra.expressions import ColumnRef, Comparison, Expression, Literal, Or
from repro.algebra.operators import (
    Aggregate,
    Limit,
    Operator,
    Relation,
    Select,
)
from repro.distributed.partition import PartitionScheme
from repro.warehouse.view import MaterializedView


def rewrite_with_views(
    plan: Operator,
    views: Iterable[MaterializedView],
    subsumption: bool = True,
) -> Tuple[Operator, List[MaterializedView]]:
    """Rewrite ``plan`` to read from ``views`` where subtrees match.

    Returns the rewritten plan and the views actually used (topmost
    matches only — a view nested under another matched view is not
    reported, since it is not read).  ``subsumption=False`` restricts the
    rewrite to exact signature matches.
    """
    view_list = list(views)
    by_signature: Dict[str, MaterializedView] = {
        v.signature: v for v in view_list
    }
    used: List[MaterializedView] = []

    def scan_of(view: MaterializedView, like: Operator) -> Relation:
        # The stored view keeps the defining plan's (qualified) attribute
        # names, so expressions above keep resolving.
        return Relation(view.name, like.schema.rename(view.name))

    def try_subsumption(node: Operator) -> Optional[Operator]:
        """``σ_p(X)`` answered from a view ``σ_q(X)`` (or ``X``), p ⇒ q."""
        if not isinstance(node, Select):
            return None
        p = node.predicate
        for view in view_list:
            definition = view.plan
            if isinstance(definition, Select):
                q, body = definition.predicate, definition.child
            else:
                q, body = None, definition
            if body.signature != node.child.signature:
                continue
            if not P.implies(p, q):
                continue
            used.append(view)
            return Select(scan_of(view, definition), p)
        return None

    def descend(node: Operator) -> Operator:
        view = by_signature.get(node.signature)
        if view is not None:
            used.append(view)
            return scan_of(view, node)
        if subsumption:
            compensated = try_subsumption(node)
            if compensated is not None:
                return compensated
        if node.is_leaf:
            return node
        children = tuple(descend(child) for child in node.children)
        if all(new is old for new, old in zip(children, node.children)):
            return node
        return node.with_children(children)

    return descend(plan), used


# ---------------------------------------------------------------------------
# Partition pruning
# ---------------------------------------------------------------------------

def _key_comparison(
    conjunct: Expression, relation: Relation, scheme: "PartitionScheme"
) -> Optional[Tuple[str, object]]:
    """``(op, literal)`` if ``conjunct`` constrains this relation's key.

    The comparison must be ``column <op> literal`` (canonicalization puts
    literals on the right), the column must *resolve in this relation's
    schema* (so ``Customer.city`` never prunes a ``Division.city`` key),
    and its short name must equal the partition key's.
    """
    if not isinstance(conjunct, Comparison):
        return None
    if not isinstance(conjunct.left, ColumnRef):
        return None
    if not isinstance(conjunct.right, Literal):
        return None
    try:
        resolved = relation.schema.attribute(conjunct.left.name)
    except Exception:
        return None
    if resolved.name.rsplit(".", 1)[-1] != scheme.key_short:
        return None
    return conjunct.op, conjunct.right.value


def _surviving_shards(
    relation: Relation,
    scheme: "PartitionScheme",
    conjuncts: Tuple[Expression, ...],
) -> Set[int]:
    """Shards of ``relation`` that may contribute rows under ``conjuncts``."""
    surviving = set(scheme.all_shards)
    for conjunct in conjuncts:
        if isinstance(conjunct, Or):
            # An OR prunes only when *every* disjunct constrains the key:
            # the union of the per-disjunct shard sets then covers all
            # possibly-satisfying rows.
            union: Set[int] = set()
            for disjunct in conjunct.children:
                match = _key_comparison(disjunct, relation, scheme)
                if match is None:
                    union = set(scheme.all_shards)
                    break
                union.update(scheme.shards_for(*match))
            surviving &= union
            continue
        match = _key_comparison(conjunct, relation, scheme)
        if match is not None:
            surviving &= set(scheme.shards_for(*match))
    return surviving


def prune_shards(
    plan: Operator, schemes: Mapping[str, "PartitionScheme"]
) -> Dict[str, Tuple[int, ...]]:
    """Per partitioned relation, the shards ``plan`` may need to read.

    Walks the plan top-down accumulating selection conjuncts, and at each
    :class:`Relation` leaf intersects the shard sets admitted by the
    conjuncts that constrain that relation's partition key.  The result
    is a sound over-approximation: a shard absent from a relation's entry
    holds no row that can influence the plan's output.

    Pushdown rules keep it sound:

    * ``Select`` adds its conjuncts (selection commutes with reading
      fewer shards);
    * ``Join`` also pushes its condition's conjuncts — under inner-join
      semantics a row failing a condition conjunct yields no output;
    * ``Limit`` *clears* inherited conjuncts: LIMIT picks the first rows
      of its unfiltered input, so pruning below it would change which
      rows it sees;
    * ``Aggregate`` keeps only conjuncts over group-by columns
      (selection on a grouping key commutes with grouping; predicates on
      aggregate outputs do not);
    * everything else (Project/Sort) passes conjuncts through unchanged.

    Relations appearing several times (self-joins) get the *union* of
    each occurrence's surviving shards.
    """
    out: Dict[str, Set[int]] = {}

    def descend(node: Operator, conjuncts: Tuple[Expression, ...]) -> None:
        if isinstance(node, Relation):
            scheme = schemes.get(node.name)
            if scheme is None:
                return
            surviving = _surviving_shards(node, scheme, conjuncts)
            if node.name in out:
                out[node.name] |= surviving
            else:
                out[node.name] = surviving
            return
        if isinstance(node, Select):
            descend(node.child, conjuncts + P.conjuncts(node.predicate))
            return
        if isinstance(node, Limit):
            descend(node.child, ())
            return
        if isinstance(node, Aggregate):
            keys = set(node.group_by)
            short_keys = {k.rsplit(".", 1)[-1] for k in keys}
            kept = tuple(
                c
                for c in conjuncts
                if all(
                    col in keys or col.rsplit(".", 1)[-1] in short_keys
                    for col in c.columns()
                )
            )
            descend(node.child, kept)
            return
        extra: Tuple[Expression, ...] = ()
        condition = getattr(node, "condition", None)
        if condition is not None:
            extra = P.conjuncts(condition)
        for child in node.children:
            descend(child, conjuncts + extra)

    descend(plan, ())
    return {name: tuple(sorted(shards)) for name, shards in out.items()}
