"""Horizontal sharding of the warehouse's stored relations and views.

The :class:`ShardManager` keeps, alongside every partitioned base
relation ``R``, one stored table per shard (``R#0`` … ``R#n-1``) split
by the relation's :class:`~repro.distributed.partition.PartitionScheme`.
Three capabilities build on that shard map:

* **partition-pruned serving** — :meth:`bind` runs
  :func:`repro.warehouse.rewriter.prune_shards` over a (possibly
  view-rewritten) plan and substitutes each prunable relation with a
  :class:`ShardUnionTable` over only its surviving shards, so the
  executor's measured block I/O shrinks with the pruning;
* **co-partitioned views** — a view whose lineage contains exactly one
  partitioned base (referenced once, through SPJ operators only) can be
  stored shard-wise: ``mv_X#s`` is the view's plan with ``R`` replaced
  by ``R#s``.  The union over shards is row-identical to the whole view
  because SPJ plans are linear in each input;
* **partition-wise freshness** — per-shard versions let the refresh
  scheduler rebuild only the partitions an update batch touched.

Every routed shard read asks the
:class:`~repro.distributed.sharding.ShardCatalog` which site serves it
(deterministic replica round-robin), and pruning outcomes are exported
through the ``distributed.partitions_pruned`` counter.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro import obs
from repro.algebra.operators import (
    Join,
    Operator,
    Project,
    Relation,
    Select,
)
from repro.distributed.partition import PartitionScheme, shard_table_name
from repro.distributed.sharding import ShardCatalog
from repro.errors import WarehouseError
from repro.executor.engine import Database, ExecutionEngine
from repro.storage.block import IOSnapshot
from repro.storage.table import Table
from repro.warehouse.maintenance import _OverlayDatabase
from repro.warehouse.rewriter import prune_shards
from repro.warehouse.view import MaterializedView

__all__ = ["ShardManager", "ShardUnionTable", "shard_plan"]

#: Operators a view plan may contain for its shards to union losslessly.
#: (Aggregate/Limit/Sort/distinct-Project all mix rows *across* input
#: partitions, so per-shard evaluation would change the result.)
_LINEAR_NODES = (Join, Relation, Select, Project)


class ShardUnionTable(Table):
    """The concatenation of several shard tables, for one plan execution.

    Scanning it charges the *sum of the shards' block counts* — reading
    k physical shards costs k partial scans, not one scan of an ideally
    repacked table — so pruned and unpruned runs are comparable on the
    same accounting basis.
    """

    def __init__(
        self,
        schema,
        blocking_factor: float,
        shard_tables: Iterable[Table],
        io=None,
    ):
        super().__init__(schema, blocking_factor, io=io)
        blocks = 0
        for shard_table in shard_tables:
            blocks += shard_table.num_blocks
            self.insert_many(shard_table.rows(), count_io=False)
        self._union_blocks = blocks

    @property
    def num_blocks(self) -> int:
        return self._union_blocks


def shard_plan(plan: Operator, relation: str, shard: int) -> Operator:
    """``plan`` with every ``Relation(relation)`` leaf redirected to its
    shard table.  The shard table carries the base relation's qualified
    schema (renamed only), so predicates above keep resolving."""
    name = shard_table_name(relation, shard)

    def descend(node: Operator) -> Operator:
        if isinstance(node, Relation):
            if node.name != relation:
                return node
            return Relation(name, node.schema.rename(name))
        children = tuple(descend(child) for child in node.children)
        if all(new is old for new, old in zip(children, node.children)):
            return node
        return node.with_children(children)

    return descend(plan)


class ShardManager:
    """Shard-level storage, routing, freshness, and pruned execution."""

    def __init__(self, warehouse, catalog: ShardCatalog):
        self.warehouse = warehouse
        self.catalog = catalog
        # (relation, shard) -> monotonically increasing data version.
        self._shard_versions: Dict[Tuple[str, int], int] = {}
        # shard-view name (mv_X#3) -> dependency versions at last build.
        self._view_versions: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------- base data
    @property
    def schemes(self) -> Dict[str, PartitionScheme]:
        return {
            relation: self.catalog.require_scheme(relation)
            for relation in self.catalog.relations
        }

    def shard_version(self, relation: str, shard: int) -> int:
        return self._shard_versions.get((relation, shard), 0)

    def partition_relation(self, relation: str) -> Tuple[int, ...]:
        """(Re)split a loaded relation into its shard tables.

        Registers one table per shard (empty shards included, so routing
        never misses) and bumps every shard's version.  Returns the
        shard ids.
        """
        scheme = self.catalog.require_scheme(relation)
        database = self.warehouse.database
        if relation not in database:
            raise WarehouseError(
                f"load relation {relation!r} before partitioning it"
            )
        base = database.table(relation)
        split = scheme.split_rows(base.rows())
        for shard in scheme.all_shards:
            name = scheme.shard_table(shard)
            table = Table(base.schema, base.blocking_factor)
            table.insert_many(split[shard], count_io=False)
            database.register(name, table)
            self._shard_versions[(relation, shard)] = (
                self.shard_version(relation, shard) + 1
            )
        return scheme.all_shards

    def on_load(self, relation: str) -> None:
        """Hook run by :meth:`DataWarehouse.load` after registration."""
        if relation in self.catalog:
            self.partition_relation(relation)

    def on_update(
        self, relation: str, rows: List[Mapping[str, object]]
    ) -> Tuple[int, ...]:
        """Route an insert batch to its shards; returns the affected ones.

        Only the shards the batch actually lands on get new rows and a
        version bump — the refresh scheduler later rebuilds exactly
        those partitions.  Shard writes are not charged as I/O: the
        shard tables mirror the base table, whose insert the update path
        already accounted.
        """
        scheme = self.catalog.scheme(relation)
        if scheme is None:
            return ()
        database = self.warehouse.database
        split = scheme.split_rows(rows)
        affected = []
        for shard in scheme.all_shards:
            if not split[shard]:
                continue
            name = scheme.shard_table(shard)
            if name not in database:
                continue  # never partitioned; nothing mirrors the base
            database.table(name).insert_many(split[shard], count_io=False)
            self._shard_versions[(relation, shard)] = (
                self.shard_version(relation, shard) + 1
            )
            affected.append(shard)
        return tuple(affected)

    # ---------------------------------------------------- co-partitioned views
    def copartition_base(self, view: MaterializedView) -> Optional[str]:
        """The partitioned base this view can shard along, if any.

        Eligibility: the plan is pure SPJ (no Aggregate/Limit/Sort, no
        duplicate-eliminating projection), exactly one lineage relation
        is partitioned, and it appears exactly once — the conditions
        under which per-shard evaluation unions to the whole view.
        """
        partitioned = sorted(
            name for name in view.base_relations if name in self.catalog
        )
        if len(partitioned) != 1:
            return None
        base = partitioned[0]
        references = 0
        for node in view.plan.walk():
            if not isinstance(node, _LINEAR_NODES):
                return None
            if isinstance(node, Project) and node.distinct:
                return None
            if isinstance(node, Relation) and node.name == base:
                references += 1
        if references != 1:
            return None
        return base

    def shardable_views(self) -> List[MaterializedView]:
        """Installed views eligible for partition-wise storage/refresh."""
        return [
            view
            for view in self.warehouse.views
            if self.copartition_base(view) is not None
        ]

    def shard_view(self, view: MaterializedView, shard: int) -> MaterializedView:
        """The per-shard definition ``mv_X#s`` of a co-partitioned view."""
        base = self.copartition_base(view)
        if base is None:
            raise WarehouseError(
                f"view {view.name!r} is not co-partitioned with any "
                f"sharded relation"
            )
        scheme = self.catalog.require_scheme(base)
        if not 0 <= shard < scheme.shards:
            raise WarehouseError(
                f"shard {shard} out of range for view {view.name!r}"
            )
        return MaterializedView(
            name=shard_table_name(view.name, shard),
            plan=shard_plan(view.plan, base, shard),
            estimated_maintenance=(
                view.estimated_maintenance / scheme.shards
                if view.estimated_maintenance is not None
                else None
            ),
            estimated_blocks=(
                view.estimated_blocks / scheme.shards
                if view.estimated_blocks is not None
                else None
            ),
        )

    def _dependency_versions(
        self, view: MaterializedView, shard: int
    ) -> Dict[str, int]:
        """Version vector one shard of a view was (or would be) built at."""
        base = self.copartition_base(view)
        versions: Dict[str, int] = {}
        for relation in sorted(view.base_relations):
            if relation == base:
                versions[shard_table_name(relation, shard)] = (
                    self.shard_version(relation, shard)
                )
            else:
                versions[relation] = self.warehouse._base_versions.get(
                    relation, 0
                )
        return versions

    def record_fresh(self, view: MaterializedView, shard: int) -> None:
        name = shard_table_name(view.name, shard)
        self._view_versions[name] = self._dependency_versions(view, shard)

    def shard_is_fresh(self, view: MaterializedView, shard: int) -> bool:
        name = shard_table_name(view.name, shard)
        recorded = self._view_versions.get(name)
        if recorded is None:
            return False
        return recorded == self._dependency_versions(view, shard)

    def stale_shards(self, view: MaterializedView) -> Tuple[int, ...]:
        """Shards of a co-partitioned view lagging their dependencies."""
        base = self.copartition_base(view)
        if base is None:
            return ()
        scheme = self.catalog.require_scheme(base)
        return tuple(
            shard
            for shard in scheme.all_shards
            if not self.shard_is_fresh(view, shard)
        )

    def view_staleness(self, view: MaterializedView) -> int:
        """Shard-granular staleness: how many partitions lag their deps."""
        return len(self.stale_shards(view))

    def view_shards_available(self, view: MaterializedView) -> bool:
        """Whether every shard table of this view is materialized."""
        base = self.copartition_base(view)
        if base is None:
            return False
        scheme = self.catalog.require_scheme(base)
        database = self.warehouse.database
        return all(
            shard_table_name(view.name, shard) in database
            for shard in scheme.all_shards
        )

    def materialize_view(self, view: MaterializedView) -> Tuple[str, ...]:
        """Build every shard of a co-partitioned view (no retry machinery).

        The plain counterpart of
        :meth:`repro.resilience.scheduler.RefreshScheduler.refresh_partitions`
        for failure-free runs.  Returns the stored shard-table names.
        """
        base = self.copartition_base(view)
        if base is None:
            raise WarehouseError(
                f"view {view.name!r} is not co-partitioned with any "
                f"sharded relation"
            )
        scheme = self.catalog.require_scheme(base)
        names = []
        for shard in scheme.all_shards:
            shard_view = self.shard_view(view, shard)
            self.warehouse.maintainer.materialize(shard_view)
            self.record_fresh(view, shard)
            names.append(shard_view.name)
        return tuple(names)

    # ------------------------------------------------------------- pruned serve
    def _prunable_schemes(self, plan: Operator) -> Dict[str, PartitionScheme]:
        """Schemes for every prunable leaf of ``plan`` — partitioned base
        relations plus shard-materialized co-partitioned views (whose
        derived scheme mirrors the base's, provided the key column
        survives into the view's schema)."""
        schemes: Dict[str, PartitionScheme] = dict(self.schemes)
        by_name = {v.name: v for v in self.warehouse.views}
        for leaf in plan.walk():
            if not isinstance(leaf, Relation) or leaf.name not in by_name:
                continue
            view = by_name[leaf.name]
            base = self.copartition_base(view)
            if base is None or not self.view_shards_available(view):
                continue
            base_scheme = self.catalog.require_scheme(base)
            try:
                resolved = view.schema.attribute(base_scheme.key)
            except Exception:
                continue  # partition key projected away: view not prunable
            schemes[view.name] = PartitionScheme(
                relation=view.name,
                key=resolved.name,
                shards=base_scheme.shards,
                kind=base_scheme.kind,
                bounds=base_scheme.bounds,
            )
        return schemes

    def bind(
        self, plan: Operator, prune: bool = True
    ) -> Tuple[Dict[str, Table], Dict[str, Tuple[int, ...]], int]:
        """Prepare a (possibly pruned) sharded execution of ``plan``.

        Returns ``(overrides, partitions_read, pruned)``: tables to
        substitute (a :class:`ShardUnionTable` per overlaid relation),
        the surviving shard ids per prunable relation, and the total
        number of shards pruned away.  A relation is overlaid when
        pruning strictly shrank its shard set, or when it has *only*
        shard tables (a partition-wise-refreshed view with no whole
        table).  Each routed shard read goes through the catalog
        (deterministic replica round-robin, counted as
        ``distributed.replica_reads{site}``); ``prune=False`` keeps
        every shard, for measuring the unpruned baseline.
        """
        schemes = self._prunable_schemes(plan)
        if prune:
            surviving = prune_shards(plan, schemes)
        else:
            surviving = {
                node.name: schemes[node.name].all_shards
                for node in plan.walk()
                if isinstance(node, Relation) and node.name in schemes
            }
        database = self.warehouse.database
        overrides: Dict[str, Table] = {}
        pruned = 0
        for name, shards in sorted(surviving.items()):
            scheme = schemes[name]
            shards = tuple(sorted(shards))
            pruned += scheme.shards - len(shards)
            in_db = name in database
            if in_db and len(shards) >= scheme.shards:
                continue  # nothing pruned: the whole table is cheaper
            if any(
                shard_table_name(name, s) not in database for s in shards
            ):
                continue  # shards not stored; fall back to the whole table
            route = name in self.catalog
            shard_tables = []
            for shard in shards:
                if route:
                    self.catalog.route_read(name, shard)
                shard_tables.append(
                    database.table(shard_table_name(name, shard))
                )
            if in_db:
                template = database.table(name)
            else:
                # A shard-only relation: borrow any stored shard's shape
                # (all shards share it), so even an everything-pruned
                # read yields a well-typed empty table.
                template = database.table(
                    shard_table_name(name, scheme.all_shards[0])
                )
            overrides[name] = ShardUnionTable(
                template.schema, template.blocking_factor, shard_tables
            )
        # Shard-only views that no scheme covers (partition key projected
        # away) still need their union substituted — there is no whole
        # table to fall back to.
        by_name = {v.name: v for v in self.warehouse.views}
        surviving = dict(surviving)
        for node in plan.walk():
            if not isinstance(node, Relation):
                continue
            name = node.name
            if name in overrides or name in database or name in surviving:
                continue
            view = by_name.get(name)
            if view is None or not self.view_shards_available(view):
                continue
            scheme = self.catalog.require_scheme(self.copartition_base(view))
            shard_tables = [
                database.table(shard_table_name(name, shard))
                for shard in scheme.all_shards
            ]
            overrides[name] = ShardUnionTable(
                shard_tables[0].schema,
                shard_tables[0].blocking_factor,
                shard_tables,
            )
            surviving[name] = scheme.all_shards
        if obs.enabled() and pruned:
            obs.metrics().counter("distributed.partitions_pruned").inc(pruned)
        partitions_read = {
            name: tuple(sorted(shards))
            for name, shards in sorted(surviving.items())
        }
        return overrides, partitions_read, pruned

    def run(
        self, plan: Operator, overrides: Dict[str, Table]
    ) -> Tuple[Table, IOSnapshot]:
        """Execute ``plan`` with shard-union substitutions in place."""
        engine = self.warehouse.engine
        overlay = _OverlayDatabase(self.warehouse.database, overrides)
        shard_engine = ExecutionEngine(
            overlay,
            engine.join_method,
            engine=engine.engine,
            batch_size=engine.batch_size,
        )
        before = self.warehouse.database.io.snapshot()
        result = shard_engine.execute(plan)
        return result, self.warehouse.database.io.since(before)

    # ----------------------------------------------------------------- summary
    def describe(self) -> Mapping[str, object]:
        """JSON-safe snapshot: schemes, placement, per-shard versions."""
        out = dict(self.catalog.describe())
        for relation, entry in out.items():
            scheme = self.catalog.require_scheme(relation)
            entry["versions"] = {
                str(shard): self.shard_version(relation, shard)
                for shard in scheme.all_shards
            }
        return out
