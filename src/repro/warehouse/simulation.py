"""Multi-period warehouse simulation.

The paper's future work asks for "a good analytical model [to] simulate
various environments with different view mixes".  This module is that
simulator: it drives a loaded :class:`DataWarehouse` through N
maintenance periods, issuing each query ``fq`` times per period and
applying ``fu`` update batches per base relation, and measures the real
block I/O of both sides.  Comparing simulated totals across view mixes
validates the analytical ``C_total`` objective end to end
(`benchmarks/bench_simulation.py`).

Fractional frequencies (the example's ``fq(Q2) = 0.5``) are honoured by
carry-over accumulation: Q2 runs once every second period.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.errors import WarehouseError
from repro.warehouse.maintenance import INCREMENTAL, RECOMPUTE
from repro.warehouse.warehouse import DataWarehouse

RowFactory = Callable[[str, random.Random], Mapping[str, Any]]


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs for a simulation run."""

    periods: int = 5
    seed: int = 0
    update_batch_size: int = 10
    maintenance_policy: str = RECOMPUTE

    def __post_init__(self) -> None:
        if self.periods < 1:
            raise WarehouseError("periods must be >= 1")
        if self.update_batch_size < 1:
            raise WarehouseError("update_batch_size must be >= 1")
        if self.maintenance_policy not in (RECOMPUTE, INCREMENTAL):
            raise WarehouseError(
                f"unsupported maintenance policy {self.maintenance_policy!r}"
            )


@dataclass
class SimulationReport:
    """Measured block I/O of one simulated horizon."""

    periods: int
    query_io: int = 0
    maintenance_io: int = 0
    query_executions: Dict[str, int] = field(default_factory=dict)
    update_batches: Dict[str, int] = field(default_factory=dict)

    @property
    def total_io(self) -> int:
        return self.query_io + self.maintenance_io

    @property
    def per_period_io(self) -> float:
        return self.total_io / self.periods


def default_row_factory(warehouse: DataWarehouse) -> RowFactory:
    """Synthesizes rows matching a relation's schema and, for integer
    columns that look like keys of another loaded relation, drawing
    values from that relation's observed key range so joins stay
    meaningful."""
    import datetime

    from repro.catalog.datatypes import DataType

    def factory(relation: str, rng: random.Random) -> Mapping[str, Any]:
        schema = warehouse.catalog.schema(relation)
        row: Dict[str, Any] = {}
        for attribute in schema:
            name = attribute.short_name
            if attribute.datatype is DataType.INTEGER:
                row[name] = rng.randrange(
                    max(_key_range(warehouse, relation, name), 1)
                )
            elif attribute.datatype is DataType.STRING:
                row[name] = f"sim{rng.randrange(100)}"
            elif attribute.datatype is DataType.FLOAT:
                row[name] = rng.random() * 100
            elif attribute.datatype is DataType.DATE:
                row[name] = datetime.date(1996, 1, 1) + datetime.timedelta(
                    days=rng.randrange(366)
                )
            else:
                row[name] = bool(rng.randrange(2))
        return row

    return factory


def _key_range(warehouse: DataWarehouse, relation: str, column: str) -> int:
    """A plausible value range for an integer column: the loaded
    cardinality of the relation the column appears to reference, else
    200 (the example's quantity range)."""
    for name in warehouse.database.table_names:
        if name == relation or name.startswith("mv_"):
            continue
        schema = warehouse.catalog.schema(name) if name in warehouse.catalog else None
        if schema is None:
            continue
        if column in schema:
            return max(warehouse.database.table(name).cardinality, 1)
    if relation in warehouse.catalog and column in warehouse.catalog.schema(relation):
        return max(warehouse.database.table(relation).cardinality, 200)
    return 200


class WarehouseSimulator:
    """Drives a loaded, materialized warehouse through update periods."""

    def __init__(
        self,
        warehouse: DataWarehouse,
        config: SimulationConfig = SimulationConfig(),
        row_factory: Optional[RowFactory] = None,
    ):
        self.warehouse = warehouse
        self.config = config
        self.row_factory = row_factory or default_row_factory(warehouse)

    def run(self) -> SimulationReport:
        """Simulate ``config.periods`` maintenance periods."""
        warehouse = self.warehouse
        rng = random.Random(self.config.seed)
        report = SimulationReport(periods=self.config.periods)
        workload = warehouse.workload

        query_credit: Dict[str, float] = {q.name: 0.0 for q in workload.queries}
        update_credit: Dict[str, float] = {
            name: 0.0 for name in workload.catalog.relation_names
        }

        for _ in range(self.config.periods):
            # Query side: each query runs ⌊accumulated fq⌋ times.
            for spec in workload.queries:
                query_credit[spec.name] += spec.frequency
                while query_credit[spec.name] >= 1.0:
                    query_credit[spec.name] -= 1.0
                    _, io = warehouse.execute(spec.name, use_views=True)
                    report.query_io += io.total
                    report.query_executions[spec.name] = (
                        report.query_executions.get(spec.name, 0) + 1
                    )
            # Update side: each relation receives ⌊accumulated fu⌋ batches.
            for relation in workload.catalog.relation_names:
                if relation not in warehouse.database:
                    continue
                update_credit[relation] += workload.update_frequency(relation)
                while update_credit[relation] >= 1.0:
                    update_credit[relation] -= 1.0
                    batch = [
                        self.row_factory(relation, rng)
                        for _ in range(self.config.update_batch_size)
                    ]
                    before = warehouse.database.io.snapshot()
                    warehouse.apply_update(
                        relation, batch, policy=self.config.maintenance_policy
                    )
                    report.maintenance_io += warehouse.database.io.since(
                        before
                    ).total
                    report.update_batches[relation] = (
                        report.update_batches.get(relation, 0) + 1
                    )
        return report


def simulate(
    warehouse: DataWarehouse,
    config: SimulationConfig = SimulationConfig(),
    row_factory: Optional[RowFactory] = None,
) -> SimulationReport:
    """Convenience wrapper around :class:`WarehouseSimulator`."""
    return WarehouseSimulator(warehouse, config, row_factory).run()
