"""Materialized view definitions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.algebra.operators import Operator
from repro.catalog.schema import RelationSchema


@dataclass(frozen=True)
class MaterializedView:
    """A warehouse view chosen for materialization.

    ``plan`` computes the view's contents from base relations; its
    signature identifies which plan subtrees the rewriter may replace with
    a scan of the stored view.

    ``estimated_maintenance`` (the design's ``Cm`` for this vertex) and
    ``estimated_blocks`` (its Table-1 size estimate) are optional
    annotations carried from the design so refreshes can be calibrated
    against what the cost model predicted (see
    :mod:`repro.obs.calibration`); views built without a design run
    leave them ``None``.
    """

    name: str
    plan: Operator
    estimated_maintenance: Optional[float] = None
    estimated_blocks: Optional[float] = None

    @property
    def signature(self) -> str:
        return self.plan.signature

    @property
    def schema(self) -> RelationSchema:
        return self.plan.schema

    @property
    def base_relations(self) -> FrozenSet[str]:
        """Base relations the view depends on (the paper's ``Iv``)."""
        return self.plan.base_relations()

    def depends_on(self, relation: str) -> bool:
        return relation in self.base_relations
