"""The end-to-end data warehouse facade.

Typical lifecycle::

    wh = DataWarehouse(catalog, statistics)
    wh.add_query("Q1", "SELECT ...", frequency=10)
    wh.set_update_frequency("Order", 1.0)

    design = wh.design()          # run the paper's full pipeline
    wh.load("Order", rows)        # load base data
    wh.materialize()              # compute & store the chosen views
    table, io = wh.execute("Q1")  # answered through materialized views
    wh.apply_update("Order", new_rows, policy="incremental")

``design()`` runs Figure 4 (generate candidate MVPPs) and Figure 9
(select vertices to materialize) and installs the chosen views;
``execute()`` rewrites the query's MVPP plan over the stored views, so
the measured block I/O realizes the design's predicted query cost.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro import obs
from repro.catalog.schema import Catalog
from repro.catalog.statistics import StatisticsCatalog
from repro.errors import WarehouseError
from repro.executor.engine import (
    ExecutionEngine,
    Database,
    NESTED_LOOP,
    VECTORIZED,
)
from repro.mvpp.config import DesignConfig, coerce_design_config
from repro.mvpp.cost import (
    CostBreakdown,
    CostCache,
    MVPPCostCalculator,
    PER_PERIOD,
)
from repro.mvpp.generation import DesignResult, design as run_design
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.optimizer.heuristics import optimize_query
from repro.sql.translator import parse_query
from repro.storage.block import IOSnapshot
from repro.storage.table import Table
from repro.warehouse.maintenance import (
    INCREMENTAL,
    RECOMPUTE,
    RefreshReport,
    ViewMaintainer,
)
from repro.warehouse.rewriter import rewrite_with_views
from repro.warehouse.view import MaterializedView
from repro.workload.spec import QuerySpec, Workload


from dataclasses import dataclass, field


@dataclass(frozen=True)
class ServedResult:
    """A query answer annotated with its freshness provenance.

    ``staleness`` maps each materialized view the answer read to its
    version lag (0 = fresh; ``n`` = the view misses ``n`` base-relation
    update batches).  ``degraded`` is True when at least one installed
    view was excluded from the rewrite because its circuit breaker is
    open — the answer fell back (partly or fully) to base relations.

    On a sharded warehouse, ``partitions_read`` maps each partitioned
    relation (or shard-stored view) the plan touched to the shard ids it
    actually read, and ``partitions_pruned`` counts the shards partition
    pruning skipped.
    """

    query: str
    table: Table
    io: IOSnapshot
    views_used: Tuple[str, ...]
    staleness: Mapping[str, int]
    degraded: bool
    partitions_read: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)
    partitions_pruned: int = 0

    @property
    def max_staleness(self) -> int:
        """The worst version lag among the views this answer read."""
        return max(self.staleness.values(), default=0)

    @property
    def is_fresh(self) -> bool:
        return self.max_staleness == 0 and not self.degraded


@dataclass(frozen=True)
class QueryProfile:
    """Estimated-vs-measured report for one query execution."""

    query: str
    used_views: bool
    estimated_cost: Optional[float]
    measured_io: int
    estimated_rows: Optional[int]
    measured_rows: int

    @property
    def cost_error(self) -> Optional[float]:
        """``estimated / measured`` (None when either side is unknown)."""
        if self.estimated_cost is None or self.measured_io <= 0:
            return None
        return self.estimated_cost / self.measured_io


class DataWarehouse:
    """A data warehouse with MVPP-designed materialized views."""

    def __init__(
        self,
        catalog: Catalog,
        statistics: StatisticsCatalog,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        maintenance_trigger: str = PER_PERIOD,
        join_method: str = NESTED_LOOP,
        engine: str = VECTORIZED,
    ):
        self.catalog = catalog
        self.statistics = statistics
        self.cost_model = cost_model
        self.maintenance_trigger = maintenance_trigger
        self.estimator = CardinalityEstimator(statistics)
        self.database = Database()
        self.engine = ExecutionEngine(self.database, join_method, engine=engine)
        self.maintainer = ViewMaintainer(self.database, self.engine)
        self._queries: List[QuerySpec] = []
        self._update_frequencies: Dict[str, float] = {}
        # Shared subtree-cost memo, reused across design()/redesign()
        # runs; invalidated whenever statistics change (sync_statistics).
        self.cost_cache = CostCache()
        self._design: Optional[DesignResult] = None
        self._views: List[MaterializedView] = []
        # Freshness tracking: base-relation versions bump on every load
        # or update; each view records the versions it was built from.
        self._base_versions: Dict[str, int] = {}
        self._view_versions: Dict[str, Dict[str, int]] = {}
        # Resilience: optional fault injector + refresh scheduler, and
        # the row count each view held at its last committed swap (the
        # never-partial contract's witness).
        self.fault_injector = None
        self._scheduler = None
        self._resilience_config = None
        self._committed_cards: Dict[str, int] = {}
        # Adaptive: lazily-built controller; when present, the query and
        # update paths report every event to its workload monitor.
        self._controller = None
        # Horizontal sharding: a ShardManager once enable_sharding() ran.
        self.sharding = None
        # Streaming: a StreamingMaintainer once enable_streaming() ran;
        # the policy remembered from the design's config block.
        self.streaming = None
        self._streaming_policy = None

    # --------------------------------------------------------------- queries
    def add_query(self, name: str, sql: str, frequency: float) -> QuerySpec:
        """Register a warehouse query with its access frequency ``fq``."""
        if any(q.name == name for q in self._queries):
            raise WarehouseError(f"query {name!r} already registered")
        parse_query(sql, self.catalog)  # fail fast on bad SQL / names
        spec = QuerySpec(name, sql, frequency)
        self._queries.append(spec)
        self._design = None  # designs are invalidated by workload changes
        return spec

    def set_update_frequency(self, relation: str, frequency: float) -> None:
        """Register a base relation's update frequency ``fu``."""
        if relation not in self.catalog:
            raise WarehouseError(f"unknown relation {relation!r}")
        if frequency < 0:
            raise WarehouseError(f"update frequency must be >= 0: {frequency}")
        self._update_frequencies[relation] = frequency
        self._design = None

    def set_query_frequency(self, name: str, frequency: float) -> None:
        """Change a registered query's access frequency ``fq``.

        Invalidates the current design (like every workload change); the
        adaptive controller uses this to write observed frequencies back
        before installing an accepted redesign.
        """
        if frequency < 0:
            raise WarehouseError(f"query frequency must be >= 0: {frequency}")
        for index, spec in enumerate(self._queries):
            if spec.name == name:
                self._queries[index] = QuerySpec(spec.name, spec.sql, frequency)
                self._design = None
                return
        raise WarehouseError(f"unknown query {name!r}")

    @property
    def workload(self) -> Workload:
        return Workload(
            name="warehouse",
            catalog=self.catalog,
            statistics=self.statistics,
            queries=tuple(self._queries),
            update_frequencies=dict(self._update_frequencies),
        )

    @classmethod
    def from_workload(cls, workload: Workload, **kwargs) -> "DataWarehouse":
        """Build a warehouse pre-loaded with a workload's queries."""
        warehouse = cls(workload.catalog, workload.statistics, **kwargs)
        for spec in workload.queries:
            warehouse.add_query(spec.name, spec.sql, spec.frequency)
        for relation, frequency in workload.update_frequencies.items():
            warehouse.set_update_frequency(relation, frequency)
        return warehouse

    # ---------------------------------------------------------------- design
    def design(
        self, config: Optional[DesignConfig] = None, **legacy: Any
    ) -> DesignResult:
        """Run the full MVPP pipeline and install the chosen views.

        Takes the same :class:`~repro.mvpp.config.DesignConfig` as
        :func:`repro.design`; a config without an explicit
        ``maintenance_trigger`` inherits the warehouse's.  The legacy
        ``rotations`` / ``push_down`` keyword arguments still work but
        emit a :class:`DeprecationWarning`.
        """
        if not self._queries:
            raise WarehouseError("register at least one query before designing")
        config = coerce_design_config(
            config, legacy, owner="DataWarehouse.design()"
        )
        if config.maintenance_trigger is None:
            config = config.replace(maintenance_trigger=self.maintenance_trigger)
        if config.resilience is not None:
            # Remember as the default policy for scheduler() / serve().
            self._resilience_config = config.resilience
            self._scheduler = None
        if config.streaming is not None:
            # Remembered as the default policy for enable_streaming().
            self._streaming_policy = config.streaming
        if config.engine is not None:
            self.engine.engine = config.engine
        # Plan verification follows the design-time lint gate: a linted
        # design keeps verifying every lowering the warehouse performs.
        self.engine.lint = bool(config.lint)
        result = run_design(
            self.workload,
            config,
            estimator=self.estimator,
            cost_model=self.cost_model,
            cache=self.cost_cache if config.cache else None,
        )
        self._design = result
        self._views = [self._view_from_vertex(vertex) for vertex in result.materialized]
        if self.streaming is not None:
            # The propagation graph is compiled per installed design.
            self.streaming.recompile()
        # A fresh design invalidates freshness records: views must be
        # (re)materialized before they count as fresh.  redesign()
        # restores the records of views it keeps.
        self._view_versions.clear()
        # Register the views' estimated sizes so rewritten plans (reading
        # mv_* relations) remain estimable, e.g. by explain().
        for vertex in result.materialized:
            if vertex.stats is not None:
                self.statistics.set_relation(
                    f"mv_{vertex.name}",
                    vertex.stats.cardinality,
                    vertex.stats.blocks,
                )
        return result

    @staticmethod
    def _view_from_vertex(vertex) -> MaterializedView:
        """Build an installed view carrying the design's cost annotations."""
        return MaterializedView(
            name=f"mv_{vertex.name}",
            plan=vertex.operator,
            estimated_maintenance=float(vertex.maintenance_cost) or None,
            estimated_blocks=(
                float(vertex.stats.blocks) if vertex.stats is not None else None
            ),
        )

    @property
    def design_result(self) -> DesignResult:
        if self._design is None:
            raise WarehouseError("no design yet; call design() first")
        return self._design

    @property
    def views(self) -> Tuple[MaterializedView, ...]:
        return tuple(self._views)

    def install_views(self, views: Iterable[MaterializedView]) -> None:
        """Override the installed view set (e.g. to simulate a what-if
        view mix).  Call :meth:`materialize` afterwards to store them.
        The design result (if any) keeps providing the query plans."""
        self._views = list(views)
        self._view_versions.clear()

    def estimated_costs(self) -> CostBreakdown:
        """The design's predicted per-period cost breakdown."""
        return self.design_result.breakdown

    # -------------------------------------------------------------- sharding
    def enable_sharding(
        self,
        schemes,
        sites: Tuple[str, ...] = (),
        replication: int = 1,
        topology=None,
    ) -> "ShardManager":
        """Partition base relations horizontally per ``schemes``.

        ``schemes`` is an iterable of
        :class:`~repro.distributed.partition.PartitionScheme`; each is
        recorded in the statistics catalog (so cost calculators see the
        same shard map the storage layer routes by) and any
        already-loaded relation is split immediately.  ``sites`` and
        ``replication`` optionally place the shards round-robin with
        read replicas on a
        :class:`~repro.distributed.sites.Topology`.
        """
        from repro.distributed.sharding import ShardCatalog
        from repro.warehouse.sharding import ShardManager

        scheme_list = list(schemes)
        for scheme in scheme_list:
            if scheme.relation not in self.catalog:
                raise WarehouseError(
                    f"cannot partition unknown relation {scheme.relation!r}"
                )
        catalog = ShardCatalog.build(
            scheme_list, topology=topology, sites=tuple(sites),
            replication=replication,
        )
        for scheme in scheme_list:
            self.statistics.set_partition_scheme(scheme)
        self.sharding = ShardManager(self, catalog)
        for scheme in scheme_list:
            if scheme.relation in self.database:
                self.sharding.partition_relation(scheme.relation)
        return self.sharding

    def refresh_partitions(
        self, workers: int = 1, executor: str = "auto"
    ) -> List["RefreshOutcome"]:
        """Partition-wise refresh of every co-partitioned view's stale
        shards, through the resilient scheduler (per-partition breakers
        and freshness epochs).  ``workers > 1`` computes shard refreshes
        in parallel and commits them serially in shard order, so results
        and measured I/O are bit-identical to a serial run."""
        if self.sharding is None:
            raise WarehouseError("call enable_sharding() first")
        outcomes: List["RefreshOutcome"] = []
        scheduler = self.scheduler()
        for view in sorted(
            self.sharding.shardable_views(), key=lambda v: v.name
        ):
            outcomes.extend(
                scheduler.refresh_partitions(
                    view, workers=workers, executor=executor
                )
            )
        return outcomes

    # ------------------------------------------------------------------ data
    def load(
        self,
        relation: str,
        rows: Iterable[Mapping[str, object]],
        blocking_factor: Optional[float] = None,
    ) -> Table:
        """Load base data (short or qualified column names accepted)."""
        if relation not in self.catalog:
            raise WarehouseError(f"unknown relation {relation!r}")
        schema = self.catalog.schema(relation).qualify()
        if blocking_factor is None:
            if self.statistics.has_relation(relation):
                blocking_factor = self.statistics.relation(relation).blocking_factor
            else:
                blocking_factor = 10.0
        table = Table(schema, blocking_factor)
        for row in rows:
            table.insert(row)
        self._base_versions[relation] = self._base_versions.get(relation, 0) + 1
        registered = self.database.register(relation, table)
        if self.sharding is not None:
            self.sharding.on_load(relation)
        return registered

    def sync_statistics(self) -> None:
        """Overwrite registered relation statistics with loaded actuals.

        Invalidates the shared cost cache: every memoized subtree cost
        was computed against the superseded statistics.
        """
        for name in self.database.table_names:
            table = self.database.table(name)
            if name in self.catalog:
                self.statistics.set_relation(name, table.cardinality, table.num_blocks)
        self.estimator = CardinalityEstimator(self.statistics)
        self.cost_cache.invalidate()

    def materialize(self) -> List[RefreshReport]:
        """Compute and store every designed view."""
        reports = []
        for view in self.views:
            reports.append(self.maintainer.materialize(view))
            self._mark_fresh(view)
        return reports

    # ------------------------------------------------------------- freshness
    def _mark_fresh(self, view: MaterializedView) -> None:
        self._view_versions[view.name] = {
            relation: self._base_versions.get(relation, 0)
            for relation in view.base_relations
        }
        if view.name in self.database:
            self._committed_cards[view.name] = self.database.table(
                view.name
            ).cardinality
        if self.streaming is not None:
            # A committed recompute reflects the head of the change logs.
            self.streaming.note_refresh(view.name)

    def _view_available(self, view: MaterializedView) -> bool:
        """Whether serving can read this view — as a whole stored table
        or (sharded mode) as a complete set of shard tables."""
        if view.name in self.database:
            return True
        return self.sharding is not None and (
            self.sharding.view_shards_available(view)
        )

    def _view_is_fresh(self, view: MaterializedView) -> bool:
        if view.name in self.database:
            return self.is_fresh(view)
        if self.sharding is not None and (
            self.sharding.view_shards_available(view)
        ):
            return not self.sharding.stale_shards(view)
        return False

    def _view_staleness(self, view: MaterializedView) -> int:
        if self.streaming is not None:
            # Streaming warehouses answer staleness in LSN lag: change
            # records the view has not absorbed (see docs/streaming.md).
            return self.streaming.lag_records(view.name)
        if view.name in self._view_versions:
            return self.staleness(view)
        if self.sharding is not None and (
            self.sharding.view_shards_available(view)
        ):
            return self.sharding.view_staleness(view)
        return 0

    def is_fresh(self, view: MaterializedView) -> bool:
        """Whether a view reflects the current base-relation contents."""
        recorded = self._view_versions.get(view.name)
        if recorded is None:
            return False  # never materialized
        return all(
            self._base_versions.get(relation, 0) == version
            for relation, version in recorded.items()
        )

    def stale_views(self) -> List[MaterializedView]:
        """Views whose stored contents lag behind their base relations."""
        return [view for view in self.views if not self.is_fresh(view)]

    def staleness(self, view: MaterializedView) -> int:
        """Version lag: base-update batches the view has not absorbed."""
        recorded = self._view_versions.get(view.name)
        if recorded is None:
            return 0  # never materialized — it cannot serve queries anyway
        return sum(
            max(0, self._base_versions.get(relation, 0) - version)
            for relation, version in sorted(recorded.items())
        )

    def committed_cardinality(self, view_name: str) -> Optional[int]:
        """Rows the view held at its last committed (atomic) swap."""
        return self._committed_cards.get(view_name)

    # ------------------------------------------------------------- resilience
    def attach_faults(self, policy) -> "FaultInjector":
        """Install seeded fault injection on this warehouse's storage.

        ``policy`` is a :class:`repro.resilience.faults.FaultPolicy`;
        the returned :class:`~repro.resilience.faults.FaultInjector` is
        shared with any scheduler created afterwards.  Call
        :meth:`detach_faults` to go back to failure-free storage.
        """
        from repro.resilience.faults import FaultInjector, FaultPolicy

        if not isinstance(policy, FaultPolicy):
            raise WarehouseError(f"not a FaultPolicy: {policy!r}")
        injector = FaultInjector(policy)
        self.fault_injector = injector
        self.database.fault_injector = injector
        # Build-side reuse is disabled while faults are injected (a
        # cache hit would skip the build's seeded fault draws).
        self.engine.build_cache.invalidate()
        self._scheduler = None  # rebuilt with the new injector on demand
        return injector

    def detach_faults(self) -> None:
        """Remove fault injection (storage becomes failure-free again)."""
        self.fault_injector = None
        self.database.fault_injector = None
        self._scheduler = None

    def scheduler(self, config=None, injector=None) -> "RefreshScheduler":
        """The warehouse's :class:`~repro.resilience.scheduler.RefreshScheduler`.

        Created lazily from ``config`` (default: the design's
        ``DesignConfig.resilience`` block, else all defaults) and the
        attached fault injector; passing either argument rebuilds it.
        """
        from repro.resilience.config import ResilienceConfig
        from repro.resilience.scheduler import RefreshScheduler

        if config is not None or injector is not None or self._scheduler is None:
            resolved = config or self._resilience_config or ResilienceConfig()
            self._scheduler = RefreshScheduler(
                self,
                resolved,
                injector if injector is not None else self.fault_injector,
            )
        return self._scheduler

    def refresh_resilient(self) -> List["RefreshOutcome"]:
        """One scheduler pass over every view (retry/backoff/breaker)."""
        return self.scheduler().refresh_all()

    # -------------------------------------------------------------- streaming
    def enable_streaming(self, policy=None) -> "StreamingMaintainer":
        """Turn on CDC-driven streaming maintenance for this warehouse.

        Installs change capture on every base relation the current views
        depend on and compiles the delta propagation graph (recompiled
        automatically on ``design()`` / ``install_design()``).  ``policy``
        is a :class:`repro.cdc.StreamingPolicy`; when omitted, the
        design's ``DesignConfig.streaming`` block applies, else the
        defaults.  Returns the
        :class:`~repro.cdc.streaming.StreamingMaintainer`; calling again
        with a policy rebuilds it (watermarks reset — views resync at
        their next refresh or drain).
        """
        from repro.cdc import DEFAULT_STREAMING_POLICY, StreamingPolicy
        from repro.cdc.streaming import StreamingMaintainer

        if policy is None and self.streaming is not None:
            return self.streaming
        resolved = policy or self._streaming_policy or DEFAULT_STREAMING_POLICY
        if not isinstance(resolved, StreamingPolicy):
            raise WarehouseError(f"not a StreamingPolicy: {resolved!r}")
        if self.streaming is not None:
            self.streaming.changes.detach()
        self.streaming = StreamingMaintainer(self, resolved)
        return self.streaming

    def disable_streaming(self) -> None:
        """Remove change capture and drop the streaming maintainer."""
        if self.streaming is not None:
            self.streaming.changes.detach()
            self.streaming = None

    def drain_changes(self) -> "DrainReport":
        """Force a catch-up drain of every pending change record."""
        if self.streaming is None:
            raise WarehouseError(
                "streaming is not enabled; call enable_streaming() first"
            )
        return self.streaming.drain()

    # --------------------------------------------------------------- adaptive
    def controller(self, policy=None, config=None) -> "AdaptiveController":
        """The warehouse's :class:`~repro.adaptive.controller.AdaptiveController`.

        Created lazily (requires a design); passing ``policy`` (an
        :class:`~repro.adaptive.policy.AdaptivePolicy`) or ``config``
        rebuilds it.  While a controller is attached, :meth:`execute`,
        :meth:`serve` and :meth:`apply_update` report every event to its
        workload monitor, advancing the shared logical clock by the
        measured block I/O.
        """
        from repro.adaptive.controller import AdaptiveController

        if policy is not None or config is not None or self._controller is None:
            self._controller = AdaptiveController(
                self, policy=policy, config=config
            )
        return self._controller

    def adapt(self) -> "AdaptationDecision":
        """Run one adaptive decision: observe → detect → redesign → migrate.

        Returns the :class:`~repro.adaptive.controller.AdaptationDecision`
        (also appended to ``controller().history``); never raises on a
        failed migration — the previous design keeps serving.
        """
        return self.controller().evaluate()

    def _note_query(self, name: str, io_blocks: int) -> None:
        if self._controller is not None:
            self._controller.note_query(name, max(1.0, float(io_blocks)))

    def _note_update(self, relation: str, io_blocks: int) -> None:
        if self._controller is not None:
            self._controller.note_update(relation, max(1.0, float(io_blocks)))

    def _breaker_allows(self, view_name: str) -> bool:
        """Whether the query path may read this view (breaker not open)."""
        if self._scheduler is None:
            return True
        return self._scheduler.allows(view_name)

    # --------------------------------------------------------------- queries
    @staticmethod
    def _positional_shim(
        method: str, extra: Tuple[Any, ...], use_views: bool, freshness: str
    ) -> Tuple[bool, str]:
        """Accept the pre-1.1 positional ``(use_views, freshness)`` call
        shape with a :class:`DeprecationWarning` (keyword-only now)."""
        if not extra:
            return use_views, freshness
        if len(extra) > 2:
            raise TypeError(
                f"DataWarehouse.{method}() takes at most 3 positional arguments"
            )
        warnings.warn(
            f"passing use_views/freshness positionally to "
            f"DataWarehouse.{method}() is deprecated; use keywords "
            f"(e.g. {method}(name, use_views=False))",
            DeprecationWarning,
            stacklevel=3,
        )
        use_views = bool(extra[0])
        if len(extra) == 2:
            freshness = extra[1]
        return use_views, freshness

    def query_plan(
        self, name: str, *extra: Any, use_views: bool = True, freshness: str = "any"
    ):
        """The (possibly view-rewritten) executable plan for a query.

        ``freshness`` controls how stale views are treated:

        * ``"any"`` — use every materialized view (default; caller
          accepts possibly-stale answers between refreshes);
        * ``"fresh"`` — rewrite only over up-to-date views; stale lineage
          falls back to base data;
        * ``"refresh"`` — refresh stale views first, then use them all.
        """
        use_views, freshness = self._positional_shim(
            "query_plan", extra, use_views, freshness
        )
        spec = next((q for q in self._queries if q.name == name), None)
        if spec is None:
            raise WarehouseError(f"unknown query {name!r}")
        if freshness not in ("any", "fresh", "refresh"):
            raise WarehouseError(f"unknown freshness policy {freshness!r}")
        if self._design is not None:
            plan = self.design_result.mvpp.query_root(name).operator
        else:
            plan = optimize_query(
                parse_query(spec.sql, self.catalog), self.estimator, self.cost_model
            )
        if not use_views or not self._views:
            return plan
        views = list(self._views)
        if freshness == "refresh":
            for view in self.stale_views():
                if view.name in self.database:
                    self.maintainer.materialize(view)
                    self._mark_fresh(view)
        elif freshness == "fresh":
            views = [v for v in views if self.is_fresh(v)]
        views = [v for v in views if v.name in self.database]
        # Graceful degradation: a view whose circuit breaker is open is
        # treated as unavailable — the rewrite falls back to base data.
        views = [v for v in views if self._breaker_allows(v.name)]
        rewritten, _ = rewrite_with_views(plan, views)
        return rewritten

    def execute(
        self,
        name: str,
        *extra: Any,
        use_views: bool = True,
        freshness: str = "any",
    ) -> Tuple[Table, IOSnapshot]:
        """Answer a registered query; returns (result, measured block I/O).

        ``use_views`` and ``freshness`` are keyword-only (positional
        bools are deprecated).
        """
        use_views, freshness = self._positional_shim(
            "execute", extra, use_views, freshness
        )
        with obs.span(
            "execution.warehouse_query",
            query=name,
            use_views=use_views,
            freshness=freshness,
        ) as span:
            plan = self.query_plan(name, use_views=use_views, freshness=freshness)
            missing = [
                r for r in plan.base_relations()
                if r not in self.database
            ]
            if missing:
                raise WarehouseError(
                    f"load base data before executing: missing {sorted(missing)}"
                )
            result, io = self.engine.run(plan)
            span.set(measured_io=io.total, rows=result.cardinality)
            if obs.enabled():
                self._record_drift(name, plan, io.total)
        self._note_query(name, io.total)
        return result, io

    def serve(
        self,
        name: str,
        freshness: str = "any",
        prune: bool = True,
        max_staleness: Optional[int] = None,
    ) -> ServedResult:
        """Answer a query with explicit freshness provenance.

        The fault-tolerant face of :meth:`execute`: the result is
        annotated with which materialized views it read, how stale each
        one is (in base-update batches), and whether the answer was
        *degraded* — i.e. some installed view was skipped because its
        circuit breaker is open, falling back to base relations.

        The staleness contract (see ``docs/resilience.md``): an answer
        is always internally consistent.  Views are refreshed into a
        shadow table and swapped atomically, so a served view is either
        its previous committed contents or its new committed contents —
        never a mix.

        On a sharded warehouse (:meth:`enable_sharding`), equality and
        range predicates on a partition key route the plan to only the
        relevant shards; ``prune=False`` forces the unpruned baseline.

        With streaming enabled (:meth:`enable_streaming`), ``staleness``
        values are LSN lags — pending change records each view has not
        absorbed — and ``max_staleness`` bounds them: when any
        materialized view lags more than that many records, a catch-up
        drain runs before the query executes.
        """
        spec = next((q for q in self._queries if q.name == name), None)
        if spec is None:
            raise WarehouseError(f"unknown query {name!r}")
        if freshness not in ("any", "fresh", "refresh"):
            raise WarehouseError(f"unknown freshness policy {freshness!r}")
        if max_staleness is not None:
            if self.streaming is None:
                raise WarehouseError(
                    "max_staleness requires enable_streaming() first"
                )
            if max_staleness < 0:
                raise WarehouseError(
                    f"max_staleness must be >= 0: {max_staleness}"
                )
            if self.streaming.max_lag() > max_staleness:
                self.streaming.drain()
        with obs.span(
            "execution.serve", query=name, freshness=freshness
        ) as span:
            if self._design is not None:
                plan = self.design_result.mvpp.query_root(name).operator
            else:
                plan = optimize_query(
                    parse_query(spec.sql, self.catalog),
                    self.estimator,
                    self.cost_model,
                )
            views = [v for v in self._views if self._view_available(v)]
            if freshness == "refresh":
                for view in self.stale_views():
                    if view.name in self.database:
                        self.maintainer.materialize(view)
                        self._mark_fresh(view)
                if self.sharding is not None:
                    for view in self.sharding.shardable_views():
                        if self.sharding.view_shards_available(view):
                            for shard in self.sharding.stale_shards(view):
                                self.maintainer.materialize(
                                    self.sharding.shard_view(view, shard)
                                )
                                self.sharding.record_fresh(view, shard)
            elif freshness == "fresh":
                views = [v for v in views if self._view_is_fresh(v)]
            available = [v for v in views if self._breaker_allows(v.name)]
            degraded = len(available) < len(views)
            rewritten, used = rewrite_with_views(plan, available)
            partitions_read: Mapping[str, Tuple[int, ...]] = {}
            partitions_pruned = 0
            overrides: Dict[str, Table] = {}
            if self.sharding is not None:
                overrides, partitions_read, partitions_pruned = (
                    self.sharding.bind(rewritten, prune=prune)
                )
            missing = [
                r for r in rewritten.base_relations()
                if r not in self.database and r not in overrides
            ]
            if missing:
                raise WarehouseError(
                    f"load base data before executing: missing {sorted(missing)}"
                )
            if overrides:
                result, io = self.sharding.run(rewritten, overrides)
            else:
                result, io = self.engine.run(rewritten)
            by_name = {v.name: v for v in self._views}
            used_names = sorted(dict.fromkeys(v.name for v in used))
            staleness = {
                view_name: self._view_staleness(by_name[view_name])
                for view_name in used_names
            }
            served = ServedResult(
                query=name,
                table=result,
                io=io,
                views_used=tuple(used_names),
                staleness=staleness,
                degraded=degraded,
                partitions_read=partitions_read,
                partitions_pruned=partitions_pruned,
            )
            span.set(
                measured_io=io.total,
                rows=result.cardinality,
                views_used=list(served.views_used),
                max_staleness=served.max_staleness,
                degraded=degraded,
            )
            if obs.enabled():
                registry = obs.metrics()
                registry.counter(
                    "resilience.queries_served",
                    freshness="fresh" if served.is_fresh else (
                        "degraded" if degraded else "stale"
                    ),
                ).inc()
                registry.histogram("resilience.staleness").observe(
                    float(served.max_staleness)
                )
                if degraded:
                    obs.journal_event(
                        "warehouse.serve.degraded",
                        query=name,
                        excluded=sorted(
                            v.name for v in views if v not in available
                        ),
                    )
        self._note_query(name, io.total)
        return served

    def _record_drift(self, name: str, plan, measured_io: int) -> None:
        """Publish per-query estimated-vs-measured cost drift metrics."""
        from repro.optimizer.plans import AnnotatedPlan

        try:
            estimated = AnnotatedPlan(
                plan, self.estimator, self.cost_model
            ).total_cost
        except Exception:
            return  # stored views may lack statistics; drift is unknown
        registry = obs.metrics()
        registry.gauge("warehouse.estimated_cost", query=name).set(estimated)
        registry.gauge("warehouse.measured_io", query=name).set(measured_io)
        if measured_io > 0:
            registry.gauge("warehouse.cost_drift_ratio", query=name).set(
                estimated / measured_io
            )
        obs.calibration().record(
            "access",
            name,
            type(plan).__name__.lower(),
            estimated,
            float(measured_io),
        )

    def redesign(
        self, config: Optional[DesignConfig] = None, **legacy: Any
    ) -> "MigrationPlan":
        """Re-run the design pipeline and migrate the installed views.

        Stored tables of views whose defining plans survive are kept
        as-is (their names included); obsolete view tables are dropped;
        only genuinely new views are materialized (whenever their base
        data is loaded).  Returns the executed migration plan, annotated
        with its one-off cost (see
        :func:`~repro.warehouse.evolution.cost_migration`).

        Accepts the same :class:`~repro.mvpp.config.DesignConfig` as
        :meth:`design` (legacy ``rotations`` / ``push_down`` keywords
        are shimmed with a :class:`DeprecationWarning`).
        """
        if not self._queries:
            raise WarehouseError("register at least one query before designing")
        config = coerce_design_config(
            config, legacy, owner="DataWarehouse.redesign()"
        )
        if config.maintenance_trigger is None:
            config = config.replace(maintenance_trigger=self.maintenance_trigger)
        if config.resilience is not None:
            self._resilience_config = config.resilience
            self._scheduler = None
        if config.engine is not None:
            self.engine.engine = config.engine
        self.engine.lint = bool(config.lint)
        result = run_design(
            self.workload,
            config,
            estimator=self.estimator,
            cost_model=self.cost_model,
            cache=self.cost_cache if config.cache else None,
        )
        return self.install_design(result)

    def install_design(
        self, result: DesignResult, scheduler: Optional["RefreshScheduler"] = None
    ) -> "MigrationPlan":
        """Migrate the installed view set to an already-computed design.

        The staged path behind :meth:`redesign` and the adaptive
        controller: genuinely new views are built *before* the serving
        set changes (queries keep answering from the old views while the
        new tables fill), then the design, view set, freshness records,
        dropped tables and registered statistics are swapped in one
        step.  When ``scheduler`` is given, each new view is built
        through its retry/backoff/breaker machinery; a view that fails
        to build aborts the whole migration — built tables are torn down
        and the old design keeps serving — and raises
        :class:`WarehouseError`.

        Views are materialized whenever their base data is loaded; with
        no data loaded the new views are installed unmaterialized
        (exactly like :meth:`design` + a later :meth:`materialize`).
        """
        from repro.warehouse.evolution import cost_migration, plan_migration

        installed = list(self._views)
        old_versions = dict(self._view_versions)
        new_views = [
            self._view_from_vertex(vertex) for vertex in result.materialized
        ]
        migration = plan_migration(installed, new_views)
        migration = cost_migration(
            migration,
            access_costs={
                vertex.operator.signature: vertex.access_cost
                for vertex in result.materialized
            },
            stored_blocks={
                view.name: float(self.database.table(view.name).num_blocks)
                for view in migration.drop
                if view.name in self.database
            },
        )
        data_loaded = all(
            relation in self.database
            for view in migration.create
            for relation in view.base_relations
        )
        built: List[MaterializedView] = []
        if migration.create and data_loaded:
            for view in migration.create:
                if scheduler is not None:
                    outcome = scheduler.refresh_view(view)
                    if not outcome.ok:
                        for done in built:
                            self.database.drop(done.name)
                            self._view_versions.pop(done.name, None)
                            self.engine.indexes.invalidate(done.name)
                            self.engine.build_cache.invalidate(done.name)
                        self._view_versions.pop(view.name, None)
                        raise WarehouseError(
                            f"migration aborted: view {view.name!r} failed "
                            f"to build ({outcome.error or outcome.status}); "
                            f"the previous design keeps serving"
                        )
                else:
                    self.maintainer.materialize(view)
                built.append(view)
        # Atomic swap: from here on queries see the new design.
        self._design = result
        self._views = list(migration.keep) + list(migration.create)
        self._view_versions.clear()
        for view in migration.keep:
            if view.name in old_versions:
                self._view_versions[view.name] = old_versions[view.name]
        for view in built:
            self._mark_fresh(view)
        for view in migration.drop:
            self.database.drop(view.name)
            self._committed_cards.pop(view.name, None)
            self.engine.indexes.invalidate(view.name)
            self.engine.build_cache.invalidate(view.name)
        # Register the new views' estimated sizes so rewritten plans
        # (reading mv_* relations) remain estimable, e.g. by explain().
        for vertex in result.materialized:
            if vertex.stats is not None:
                self.statistics.set_relation(
                    f"mv_{vertex.name}",
                    vertex.stats.cardinality,
                    vertex.stats.blocks,
                )
        if self.streaming is not None:
            # New view set, new propagation graph (and change capture
            # for any base relations the new views introduce).
            self.streaming.recompile()
        return migration

    def explain(
        self, name: str, *extra: Any, use_views: bool = True, freshness: str = "any"
    ) -> str:
        """EXPLAIN-style report: the executable plan with estimated
        per-node cardinalities and block-access costs, plus which
        materialized views the rewrite uses.  ``use_views`` and
        ``freshness`` are keyword-only (positional bools are deprecated)."""
        from repro.optimizer.plans import AnnotatedPlan
        from repro.warehouse.rewriter import rewrite_with_views

        use_views, freshness = self._positional_shim(
            "explain", extra, use_views, freshness
        )
        spec = next((q for q in self._queries if q.name == name), None)
        if spec is None:
            raise WarehouseError(f"unknown query {name!r}")
        plan = self.query_plan(name, use_views=use_views, freshness=freshness)
        used: List[MaterializedView] = []
        if use_views and self._views:
            base_plan = self.query_plan(name, use_views=False)
            _, used = rewrite_with_views(base_plan, self._views)
        lines = [f"EXPLAIN {name}: {spec.sql}"]
        if used:
            lines.append(
                "materialized views used: "
                + ", ".join(sorted({v.name for v in used}))  # lint: ignore[C102] — names are strings, totally ordered
            )
        else:
            lines.append("materialized views used: (none)")
        # Estimate over the rewritten plan; stored views may not have
        # registered statistics, so fall back to the structural plan.
        try:
            from repro.algebra.operators import Relation

            annotated = AnnotatedPlan(plan, self.estimator, self.cost_model)
            lines.append(annotated.describe())
            cost = annotated.total_cost
            if isinstance(plan, Relation):
                # A query answered by scanning one stored view: the cost
                # is the scan itself, not the (free) leaf access.
                cost = self.cost_model.scan_cost(annotated.output_stats)
            lines.append(f"estimated cost: {cost:,.0f} block accesses")
        except Exception:
            lines.append(plan.describe())
        return "\n".join(lines)

    def profile(
        self, name: str, *extra: Any, use_views: bool = True
    ) -> "QueryProfile":
        """Run a query and report estimated-vs-measured cost and rows.

        ``use_views`` is keyword-only (a positional bool is deprecated),
        matching :meth:`execute` / :meth:`explain`.  The estimation
        error quantifies how well the Table-1-style statistics describe
        the loaded data — large deviations suggest running
        :meth:`sync_statistics` (or re-designing).
        """
        from repro.optimizer.plans import AnnotatedPlan

        use_views, _ = self._positional_shim("profile", extra, use_views, "any")

        plan = self.query_plan(name, use_views=use_views)
        estimated_cost: Optional[float] = None
        estimated_rows: Optional[int] = None
        try:
            annotated = AnnotatedPlan(plan, self.estimator, self.cost_model)
            estimated_cost = annotated.total_cost
            estimated_rows = annotated.output_stats.cardinality
        except Exception:
            pass
        result, io = self.execute(name, use_views=use_views)
        return QueryProfile(
            query=name,
            used_views=use_views,
            estimated_cost=estimated_cost,
            measured_io=io.total,
            estimated_rows=estimated_rows,
            measured_rows=result.cardinality,
        )

    # ------------------------------------------------------------ maintenance
    def refresh(self) -> List[RefreshReport]:
        """Recompute every materialized view (the paper's policy)."""
        reports = []
        for view in self.views:
            reports.append(self.maintainer.materialize(view))
            self._mark_fresh(view)
        return reports

    def apply_update(
        self,
        relation: str,
        rows: Iterable[Mapping[str, object]],
        policy: str = RECOMPUTE,
    ) -> List[RefreshReport]:
        """Insert rows into a base relation and maintain affected views.

        With ``policy="defer"`` no view is touched: affected views become
        stale (see :meth:`stale_views`) until the next refresh or a
        ``freshness="refresh"`` query.

        With ``policy="stream"`` (requires :meth:`enable_streaming`) the
        rows are captured in the relation's change log and views are
        maintained by the streaming drain loop — immediately only if the
        backpressure bound trips, otherwise at the next
        :meth:`drain_changes` / bounded-staleness serve.
        """
        from repro.warehouse.maintenance import validate_delta_rows

        if relation not in self.database:
            raise WarehouseError(f"relation {relation!r} has no loaded data")
        if policy not in (RECOMPUTE, INCREMENTAL, "defer", "stream"):
            raise WarehouseError(f"unknown maintenance policy {policy!r}")
        if policy == "stream" and self.streaming is None:
            raise WarehouseError(
                "policy='stream' requires enable_streaming() first"
            )
        with obs.span(
            "maintenance.update", relation=relation, policy=policy
        ) as span:
            io_before = self.database.io.snapshot()
            rows = validate_delta_rows(
                self.database.table(relation).schema, rows, relation
            )
            span.set(delta_rows=len(rows))
            self.database.table(relation).insert_many(rows)
            self._base_versions[relation] = self._base_versions.get(relation, 0) + 1
            self.engine.indexes.invalidate(relation)
            self.engine.build_cache.invalidate(relation)
            if self.sharding is not None:
                affected = self.sharding.on_update(relation, rows)
                span.set(shards_affected=list(affected))
            reports: List[RefreshReport] = []
            if policy == "stream":
                self.streaming.on_ingest()
                self._note_update(
                    relation, self.database.io.since(io_before).total
                )
                return reports
            if policy == "defer":
                self._note_update(
                    relation, self.database.io.since(io_before).total
                )
                return reports
            for view in self.views:
                if not view.depends_on(relation):
                    continue
                if view.name not in self.database:
                    continue  # not materialized yet; materialize() builds it
                if policy == INCREMENTAL:
                    reports.append(
                        self.maintainer.incremental_refresh(view, relation, rows)
                    )
                else:
                    reports.append(self.maintainer.materialize(view))
                self._mark_fresh(view)
                self.engine.indexes.invalidate(view.name)
                self.engine.build_cache.invalidate(view.name)
            span.set(views_refreshed=len(reports))
            self._note_update(relation, self.database.io.since(io_before).total)
        return reports

    def apply_delete(
        self,
        relation: str,
        rows: Iterable[Mapping[str, object]],
        policy: str = "stream",
    ) -> List[RefreshReport]:
        """Remove rows from a base relation and maintain affected views.

        Rows are matched by value (one stored occurrence removed per
        given row, bag semantics).  ``policy`` is ``"stream"`` (capture
        the deletes in the change log; default), ``"recompute"`` (batch
        recompute every affected view now) or ``"defer"``.
        """
        from repro.warehouse.maintenance import validate_delta_rows

        if relation not in self.database:
            raise WarehouseError(f"relation {relation!r} has no loaded data")
        if policy not in (RECOMPUTE, "defer", "stream"):
            raise WarehouseError(f"unknown delete policy {policy!r}")
        if policy == "stream" and self.streaming is None:
            raise WarehouseError(
                "policy='stream' requires enable_streaming() first"
            )
        if self.sharding is not None:
            raise WarehouseError(
                "apply_delete is not supported on a sharded warehouse"
            )
        with obs.span(
            "maintenance.delete", relation=relation, policy=policy
        ) as span:
            io_before = self.database.io.snapshot()
            rows = validate_delta_rows(
                self.database.table(relation).schema, rows, relation
            )
            removed = self.database.table(relation).delete_many(rows)
            span.set(delta_rows=len(rows), removed=len(removed))
            self._base_versions[relation] = self._base_versions.get(relation, 0) + 1
            self.engine.indexes.invalidate(relation)
            self.engine.build_cache.invalidate(relation)
            reports: List[RefreshReport] = []
            if policy == "stream":
                self.streaming.on_ingest()
            elif policy == RECOMPUTE:
                for view in self.views:
                    if not view.depends_on(relation):
                        continue
                    if view.name not in self.database:
                        continue
                    reports.append(self.maintainer.materialize(view))
                    self._mark_fresh(view)
                    self.engine.indexes.invalidate(view.name)
                    self.engine.build_cache.invalidate(view.name)
            span.set(views_refreshed=len(reports))
            self._note_update(relation, self.database.io.since(io_before).total)
        return reports
