"""Workloads: the paper's example, synthetic generators, data generation."""

from repro.workload.datagen import paper_rows, star_rows, synthetic_rows
from repro.workload.example import (
    PAPER_QUERY_SQL,
    Q3_DATE,
    paper_catalog,
    paper_queries,
    paper_statistics,
    paper_workload,
    paper_workload_fig7,
)
from repro.workload.generator import (
    GeneratedWorkload,
    GeneratorConfig,
    generate_workload,
)
from repro.workload.overlap import OverlapConfig, overlap_workload
from repro.workload.query_log import (
    FrequencyEstimate,
    LogEntry,
    apply_to_workload,
    estimate_frequencies,
)
from repro.workload.spec import QuerySpec, Workload
from repro.workload.star_schema import StarConfig, star_workload

__all__ = [
    "FrequencyEstimate",
    "GeneratedWorkload",
    "GeneratorConfig",
    "LogEntry",
    "OverlapConfig",
    "apply_to_workload",
    "estimate_frequencies",
    "overlap_workload",
    "PAPER_QUERY_SQL",
    "Q3_DATE",
    "QuerySpec",
    "StarConfig",
    "Workload",
    "generate_workload",
    "paper_catalog",
    "paper_queries",
    "paper_rows",
    "paper_statistics",
    "paper_workload",
    "paper_workload_fig7",
    "star_rows",
    "star_workload",
    "synthetic_rows",
]
