"""Synthetic data generation matching the workload statistics.

The paper has no public dataset (only Table 1's statistics), so data is
synthesized to *match the registered statistics*: value distributions are
chosen so that measured selectivities track Table 1 (e.g. 1-in-50 cities
makes ``city = 'LA'`` select ~2% of divisions, quantities uniform on
1..200 make ``quantity > 100`` select ~50%).  This is the documented
substitution of DESIGN.md §3: same statistical behaviour, synthetic rows.
"""

from __future__ import annotations

import datetime
import random
from typing import Dict, List, Mapping

from repro.errors import WorkloadError
from repro.workload.generator import (
    CATEGORY_DISTINCT,
    VAL_RANGE,
    GeneratedWorkload,
)
from repro.workload.star_schema import ATTR_DISTINCT, StarConfig

#: 50 city names; 'LA' is drawn uniformly, giving the paper's s = 0.02.
CITIES = ["LA", "SF", "NY", "HK"] + [f"City{i}" for i in range(46)]


def paper_rows(
    scale: float = 0.01, seed: int = 0
) -> Dict[str, List[Mapping[str, object]]]:
    """Rows for the paper's five relations at ``scale`` of Table 1's sizes.

    ``scale=1.0`` produces the full 30k/5k/50k/20k/80k sizes; the default
    1% keeps executor tests fast while preserving every selectivity.
    """
    if scale <= 0:
        raise WorkloadError(f"scale must be positive: {scale}")
    rng = random.Random(seed)
    n_product = max(1, int(30_000 * scale))
    n_division = max(1, int(5_000 * scale))
    n_order = max(1, int(50_000 * scale))
    n_customer = max(1, int(20_000 * scale))
    n_part = max(1, int(80_000 * scale))

    divisions = [
        {"Did": i, "name": f"Div{i}", "city": rng.choice(CITIES)}
        for i in range(n_division)
    ]
    products = [
        {"Pid": i, "name": f"Prod{i}", "Did": rng.randrange(n_division)}
        for i in range(n_product)
    ]
    customers = [
        {"Cid": i, "name": f"Cust{i}", "city": rng.choice(CITIES)}
        for i in range(n_customer)
    ]
    start = datetime.date(1996, 1, 1).toordinal()
    orders = [
        {
            "Pid": rng.randrange(n_product),
            "Cid": rng.randrange(n_customer),
            "quantity": rng.randint(1, 200),
            "date": datetime.date.fromordinal(start + rng.randrange(366)),
        }
        for _ in range(n_order)
    ]
    parts = [
        {
            "Tid": i,
            "name": f"Part{i}",
            "Pid": rng.randrange(n_product),
            "supplier": f"Sup{rng.randrange(100)}",
        }
        for i in range(n_part)
    ]
    return {
        "Product": products,
        "Division": divisions,
        "Order": orders,
        "Customer": customers,
        "Part": parts,
    }


def synthetic_rows(
    generated: GeneratedWorkload, scale: float = 0.01, seed: int = 0
) -> Dict[str, List[Mapping[str, object]]]:
    """Rows for a :func:`~repro.workload.generator.generate_workload` output.

    Follows the generator's column conventions (``id``, ``R*_fk``,
    ``val``, ``cat``); FK values are drawn uniformly over the *scaled*
    target cardinality so join selectivities match the statistics.
    """
    if scale <= 0:
        raise WorkloadError(f"scale must be positive: {scale}")
    rng = random.Random(seed)
    scaled = {
        name: max(1, int(card * scale))
        for name, card in generated.cardinalities.items()
    }
    data: Dict[str, List[Mapping[str, object]]] = {}
    for name, count in scaled.items():
        targets = generated.foreign_keys[name]
        rows = []
        for i in range(count):
            row: Dict[str, object] = {"id": i}
            for target in targets:
                row[f"{target}_fk"] = rng.randrange(scaled[target])
            row["val"] = rng.randrange(VAL_RANGE)
            row["cat"] = f"c{rng.randrange(CATEGORY_DISTINCT)}"
            rows.append(row)
        data[name] = rows
    return data


def star_rows(
    config: StarConfig, scale: float = 0.01, seed: int = 0
) -> Dict[str, List[Mapping[str, object]]]:
    """Rows for a :func:`~repro.workload.star_schema.star_workload` schema."""
    if scale <= 0:
        raise WorkloadError(f"scale must be positive: {scale}")
    rng = random.Random(seed)
    n_fact = max(1, int(config.fact_rows * scale))
    n_dim = max(1, int(config.dimension_rows * scale))
    data: Dict[str, List[Mapping[str, object]]] = {}
    dims = [f"Dim{i + 1}" for i in range(config.num_dimensions)]
    for dim in dims:
        data[dim] = [
            {
                "id": i,
                "attr": f"a{rng.randrange(ATTR_DISTINCT)}",
                "level": rng.randrange(10),
            }
            for i in range(n_dim)
        ]
    facts = []
    for i in range(n_fact):
        row: Dict[str, object] = {"id": i}
        for dim in dims:
            row[f"{dim}_fk"] = rng.randrange(n_dim)
        row["measure"] = rng.randrange(10_000)
        row["qty"] = rng.randint(1, 100)
        facts.append(row)
    data["Fact"] = facts
    return data
