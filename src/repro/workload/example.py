"""The paper's running example (Section 2, Table 1, Figures 2–9).

Five member-database relations::

    Product  (Pid, name, Did)          30k records / 3k blocks
    Division (Did, name, city)          5k records / 0.5k blocks
    Order    (Pid, Cid, quantity, date)50k records / 6k blocks
    Customer (Cid, name, city)         20k records / 2k blocks
    Part     (Tid, name, Pid, supplier)80k records / 10k blocks

and four warehouse queries with access frequencies 10, 0.5, 0.8 and 5.
Selectivities follow Table 1: ``s(Division.city='LA') = 0.02``,
``s(Order.date > 1996-07-01) = 0.5``, ``s(Order.quantity > 100) = 0.5``,
and join selectivities ``js = 1/|dimension|`` for each foreign-key join
(every product has one division, every order one customer, etc.), which
reproduces Table 1's derived sizes (Product⋈Division = 30k,
Product⋈Division⋈Part = 80k, ...).

All base relations are updated once per period (``fu = 1``), exactly as
the paper assumes.
"""

from __future__ import annotations

import datetime

from repro.algebra.expressions import compare, literal
from repro.catalog.datatypes import DataType
from repro.catalog.schema import Catalog
from repro.catalog.statistics import StatisticsCatalog
from repro.workload.spec import QuerySpec, Workload

#: The reference date used by Q3 (the paper writes ``date > 7/1/96``).
Q3_DATE = datetime.date(1996, 7, 1)


def paper_catalog() -> Catalog:
    """Schemas of the five member-database relations."""
    catalog = Catalog()
    catalog.register_relation(
        "Product",
        [("Pid", DataType.INTEGER), ("name", DataType.STRING), ("Did", DataType.INTEGER)],
    )
    catalog.register_relation(
        "Division",
        [("Did", DataType.INTEGER), ("name", DataType.STRING), ("city", DataType.STRING)],
    )
    catalog.register_relation(
        "Order",
        [
            ("Pid", DataType.INTEGER),
            ("Cid", DataType.INTEGER),
            ("quantity", DataType.INTEGER),
            ("date", DataType.DATE),
        ],
    )
    catalog.register_relation(
        "Customer",
        [("Cid", DataType.INTEGER), ("name", DataType.STRING), ("city", DataType.STRING)],
    )
    catalog.register_relation(
        "Part",
        [
            ("Tid", DataType.INTEGER),
            ("name", DataType.STRING),
            ("Pid", DataType.INTEGER),
            ("supplier", DataType.STRING),
        ],
    )
    return catalog


def paper_statistics() -> StatisticsCatalog:
    """Table 1: sizes, blocks, selection and join selectivities."""
    stats = StatisticsCatalog()
    stats.set_relation("Product", 30_000, 3_000)
    stats.set_relation("Division", 5_000, 500)
    stats.set_relation("Order", 50_000, 6_000)
    stats.set_relation("Customer", 20_000, 2_000)
    stats.set_relation("Part", 80_000, 10_000)

    # Column statistics (distinct values; min/max for range predicates).
    stats.set_column("Product.Pid", 30_000)
    stats.set_column("Product.Did", 5_000)
    stats.set_column("Division.Did", 5_000)
    stats.set_column("Division.city", 50)
    stats.set_column("Division.name", 5_000)
    stats.set_column("Order.Pid", 30_000)
    stats.set_column("Order.Cid", 20_000)
    stats.set_column(
        "Order.quantity", 200, minimum=1, maximum=200
    )
    stats.set_column(
        "Order.date",
        366,
        minimum=datetime.date(1996, 1, 1),
        maximum=datetime.date(1996, 12, 31),
    )
    stats.set_column("Customer.Cid", 20_000)
    stats.set_column("Customer.city", 50)
    stats.set_column("Part.Tid", 80_000)
    stats.set_column("Part.Pid", 30_000)
    stats.set_column("Part.supplier", 100)

    # Pinned selection selectivities — Table 1's ``s`` column, registered
    # by canonical predicate signature so estimation is exact, not derived.
    stats.set_predicate_selectivity(
        compare("Division.city", "=", literal("LA")).signature, 0.02
    )
    stats.set_predicate_selectivity(
        compare("Order.date", ">", literal(Q3_DATE)).signature, 0.5
    )
    stats.set_predicate_selectivity(
        compare("Order.quantity", ">", literal(100)).signature, 0.5
    )

    # Join selectivities — Table 1's ``js`` column: one matching dimension
    # row per fact row, i.e. js = 1/|dimension side|.
    stats.set_join_selectivity("Product.Did", "Division.Did", 1.0 / 5_000)
    stats.set_join_selectivity("Part.Pid", "Product.Pid", 1.0 / 30_000)
    stats.set_join_selectivity("Order.Cid", "Customer.Cid", 1.0 / 20_000)
    stats.set_join_selectivity("Product.Pid", "Order.Pid", 1.0 / 30_000)
    return stats


#: The paper's four warehouse queries (Section 2) with their frequencies.
PAPER_QUERY_SQL = {
    "Q1": (
        "SELECT Product.name FROM Product, Division "
        "WHERE Division.city = 'LA' AND Product.Did = Division.Did",
        10.0,
    ),
    "Q2": (
        "SELECT Part.name FROM Product, Part, Division "
        "WHERE Division.city = 'LA' AND Product.Did = Division.Did "
        "AND Part.Pid = Product.Pid",
        0.5,
    ),
    "Q3": (
        "SELECT Customer.name, Product.name, quantity "
        "FROM Product, Division, Order, Customer "
        "WHERE Division.city = 'LA' AND Product.Did = Division.Did "
        "AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid "
        "AND date > '1996-07-01'",
        0.8,
    ),
    "Q4": (
        "SELECT Customer.city, date FROM Order, Customer "
        "WHERE quantity > 100 AND Order.Cid = Customer.Cid",
        5.0,
    ),
}


def paper_queries() -> tuple:
    return tuple(
        QuerySpec(name, sql, frequency)
        for name, (sql, frequency) in PAPER_QUERY_SQL.items()
    )


def paper_workload() -> Workload:
    """The complete Section-2 design problem (Figures 3/6/9, Table 2)."""
    return Workload(
        name="paper-example",
        catalog=paper_catalog(),
        statistics=paper_statistics(),
        queries=paper_queries(),
        update_frequencies={
            "Product": 1.0,
            "Division": 1.0,
            "Order": 1.0,
            "Customer": 1.0,
            "Part": 1.0,
        },
    )


def paper_workload_fig7() -> Workload:
    """The Figure 5/7/8 variant of the example.

    The paper's later figures change the select conditions so that several
    *different* selections land on the same base relations — Q2 filters
    ``Division.name = 'Re'`` and Q3 filters ``Division.city = 'SF'`` —
    which exercises the disjunctive selection push-down of Figure 4
    steps 5/6.
    """
    base = paper_workload()
    queries = list(base.queries)
    queries[1] = QuerySpec(
        "Q2",
        "SELECT Part.name FROM Product, Part, Division "
        "WHERE Division.name = 'Re' AND Product.Did = Division.Did "
        "AND Part.Pid = Product.Pid",
        0.5,
    )
    queries[2] = QuerySpec(
        "Q3",
        "SELECT Customer.name, Product.name, quantity "
        "FROM Product, Division, Order, Customer "
        "WHERE Division.city = 'SF' AND Product.Did = Division.Did "
        "AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid "
        "AND date > '1996-07-01'",
        0.8,
    )
    statistics = paper_statistics()
    statistics.set_predicate_selectivity(
        compare("Division.name", "=", literal("Re")).signature, 1.0 / 5_000
    )
    statistics.set_predicate_selectivity(
        compare("Division.city", "=", literal("SF")).signature, 0.02
    )
    return Workload(
        name="paper-example-fig7",
        catalog=base.catalog,
        statistics=statistics,
        queries=tuple(queries),
        update_frequencies=dict(base.update_frequencies),
    )
