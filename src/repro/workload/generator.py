"""Synthetic SPJ workload generator.

The paper's evaluation is a single worked example; this generator scales
the same design problem to arbitrary sizes so the heuristic can be
compared against the exhaustive optimum and stress-tested (the
``bench_scaling`` experiment, DESIGN.md §4).

Conventions (relied upon by :mod:`repro.workload.datagen`):

* relations are named ``R0 .. R{n-1}``;
* every relation has an ``id`` key column;
* ``R_i`` may carry foreign keys ``R{j}_fk`` to earlier relations ``R_j``
  (so the FK graph is acyclic and connected);
* every relation has a numeric ``val`` column (0..999) and a categorical
  ``cat`` column (``'c0' .. 'c{D-1}'``).

All randomness flows from one seed — identical seeds give identical
workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.datatypes import DataType
from repro.catalog.schema import Catalog
from repro.catalog.statistics import StatisticsCatalog
from repro.errors import WorkloadError
from repro.workload.spec import QuerySpec, Workload

#: Distinct values in every ``cat`` column.
CATEGORY_DISTINCT = 20
#: Exclusive upper bound of every ``val`` column.
VAL_RANGE = 1000


@dataclass(frozen=True)
class GeneratorConfig:
    """Tuning knobs for synthetic workload generation."""

    num_relations: int = 6
    num_queries: int = 5
    min_cardinality: int = 1_000
    max_cardinality: int = 100_000
    max_fanout: int = 2  # FKs per relation (to earlier relations)
    min_query_relations: int = 2
    max_query_relations: int = 4
    selection_probability: float = 0.5
    min_frequency: float = 0.1
    max_frequency: float = 20.0
    blocking_factor: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_relations < 1:
            raise WorkloadError("need at least one relation")
        if self.num_queries < 1:
            raise WorkloadError("need at least one query")
        if self.min_cardinality < 1 or self.max_cardinality < self.min_cardinality:
            raise WorkloadError("invalid cardinality range")
        if self.max_query_relations < self.min_query_relations:
            raise WorkloadError("invalid query-relation range")
        if not 0.0 <= self.selection_probability <= 1.0:
            raise WorkloadError("selection probability must be in [0, 1]")


@dataclass(frozen=True)
class GeneratedWorkload:
    """A synthetic workload plus the FK metadata data generation needs."""

    workload: Workload
    foreign_keys: Dict[str, Tuple[str, ...]]  # relation -> FK target names
    cardinalities: Dict[str, int]


def generate_workload(config: GeneratorConfig = GeneratorConfig()) -> GeneratedWorkload:
    """Generate a random-but-reproducible SPJ design problem."""
    rng = random.Random(config.seed)
    catalog = Catalog()
    statistics = StatisticsCatalog(default_blocking_factor=config.blocking_factor)
    foreign_keys: Dict[str, Tuple[str, ...]] = {}
    cardinalities: Dict[str, int] = {}

    for index in range(config.num_relations):
        name = f"R{index}"
        columns: List[Tuple[str, DataType]] = [("id", DataType.INTEGER)]
        targets: List[str] = []
        if index > 0:
            fanout = rng.randint(1, min(config.max_fanout, index))
            targets = rng.sample([f"R{j}" for j in range(index)], fanout)
            for target in targets:
                columns.append((f"{target}_fk", DataType.INTEGER))
        columns.append(("val", DataType.INTEGER))
        columns.append(("cat", DataType.STRING))
        catalog.register_relation(name, columns)
        foreign_keys[name] = tuple(targets)

        cardinality = rng.randint(config.min_cardinality, config.max_cardinality)
        cardinalities[name] = cardinality
        statistics.set_relation(name, cardinality)
        statistics.set_column(f"{name}.id", cardinality)
        statistics.set_column(f"{name}.val", VAL_RANGE, minimum=0, maximum=VAL_RANGE - 1)
        statistics.set_column(f"{name}.cat", CATEGORY_DISTINCT)
        for target in targets:
            statistics.set_column(f"{name}.{target}_fk", cardinalities[target])
            statistics.set_join_selectivity(
                f"{name}.{target}_fk", f"{target}.id", 1.0 / cardinalities[target]
            )

    queries = tuple(
        _generate_query(f"Q{q + 1}", rng, config, catalog, foreign_keys)
        for q in range(config.num_queries)
    )
    workload = Workload(
        name=f"synthetic-{config.seed}",
        catalog=catalog,
        statistics=statistics,
        queries=queries,
        update_frequencies={name: 1.0 for name in cardinalities},
    )
    return GeneratedWorkload(workload, foreign_keys, cardinalities)


def _generate_query(
    name: str,
    rng: random.Random,
    config: GeneratorConfig,
    catalog: Catalog,
    foreign_keys: Dict[str, Tuple[str, ...]],
) -> QuerySpec:
    """A random connected join query with random selections."""
    relation_names = list(foreign_keys)
    size = rng.randint(
        config.min_query_relations,
        min(config.max_query_relations, len(relation_names)),
    )

    # Grow a connected subgraph of the FK graph: start anywhere, then only
    # add relations adjacent (by FK, either direction) to the chosen set.
    chosen = [rng.choice(relation_names)]
    join_conditions: List[str] = []
    attempts = 0
    while len(chosen) < size and attempts < 10 * size:
        attempts += 1
        candidate = rng.choice(relation_names)
        if candidate in chosen:
            continue
        edge = _fk_edge(candidate, chosen, foreign_keys)
        if edge is None:
            continue
        chosen.append(candidate)
        join_conditions.append(edge)

    selections: List[str] = []
    for relation in chosen:
        if rng.random() >= config.selection_probability:
            continue
        if rng.random() < 0.5:
            threshold = rng.randint(1, VAL_RANGE - 1)
            op = rng.choice((">", "<", ">=", "<="))
            selections.append(f"{relation}.val {op} {threshold}")
        else:
            category = rng.randrange(CATEGORY_DISTINCT)
            selections.append(f"{relation}.cat = 'c{category}'")

    output: List[str] = []
    for relation in chosen:
        attrs = [a.name for a in catalog.schema(relation)]
        picked = rng.sample(attrs, rng.randint(1, min(2, len(attrs))))
        output.extend(f"{relation}.{a}" for a in picked)

    where = " AND ".join(join_conditions + selections)
    sql = f"SELECT {', '.join(output)} FROM {', '.join(chosen)}"
    if where:
        sql += f" WHERE {where}"
    # Log-uniform frequency: most queries are rare, a few are hot — the
    # skew the paper's fq·Ca ordering exists to exploit.
    low, high = config.min_frequency, config.max_frequency
    frequency = low * (high / low) ** rng.random()
    return QuerySpec(name, sql, round(frequency, 3))


def _fk_edge(
    candidate: str, chosen: Sequence[str], foreign_keys: Dict[str, Tuple[str, ...]]
) -> Optional[str]:
    """A join condition linking ``candidate`` to the chosen set, if any."""
    for target in foreign_keys[candidate]:
        if target in chosen:
            return f"{candidate}.{target}_fk = {target}.id"
    for relation in chosen:
        if candidate in foreign_keys[relation]:
            return f"{relation}.{candidate}_fk = {candidate}.id"
    return None
