"""Workloads with controllable sharing degree.

The paper's motivation is that warehouse views are "defined over
overlapping portions of the base data".  This generator makes that
overlap a dial: queries either instantiate one of a handful of shared
*join cores* (same relations, same join predicates — exactly the reuse
the MVPP merge exploits) or draw an independent random join, with
probability ``overlap`` vs ``1 − overlap``.  Individual selections and
projections still vary per query, so sharing survives only through the
disjunctive push-down of Figure 4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.workload.generator import (
    CATEGORY_DISTINCT,
    VAL_RANGE,
    GeneratedWorkload,
    GeneratorConfig,
    generate_workload,
)
from repro.workload.spec import QuerySpec, Workload


@dataclass(frozen=True)
class OverlapConfig:
    """Knobs for overlap-controlled workload generation."""

    overlap: float = 0.5  # probability a query reuses a shared join core
    num_cores: int = 2  # how many shared join cores exist
    num_queries: int = 8
    num_relations: int = 8
    core_size: int = 3  # relations per shared core
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.overlap <= 1.0:
            raise WorkloadError(f"overlap must be in [0, 1]: {self.overlap}")
        if self.num_cores < 1 or self.core_size < 2:
            raise WorkloadError("need at least one core of >= 2 relations")
        if self.num_queries < 1:
            raise WorkloadError("need at least one query")


def overlap_workload(config: OverlapConfig = OverlapConfig()) -> Workload:
    """Generate a workload whose queries share join cores with the given
    probability."""
    base = generate_workload(
        GeneratorConfig(
            num_relations=config.num_relations,
            num_queries=1,  # we write our own queries below
            seed=config.seed,
        )
    )
    rng = random.Random(config.seed + 1)
    cores = [
        _random_core(rng, base, config.core_size) for _ in range(config.num_cores)
    ]

    queries = []
    for index in range(config.num_queries):
        if rng.random() < config.overlap:
            relations, joins = cores[rng.randrange(len(cores))]
        else:
            relations, joins = _random_core(rng, base, config.core_size)
        queries.append(
            _query_over_core(f"Q{index + 1}", rng, base, relations, joins)
        )

    return Workload(
        name=f"overlap-{config.overlap:g}-{config.seed}",
        catalog=base.workload.catalog,
        statistics=base.workload.statistics,
        queries=tuple(queries),
        update_frequencies=dict(base.workload.update_frequencies),
    )


def _random_core(
    rng: random.Random, base: GeneratedWorkload, size: int
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """A connected set of relations plus the FK join conditions linking it."""
    names = list(base.foreign_keys)
    for _ in range(200):
        chosen = [rng.choice(names)]
        joins: List[str] = []
        while len(chosen) < size:
            grown = False
            candidates = [n for n in names if n not in chosen]
            rng.shuffle(candidates)
            for candidate in candidates:
                edge = _edge(candidate, chosen, base.foreign_keys)
                if edge is not None:
                    chosen.append(candidate)
                    joins.append(edge)
                    grown = True
                    break
            if not grown:
                break
        if len(chosen) == size:
            return tuple(sorted(chosen)), tuple(sorted(joins))
    raise WorkloadError(
        f"could not find a connected core of {size} relations; "
        f"increase num_relations or max_fanout"
    )


def _edge(candidate: str, chosen: Sequence[str], foreign_keys) -> str:
    for target in foreign_keys[candidate]:
        if target in chosen:
            return f"{candidate}.{target}_fk = {target}.id"
    for relation in chosen:
        if candidate in foreign_keys[relation]:
            return f"{relation}.{candidate}_fk = {candidate}.id"
    return None


def _query_over_core(
    name: str,
    rng: random.Random,
    base: GeneratedWorkload,
    relations: Tuple[str, ...],
    joins: Tuple[str, ...],
) -> QuerySpec:
    selections = []
    for relation in relations:
        if rng.random() < 0.5:
            if rng.random() < 0.5:
                threshold = rng.randint(1, VAL_RANGE - 1)
                selections.append(
                    f"{relation}.val {rng.choice(('>', '<'))} {threshold}"
                )
            else:
                selections.append(
                    f"{relation}.cat = 'c{rng.randrange(CATEGORY_DISTINCT)}'"
                )
    output = []
    for relation in relations:
        output.append(f"{relation}.val")
    where = " AND ".join(list(joins) + selections)
    sql = f"SELECT {', '.join(output)} FROM {', '.join(relations)} WHERE {where}"
    frequency = round(0.5 * (40.0) ** rng.random(), 3)  # log-uniform 0.5..20
    return QuerySpec(name, sql, frequency)
