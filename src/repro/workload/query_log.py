"""Estimating access frequencies from a query log.

The paper takes the frequencies ``fq`` as given.  In practice they come
from observation: this module turns a log of executed queries (and base
relation updates) into per-period frequencies ready to feed the design
pipeline, with optional exponential decay so recent behaviour dominates
and an optional sliding window so old behaviour drops out entirely —
the estimation model behind the online
:class:`~repro.adaptive.monitor.WorkloadMonitor`.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import WorkloadError, WorkloadWarning
from repro.workload.spec import QuerySpec, Workload


@dataclass(frozen=True)
class LogEntry:
    """One observed event: a query execution or a base-relation update."""

    kind: str  # "query" | "update"
    name: str  # query name or relation name
    timestamp: float  # seconds (or any monotonically comparable unit)

    def __post_init__(self) -> None:
        if self.kind not in ("query", "update"):
            raise WorkloadError(f"unknown log entry kind {self.kind!r}")


@dataclass(frozen=True)
class FrequencyEstimate:
    """Per-period access and update frequencies derived from a log."""

    query_frequencies: Dict[str, float]
    update_frequencies: Dict[str, float]
    periods: float


def estimate_frequencies(
    entries: Iterable[LogEntry],
    period: float,
    half_life_periods: Optional[float] = None,
    window_periods: Optional[float] = None,
    now: Optional[float] = None,
) -> FrequencyEstimate:
    """Aggregate a log into per-period frequencies.

    ``period`` is the paper's maintenance window in the log's time unit.
    With ``half_life_periods`` set, events are weighted by exponential
    decay (an event ``h`` half-lives ago counts 2^-h) and frequencies are
    normalized by the total decayed weight instead of the raw span — a
    simple sliding-importance model for drifting workloads.

    ``window_periods`` restricts the estimate to a sliding window: only
    entries at most that many periods old (relative to ``now``, which
    defaults to the newest entry's timestamp) are counted.  ``now`` also
    anchors the decay, so an estimate taken mid-silence keeps aging the
    last burst of events instead of treating it as current.
    """
    if period <= 0:
        raise WorkloadError(f"period must be positive: {period}")
    if window_periods is not None and window_periods <= 0:
        raise WorkloadError(f"window_periods must be positive: {window_periods}")
    entries = sorted(entries, key=lambda e: e.timestamp)
    if not entries:
        raise WorkloadError("cannot estimate frequencies from an empty log")
    end = entries[-1].timestamp if now is None else now
    if end < entries[-1].timestamp:
        raise WorkloadError(
            f"now={end} predates the newest log entry "
            f"({entries[-1].timestamp}); the log is not causal"
        )
    if window_periods is not None:
        horizon = end - window_periods * period
        entries = [e for e in entries if e.timestamp >= horizon]
        if not entries:
            raise WorkloadError(
                "no log entries within the estimation window"
            )
    start = entries[0].timestamp
    span_periods = max((end - start) / period, 1.0)

    def weight(entry: LogEntry) -> float:
        if half_life_periods is None:
            return 1.0
        age_periods = (end - entry.timestamp) / period
        return math.pow(0.5, age_periods / half_life_periods)

    if half_life_periods is None:
        denominator = span_periods
    else:
        # The decayed length of the observation window.
        rate = math.log(2) / half_life_periods
        denominator = max((1 - math.exp(-rate * span_periods)) / rate, 1e-9)

    queries: Dict[str, float] = {}
    updates: Dict[str, float] = {}
    for entry in entries:
        bucket = queries if entry.kind == "query" else updates
        bucket[entry.name] = bucket.get(entry.name, 0.0) + weight(entry)

    return FrequencyEstimate(
        query_frequencies={k: v / denominator for k, v in queries.items()},
        update_frequencies={k: v / denominator for k, v in updates.items()},
        periods=span_periods,
    )


def apply_to_workload(
    workload: Workload,
    estimate: FrequencyEstimate,
    drop_unobserved_queries: bool = False,
) -> Workload:
    """A copy of ``workload`` with frequencies replaced by the estimate.

    Queries absent from the log keep frequency 0 (they cost nothing, so
    the designer ignores them) unless ``drop_unobserved_queries`` removes
    them entirely; relations absent from the log keep their registered
    update frequencies.

    Estimate entries that name nothing in the workload are ignored, but
    a :class:`~repro.errors.WorkloadWarning` is emitted naming them —
    an unknown relation or query in a frequency estimate is usually a
    typo in the log's names, and silently dropping it would quietly
    mis-steer the design.
    """
    known_queries = {spec.name for spec in workload.queries}
    unknown_queries = sorted(
        set(estimate.query_frequencies) - known_queries
    )
    unknown_relations = sorted(
        name
        for name in estimate.update_frequencies
        if name not in workload.catalog
    )
    if unknown_queries or unknown_relations:
        parts = []
        if unknown_relations:
            parts.append(
                "relation(s) not in the catalog: "
                + ", ".join(repr(n) for n in unknown_relations)
            )
        if unknown_queries:
            parts.append(
                "query name(s) not in the workload: "
                + ", ".join(repr(n) for n in unknown_queries)
            )
        warnings.warn(
            WorkloadWarning(
                f"frequency estimate for workload {workload.name!r} names "
                f"{'; '.join(parts)} — these entries are ignored (typo in "
                f"the log's names?)"
            ),
            stacklevel=2,
        )
    queries: List[QuerySpec] = []
    for spec in workload.queries:
        frequency = estimate.query_frequencies.get(spec.name)
        if frequency is None:
            if drop_unobserved_queries:
                continue
            frequency = 0.0
        queries.append(QuerySpec(spec.name, spec.sql, frequency))
    if not queries:
        raise WorkloadError("no observed queries remain in the workload")
    update_frequencies = dict(workload.update_frequencies)
    for relation, frequency in estimate.update_frequencies.items():
        if relation in workload.catalog:
            update_frequencies[relation] = frequency
    return Workload(
        name=f"{workload.name}-observed",
        catalog=workload.catalog,
        statistics=workload.statistics,
        queries=tuple(queries),
        update_frequencies=update_frequencies,
    )
