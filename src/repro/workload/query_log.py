"""Estimating access frequencies from a query log.

The paper takes the frequencies ``fq`` as given.  In practice they come
from observation: this module turns a log of executed queries (and base
relation updates) into per-period frequencies ready to feed the design
pipeline, with optional exponential decay so recent behaviour dominates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.workload.spec import QuerySpec, Workload


@dataclass(frozen=True)
class LogEntry:
    """One observed event: a query execution or a base-relation update."""

    kind: str  # "query" | "update"
    name: str  # query name or relation name
    timestamp: float  # seconds (or any monotonically comparable unit)

    def __post_init__(self) -> None:
        if self.kind not in ("query", "update"):
            raise WorkloadError(f"unknown log entry kind {self.kind!r}")


@dataclass(frozen=True)
class FrequencyEstimate:
    """Per-period access and update frequencies derived from a log."""

    query_frequencies: Dict[str, float]
    update_frequencies: Dict[str, float]
    periods: float


def estimate_frequencies(
    entries: Iterable[LogEntry],
    period: float,
    half_life_periods: Optional[float] = None,
) -> FrequencyEstimate:
    """Aggregate a log into per-period frequencies.

    ``period`` is the paper's maintenance window in the log's time unit.
    With ``half_life_periods`` set, events are weighted by exponential
    decay (an event ``h`` half-lives ago counts 2^-h) and frequencies are
    normalized by the total decayed weight instead of the raw span — a
    simple sliding-importance model for drifting workloads.
    """
    if period <= 0:
        raise WorkloadError(f"period must be positive: {period}")
    entries = sorted(entries, key=lambda e: e.timestamp)
    if not entries:
        raise WorkloadError("cannot estimate frequencies from an empty log")
    start = entries[0].timestamp
    end = entries[-1].timestamp
    span_periods = max((end - start) / period, 1.0)

    def weight(entry: LogEntry) -> float:
        if half_life_periods is None:
            return 1.0
        age_periods = (end - entry.timestamp) / period
        return math.pow(0.5, age_periods / half_life_periods)

    if half_life_periods is None:
        denominator = span_periods
    else:
        # The decayed length of the observation window.
        rate = math.log(2) / half_life_periods
        denominator = max((1 - math.exp(-rate * span_periods)) / rate, 1e-9)

    queries: Dict[str, float] = {}
    updates: Dict[str, float] = {}
    for entry in entries:
        bucket = queries if entry.kind == "query" else updates
        bucket[entry.name] = bucket.get(entry.name, 0.0) + weight(entry)

    return FrequencyEstimate(
        query_frequencies={k: v / denominator for k, v in queries.items()},
        update_frequencies={k: v / denominator for k, v in updates.items()},
        periods=span_periods,
    )


def apply_to_workload(
    workload: Workload,
    estimate: FrequencyEstimate,
    drop_unobserved_queries: bool = False,
) -> Workload:
    """A copy of ``workload`` with frequencies replaced by the estimate.

    Queries absent from the log keep frequency 0 (they cost nothing, so
    the designer ignores them) unless ``drop_unobserved_queries`` removes
    them entirely; relations absent from the log keep their registered
    update frequencies.
    """
    queries: List[QuerySpec] = []
    for spec in workload.queries:
        frequency = estimate.query_frequencies.get(spec.name)
        if frequency is None:
            if drop_unobserved_queries:
                continue
            frequency = 0.0
        queries.append(QuerySpec(spec.name, spec.sql, frequency))
    if not queries:
        raise WorkloadError("no observed queries remain in the workload")
    update_frequencies = dict(workload.update_frequencies)
    for relation, frequency in estimate.update_frequencies.items():
        if relation in workload.catalog:
            update_frequencies[relation] = frequency
    return Workload(
        name=f"{workload.name}-observed",
        catalog=workload.catalog,
        statistics=workload.statistics,
        queries=tuple(queries),
        update_frequencies=update_frequencies,
    )
