"""Workload specification types shared by the warehouse and benchmarks.

A workload bundles everything the paper's cost framework consumes:
the schema catalog, the statistics catalog, the warehouse queries with
their access frequencies ``fq``, and the base-relation update frequencies
``fu`` (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.catalog.schema import Catalog
from repro.catalog.statistics import StatisticsCatalog
from repro.errors import WorkloadError


@dataclass(frozen=True)
class QuerySpec:
    """One warehouse query: a name, its SQL text, and its access frequency."""

    name: str
    sql: str
    frequency: float

    def __post_init__(self) -> None:
        if self.frequency < 0:
            raise WorkloadError(f"query frequency must be >= 0: {self.frequency}")


@dataclass(frozen=True)
class Workload:
    """A complete warehouse design problem instance."""

    name: str
    catalog: Catalog
    statistics: StatisticsCatalog
    queries: Tuple[QuerySpec, ...]
    update_frequencies: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [q.name for q in self.queries]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate query names in workload {self.name!r}")
        for relation in self.update_frequencies:
            if relation not in self.catalog:
                raise WorkloadError(
                    f"update frequency for unknown relation {relation!r}"
                )

    def update_frequency(self, relation: str) -> float:
        """``fu`` for a base relation; defaults to 1.0 (the paper's
        'updated once per period' assumption)."""
        return self.update_frequencies.get(relation, 1.0)

    def query(self, name: str) -> QuerySpec:
        for spec in self.queries:
            if spec.name == name:
                return spec
        raise WorkloadError(f"unknown query {name!r} in workload {self.name!r}")
