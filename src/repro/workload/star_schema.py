"""Star-schema workload generator.

The canonical data-warehouse shape the paper's introduction motivates: a
central fact table joined to dimension tables, with hot dashboard-style
queries sharing fact/dimension join subexpressions — exactly the sharing
structure MVPP materialization exploits.  Optionally emits GROUP-BY
aggregate queries to exercise the aggregation extension.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.catalog.datatypes import DataType
from repro.catalog.schema import Catalog
from repro.catalog.statistics import StatisticsCatalog
from repro.errors import WorkloadError
from repro.workload.spec import QuerySpec, Workload

#: Distinct values per dimension attribute level.
ATTR_DISTINCT = 25


@dataclass(frozen=True)
class StarConfig:
    """Shape of the generated star schema."""

    num_dimensions: int = 4
    fact_rows: int = 200_000
    dimension_rows: int = 5_000
    num_queries: int = 6
    include_aggregates: bool = False
    selection_probability: float = 0.6
    min_frequency: float = 0.5
    max_frequency: float = 25.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_dimensions < 1:
            raise WorkloadError("need at least one dimension")
        if self.num_queries < 1:
            raise WorkloadError("need at least one query")


def star_workload(config: StarConfig = StarConfig()) -> Workload:
    """Generate a star-schema design problem (Fact + Dim1..DimN)."""
    rng = random.Random(config.seed)
    catalog = Catalog()
    statistics = StatisticsCatalog()

    dimension_names = [f"Dim{i + 1}" for i in range(config.num_dimensions)]
    fact_columns: List[Tuple[str, DataType]] = [("id", DataType.INTEGER)]
    for dim in dimension_names:
        fact_columns.append((f"{dim}_fk", DataType.INTEGER))
    fact_columns.append(("measure", DataType.INTEGER))
    fact_columns.append(("qty", DataType.INTEGER))
    catalog.register_relation("Fact", fact_columns)
    statistics.set_relation("Fact", config.fact_rows)
    statistics.set_column("Fact.id", config.fact_rows)
    statistics.set_column("Fact.measure", 10_000, minimum=0, maximum=9_999)
    statistics.set_column("Fact.qty", 100, minimum=1, maximum=100)

    for dim in dimension_names:
        catalog.register_relation(
            dim,
            [
                ("id", DataType.INTEGER),
                ("attr", DataType.STRING),
                ("level", DataType.INTEGER),
            ],
        )
        statistics.set_relation(dim, config.dimension_rows)
        statistics.set_column(f"{dim}.id", config.dimension_rows)
        statistics.set_column(f"{dim}.attr", ATTR_DISTINCT)
        statistics.set_column(f"{dim}.level", 10, minimum=0, maximum=9)
        statistics.set_column(f"Fact.{dim}_fk", config.dimension_rows)
        statistics.set_join_selectivity(
            f"Fact.{dim}_fk", f"{dim}.id", 1.0 / config.dimension_rows
        )

    queries = []
    for index in range(config.num_queries):
        queries.append(
            _star_query(f"Q{index + 1}", rng, config, dimension_names)
        )
    return Workload(
        name=f"star-{config.seed}",
        catalog=catalog,
        statistics=statistics,
        queries=tuple(queries),
        update_frequencies={"Fact": 2.0, **{d: 0.5 for d in dimension_names}},
    )


def _star_query(
    name: str,
    rng: random.Random,
    config: StarConfig,
    dimension_names: List[str],
) -> QuerySpec:
    count = rng.randint(1, min(3, len(dimension_names)))
    dims = rng.sample(dimension_names, count)
    joins = [f"Fact.{d}_fk = {d}.id" for d in dims]
    selections = []
    for dim in dims:
        if rng.random() < config.selection_probability:
            if rng.random() < 0.5:
                selections.append(f"{dim}.attr = 'a{rng.randrange(ATTR_DISTINCT)}'")
            else:
                selections.append(f"{dim}.level >= {rng.randint(1, 8)}")
    if rng.random() < 0.4:
        selections.append(f"Fact.qty > {rng.randint(10, 90)}")

    low, high = config.min_frequency, config.max_frequency
    frequency = round(low * (high / low) ** rng.random(), 3)

    if config.include_aggregates and rng.random() < 0.5:
        group_attr = f"{dims[0]}.attr"
        sql = (
            f"SELECT {group_attr}, SUM(Fact.measure) AS total, COUNT(*) AS n "
            f"FROM {', '.join(['Fact'] + dims)} "
            f"WHERE {' AND '.join(joins + selections)} "
            f"GROUP BY {group_attr}"
        )
        return QuerySpec(name, sql, frequency)

    output = [f"{d}.attr" for d in dims] + ["Fact.measure"]
    where = " AND ".join(joins + selections)
    sql = f"SELECT {', '.join(output)} FROM {', '.join(['Fact'] + dims)} WHERE {where}"
    return QuerySpec(name, sql, frequency)
