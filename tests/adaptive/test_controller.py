"""Unit/integration tests for the adaptive design controller."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.adaptive import (
    ACCEPTED,
    AdaptiveController,
    simulation_policy,
)
from repro.adaptive.controller import (
    INSUFFICIENT,
    NO_DRIFT,
    SUPPRESSED_BENEFIT,
    SUPPRESSED_COOLDOWN,
)
from repro.errors import AdaptiveError
from repro.mvpp import DesignConfig
from repro.warehouse import DataWarehouse
from repro.workload import paper_workload

#: Per-window event counts.  BASE matches the paper's design-time
#: frequencies (rounded to whole events); INVERTED flips the hot set.
BASE = {"Q1": 10, "Q2": 1, "Q3": 1, "Q4": 5}
INVERTED = {"Q1": 1, "Q2": 1, "Q3": 5, "Q4": 10}
UPDATES = ("Customer", "Division", "Order", "Part", "Product")
EVENTS_PER_WINDOW = sum(BASE.values()) + len(UPDATES)


def make_controller(policy=None, config=None):
    warehouse = DataWarehouse.from_workload(paper_workload())
    policy = policy or simulation_policy(float(EVENTS_PER_WINDOW))
    warehouse.design(
        (config or DesignConfig(seed=0)).replace(adaptive=policy)
    )
    return warehouse, warehouse.controller()


def feed_window(controller, counts):
    for name in sorted(counts):
        for _ in range(counts[name]):
            controller.note_query(name, 1.0)
    for relation in UPDATES:
        controller.note_update(relation, 1.0)


class TestLifecycle:
    def test_requires_designed_warehouse(self):
        warehouse = DataWarehouse.from_workload(paper_workload())
        with pytest.raises(AdaptiveError, match="design"):
            AdaptiveController(warehouse)

    def test_insufficient_before_observations(self):
        _, controller = make_controller()
        decision = controller.evaluate()
        assert decision.action == INSUFFICIENT
        assert controller.history == [decision]

    def test_stationary_windows_never_drift(self):
        _, controller = make_controller()
        for _ in range(4):
            feed_window(controller, BASE)
            decision = controller.evaluate()
            assert decision.action in (INSUFFICIENT, NO_DRIFT)
            assert not decision.accepted

    def test_notes_advance_the_shared_clock(self):
        _, controller = make_controller()
        start = controller.clock.now
        controller.note_query("Q1", 3.0)
        controller.note_update("Order", 2.0)
        assert controller.clock.now == start + 5.0


class TestAdaptation:
    def test_inversion_triggers_accept_and_rebaselines(self):
        warehouse, controller = make_controller()
        before_views = warehouse.views
        actions = []
        for window in range(8):
            feed_window(controller, BASE if window < 4 else INVERTED)
            actions.append(controller.evaluate().action)
        # Stationary opening: nothing fires before the flip.
        assert all(a in (INSUFFICIENT, NO_DRIFT) for a in actions[:4])
        assert ACCEPTED in actions[4:]
        # The accepted redesign wrote the estimate back: the registered
        # frequencies now rank Q4 above Q1, and the view set moved.
        assert (
            warehouse.workload.query("Q4").frequency
            > warehouse.workload.query("Q1").frequency
        )
        assert warehouse.views != before_views
        assert controller.installed_result is warehouse.design_result

    def test_cooldown_suppresses_back_to_back_accepts(self):
        _, controller = make_controller()
        for window in range(6):
            feed_window(controller, BASE if window < 4 else INVERTED)
            controller.evaluate()
        actions = [d.action for d in controller.history]
        first_accept = actions.index(ACCEPTED)
        assert actions[first_accept + 1] == SUPPRESSED_COOLDOWN
        suppressed = controller.history[first_accept + 1]
        assert suppressed.drift is not None
        assert "cooldown" in suppressed.detail

    def test_huge_margin_suppresses_benefit(self):
        policy = simulation_policy(float(EVENTS_PER_WINDOW)).replace(
            min_benefit_margin=1e15
        )
        warehouse, controller = make_controller(policy=policy)
        before_views = warehouse.views
        for window in range(8):
            feed_window(controller, BASE if window < 4 else INVERTED)
            controller.evaluate()
        actions = [d.action for d in controller.history]
        assert SUPPRESSED_BENEFIT in actions
        assert ACCEPTED not in actions
        assert warehouse.views == before_views  # old design keeps serving
        blocked = next(
            d for d in controller.history if d.action == SUPPRESSED_BENEFIT
        )
        assert blocked.net_benefit < 1e15
        assert blocked.old_cost is not None and blocked.new_cost is not None

    def test_decision_to_dict_round_trips_json(self):
        import json

        _, controller = make_controller()
        for window in range(6):
            feed_window(controller, BASE if window < 2 else INVERTED)
            controller.evaluate()
        documents = [d.to_dict() for d in controller.history]
        parsed = json.loads(json.dumps(documents))
        assert [d["action"] for d in parsed] == [
            d.action for d in controller.history
        ]
        accepted = [d for d in parsed if d["action"] == ACCEPTED]
        assert accepted and accepted[0]["migration"] is not None

    def test_counters_and_gauges_exported(self):
        obs.enable(reset=True)
        try:
            _, controller = make_controller()
            for window in range(8):
                feed_window(controller, BASE if window < 4 else INVERTED)
                controller.evaluate()
            counters = obs.snapshot()["metrics"]["counters"]
            gauges = obs.snapshot()["metrics"]["gauges"]
        finally:
            obs.disable()
        assert counters.get("adaptive.drift_detected", 0) >= 1
        assert counters.get("adaptive.redesigns_accepted", 0) >= 1
        assert (
            counters.get("adaptive.redesigns_suppressed{reason=cooldown}", 0)
            >= 1
        )
        assert gauges.get("adaptive.estimated_total_cost", 0) > 0
        assert gauges.get("adaptive.installed_views", 0) >= 1


class TestStationaryProperty:
    """ISSUE acceptance: a stationary workload (any seed, bounded jitter)
    must never trigger an accepted redesign."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_never_accepts(self, seed):
        rng = random.Random(seed)
        _, controller = make_controller()
        for _ in range(5):
            counts = {
                name: count + (rng.randint(-1, 1) if count >= 4 else 0)
                for name, count in BASE.items()
            }
            feed_window(controller, counts)
            decision = controller.evaluate()
            assert not decision.accepted, decision.describe()


class TestWarehouseHooks:
    def test_query_and_update_paths_feed_the_monitor(self):
        from repro.workload import paper_rows

        workload = paper_workload()
        warehouse = DataWarehouse.from_workload(workload)
        warehouse.design(DesignConfig(seed=0))
        controller = warehouse.controller()
        for relation, rows in paper_rows(scale=0.01, seed=11).items():
            warehouse.load(relation, rows)
        warehouse.materialize()
        assert controller.monitor.total_recorded == 0
        warehouse.execute("Q1")
        warehouse.serve("Q4")
        delta = [next(iter(paper_rows(scale=0.01, seed=11)["Order"]))]
        warehouse.apply_update("Order", delta, policy="incremental")
        assert controller.monitor.total_recorded == 3
        # Real I/O advances the logical clock, one tick per block.
        assert controller.clock.now > 0

    def test_adapt_returns_a_decision(self):
        warehouse, _ = make_controller()
        decision = warehouse.adapt()
        assert decision.action == INSUFFICIENT
