"""Unit tests for the deterministic drift detector."""

import pytest

from repro.adaptive import AdaptivePolicy, DriftDetector
from repro.workload.query_log import FrequencyEstimate


def estimate(fq, fu=None):
    return FrequencyEstimate(
        query_frequencies=fq, update_frequencies=fu or {}, periods=1.0
    )


@pytest.fixture()
def detector():
    return DriftDetector(
        AdaptivePolicy(drift_threshold=0.5, noise_floor=0.05)
    )


class TestCheck:
    def test_identical_vectors_no_drift(self, detector):
        baseline = {"Q1": 10.0, "Q2": 0.5}
        assert detector.check(baseline, {}, estimate(dict(baseline)), 0.0) is None

    def test_none_estimate_never_drifts(self, detector):
        assert detector.check({"Q1": 1.0}, {}, None, 0.0) is None

    def test_doubling_drifts(self, detector):
        event = detector.check({"Q1": 1.0}, {}, estimate({"Q1": 2.0}), 7.0)
        assert event is not None
        assert event.tick == 7.0
        assert event.magnitude == pytest.approx(1.0)
        (change,) = event.changes
        assert (change.kind, change.name) == ("query", "Q1")
        assert "Q1" in change.describe()

    def test_small_change_ignored(self, detector):
        assert (
            detector.check({"Q1": 10.0}, {}, estimate({"Q1": 12.0}), 0.0)
            is None
        )

    def test_noise_floor_skips_negligible(self, detector):
        # 0 -> 0.04 is a huge relative change but both sides are noise.
        assert (
            detector.check({"Q9": 0.0}, {}, estimate({"Q9": 0.04}), 0.0)
            is None
        )

    def test_new_query_appearing_drifts(self, detector):
        event = detector.check({}, {}, estimate({"Q9": 1.0}), 0.0)
        assert event is not None
        (change,) = event.changes
        assert change.baseline == 0.0 and change.observed == 1.0

    def test_update_frequencies_checked(self, detector):
        event = detector.check(
            {}, {"Order": 1.0}, estimate({}, {"Order": 3.0}), 0.0
        )
        assert event is not None
        assert event.changes[0].kind == "update"

    def test_magnitude_is_max_over_changes(self, detector):
        event = detector.check(
            {"Q1": 1.0, "Q2": 1.0},
            {},
            estimate({"Q1": 2.0, "Q2": 4.0}),
            0.0,
        )
        assert event.magnitude == pytest.approx(3.0)
        assert [c.name for c in event.changes] == ["Q1", "Q2"]  # sorted
        assert "magnitude" in event.describe()


class TestMinAbsoluteChange:
    """The dual threshold: relative AND absolute must both clear."""

    def test_shot_noise_on_rare_events_suppressed(self):
        detector = DriftDetector(
            AdaptivePolicy(drift_threshold=0.5, min_absolute_change=1.0)
        )
        # +50% relative, but only half an event per period: a sliding
        # window gaining one rare event at its edge looks exactly like
        # this, and must not count as drift.
        assert (
            detector.check({"Q2": 1.0}, {}, estimate({"Q2": 1.5}), 0.0)
            is None
        )

    def test_real_phase_flip_still_detected(self):
        detector = DriftDetector(
            AdaptivePolicy(drift_threshold=0.5, min_absolute_change=1.0)
        )
        event = detector.check({"Q2": 1.0}, {}, estimate({"Q2": 8.0}), 0.0)
        assert event is not None

    def test_zero_guard_keeps_relative_behaviour(self):
        detector = DriftDetector(
            AdaptivePolicy(drift_threshold=0.5, min_absolute_change=0.0)
        )
        assert (
            detector.check({"Q2": 1.0}, {}, estimate({"Q2": 1.5}), 0.0)
            is not None
        )
