"""Unit tests for the online workload monitor."""

import pytest

from repro.adaptive import AdaptivePolicy, WorkloadMonitor
from repro.errors import AdaptiveError


@pytest.fixture()
def policy():
    # Window = 2 periods of 10 ticks; three events unlock the estimate.
    return AdaptivePolicy(
        period_ticks=10.0, window_periods=2.0, min_observations=3
    )


class TestRecording:
    def test_causality_enforced(self, policy):
        monitor = WorkloadMonitor(policy)
        monitor.record_query("Q1", 5.0)
        with pytest.raises(AdaptiveError, match="causal"):
            monitor.record_query("Q2", 3.0)

    def test_equal_ticks_allowed(self, policy):
        monitor = WorkloadMonitor(policy)
        monitor.record_query("Q1", 5.0)
        monitor.record_update("Order", 5.0)
        assert monitor.observations == 2

    def test_pruning_bounds_memory(self, policy):
        monitor = WorkloadMonitor(policy)
        monitor.record_query("Q1", 0.0)
        monitor.record_query("Q1", 100.0)  # 0.0 ages out (window is 20)
        assert monitor.observations == 1
        assert monitor.total_recorded == 2  # lifetime count survives pruning

    def test_clear(self, policy):
        monitor = WorkloadMonitor(policy)
        monitor.record_query("Q1", 1.0)
        monitor.clear()
        assert monitor.observations == 0


class TestEstimate:
    def test_none_below_min_observations(self, policy):
        monitor = WorkloadMonitor(policy)
        monitor.record_query("Q1", 1.0)
        monitor.record_query("Q1", 2.0)
        assert not monitor.sufficient()
        assert monitor.estimate() is None

    def test_rates_recovered(self, policy):
        monitor = WorkloadMonitor(policy)
        # Five Q1 runs and one Order update per 10-tick period, two periods.
        for period in range(2):
            base = period * 10.0
            for i in range(5):
                monitor.record_query("Q1", base + i)
            monitor.record_update("Order", base + 9.0)
        estimate = monitor.estimate(now=20.0)
        assert estimate is not None
        assert estimate.query_frequencies["Q1"] == pytest.approx(5.0, rel=0.25)
        assert estimate.update_frequencies["Order"] == pytest.approx(
            1.0, rel=0.25
        )

    def test_sufficient_prunes_with_now(self, policy):
        monitor = WorkloadMonitor(policy)
        for tick in range(3):
            monitor.record_query("Q1", float(tick))
        assert monitor.sufficient()
        # Far in the future everything aged out of the window.
        assert not monitor.sufficient(now=1000.0)

    def test_estimate_empty_monitor(self, policy):
        assert WorkloadMonitor(policy).estimate() is None
