"""Unit tests for the adaptive-controller policy value."""

import pytest

from repro.adaptive import DEFAULT_ADAPTIVE_POLICY, AdaptivePolicy
from repro.errors import AdaptiveError


class TestValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("period_ticks", 0.0),
            ("period_ticks", -1.0),
            ("window_periods", 0.0),
            ("half_life_periods", 0.0),
            ("min_observations", 0),
            ("drift_threshold", 0.0),
            ("min_absolute_change", -0.5),
            ("noise_floor", -0.1),
            ("cooldown_ticks", -1.0),
            ("min_benefit_margin", -1.0),
            ("amortization_horizon_periods", 0.0),
            ("drop_cost_per_block", -0.1),
        ],
    )
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(AdaptiveError, match=field):
            AdaptivePolicy(**{field: value})

    def test_half_life_none_allowed(self):
        assert AdaptivePolicy(half_life_periods=None).half_life_periods is None

    def test_replace_revalidates(self):
        with pytest.raises(AdaptiveError):
            DEFAULT_ADAPTIVE_POLICY.replace(period_ticks=0.0)

    def test_replace_changes_field(self):
        policy = DEFAULT_ADAPTIVE_POLICY.replace(drift_threshold=0.9)
        assert policy.drift_threshold == 0.9
        assert policy.period_ticks == DEFAULT_ADAPTIVE_POLICY.period_ticks


class TestDerived:
    def test_window_ticks(self):
        policy = AdaptivePolicy(period_ticks=10.0, window_periods=3.0)
        assert policy.window_ticks == 30.0

    def test_default_policy_passes_its_own_lint(self):
        """The shipped defaults must not trip A001/A002."""
        from repro.lint import lint_adaptive_policy

        report = lint_adaptive_policy(DEFAULT_ADAPTIVE_POLICY)
        assert report.diagnostics == []

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_ADAPTIVE_POLICY.drift_threshold = 1.0
