"""Tests for the drifting-workload replay (static vs adaptive vs eager)."""

import pytest

from repro.adaptive import simulate_drift, simulation_policy
from repro.errors import AdaptiveError


@pytest.fixture(scope="module")
def seed7():
    return simulate_drift(seed=7)


class TestDeterminism:
    def test_seed7_trajectory_is_bit_identical(self, seed7):
        """ISSUE acceptance: the seed-7 replay reproduces exactly."""
        again = simulate_drift(seed=7)
        assert again.to_dict() == seed7.to_dict()

    def test_different_seeds_share_structure(self):
        result = simulate_drift(seed=1, windows_per_phase=2)
        assert result.windows == 6
        assert set(result.variants) == {"static", "adaptive", "eager"}
        assert len(result.decisions) == 6
        assert len(result.phases) == 6


class TestOutcomes:
    def test_adaptive_beats_both_baselines(self, seed7):
        """ISSUE acceptance: drift-triggered + cost-gated beats never-
        redesign and redesign-every-window."""
        assert seed7.adaptive_beats_static
        assert seed7.adaptive_beats_eager
        assert seed7.accepted >= 1
        assert seed7.drift_events >= seed7.accepted

    def test_adaptive_migrates_less_than_eager(self, seed7):
        adaptive = seed7.variants["adaptive"]
        eager = seed7.variants["eager"]
        assert adaptive.migrations < eager.migrations
        assert adaptive.migration_cost < eager.migration_cost

    def test_static_never_migrates(self, seed7):
        static = seed7.variants["static"]
        assert static.migrations == 0
        assert static.migration_cost == 0.0
        assert static.final_views  # designed once, still serving

    def test_stationary_control_accepts_nothing(self):
        result = simulate_drift(seed=0, stationary=True)
        assert result.stationary
        assert result.accepted == 0
        # With no accepted migration the adaptive variant pays exactly
        # the static serving cost.
        assert (
            result.variants["adaptive"].total_cost
            == result.variants["static"].total_cost
        )

    def test_window_costs_cover_every_window(self, seed7):
        for outcome in seed7.variants.values():
            assert len(outcome.window_costs) == seed7.windows


class TestInterface:
    def test_bad_windows_rejected(self):
        with pytest.raises(AdaptiveError):
            simulate_drift(windows_per_phase=0)

    def test_describe_lists_variants_and_decisions(self, seed7):
        text = seed7.describe()
        for name in ("static", "adaptive", "eager"):
            assert name in text
        assert "decisions" in text

    def test_to_dict_is_json_safe(self, seed7):
        import json

        document = json.loads(json.dumps(seed7.to_dict()))
        assert document["seed"] == 7
        assert document["variants"]["adaptive"]["total_cost"] == (
            seed7.variants["adaptive"].total_cost
        )

    def test_simulation_policy_scales_with_events(self):
        policy = simulation_policy(40.0)
        assert policy.period_ticks == 40.0
        assert policy.cooldown_ticks == 80.0
        assert policy.min_absolute_change == 1.0
