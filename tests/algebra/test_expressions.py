"""Unit tests for scalar expressions and their canonical signatures."""

import datetime

import pytest

from repro.algebra.expressions import (
    And,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    column,
    compare,
    literal,
)
from repro.errors import AlgebraError


class TestColumnRef:
    def test_short_name(self):
        assert column("Division.city").short_name == "city"

    def test_empty_name_rejected(self):
        with pytest.raises(AlgebraError):
            ColumnRef("")

    def test_evaluate_exact(self):
        assert column("a").evaluate({"a": 3}) == 3

    def test_evaluate_short_name_fallback(self):
        assert column("Division.city").evaluate({"Div2.city": "LA"}) == "LA"

    def test_evaluate_ambiguous_fallback_raises(self):
        with pytest.raises(AlgebraError):
            column("x.c").evaluate({"a.c": 1, "b.c": 2})

    def test_substitute(self):
        renamed = column("a").substitute({"a": "R.a"})
        assert renamed.name == "R.a"


class TestLiteral:
    def test_type_inferred(self):
        assert literal(5).signature == "lit(integer:5)"

    def test_date_signature_is_iso(self):
        sig = literal(datetime.date(1996, 7, 1)).signature
        assert sig == "lit(date:1996-07-01)"

    def test_evaluate_is_constant(self):
        assert literal("LA").evaluate({}) == "LA"

    def test_substitute_is_identity(self):
        lit = literal(1)
        assert lit.substitute({"a": "b"}) is lit


class TestComparison:
    def test_literal_flipped_to_right(self):
        left_lit = Comparison("<", Literal(5), ColumnRef("a"))
        right_lit = Comparison(">", ColumnRef("a"), Literal(5))
        assert left_lit.signature == right_lit.signature

    def test_symmetric_column_ordering(self):
        a = compare("R.x", "=", column("S.y"))
        b = compare("S.y", "=", column("R.x"))
        assert a.signature == b.signature
        assert a == b

    def test_asymmetric_ops_not_reordered(self):
        a = compare("R.x", "<", column("S.y"))
        b = compare("S.y", "<", column("R.x"))
        assert a.signature != b.signature

    def test_unknown_operator(self):
        with pytest.raises(AlgebraError):
            compare("a", "~", 1)

    def test_is_equijoin(self):
        assert compare("R.x", "=", column("S.y")).is_equijoin
        assert not compare("R.x", "=", 5).is_equijoin
        assert not compare("R.x", "<", column("S.y")).is_equijoin

    @pytest.mark.parametrize(
        "op,expected",
        [("=", False), ("!=", True), ("<", True), ("<=", True), (">", False), (">=", False)],
    )
    def test_evaluate_ops(self, op, expected):
        predicate = compare("a", op, 10)
        assert predicate.evaluate({"a": 5}) is expected

    def test_null_comparison_is_unknown(self):
        assert compare("a", "=", 1).evaluate({"a": None}) is None

    def test_columns(self):
        predicate = compare("R.x", "=", column("S.y"))
        assert predicate.columns() == frozenset({"R.x", "S.y"})


class TestBooleans:
    def test_and_flattens_and_dedupes(self):
        p = compare("a", ">", 1)
        q = compare("b", "<", 2)
        nested = And([p, And([q, p])])
        assert len(nested.children) == 2

    def test_and_is_order_insensitive(self):
        p, q = compare("a", ">", 1), compare("b", "<", 2)
        assert And([p, q]) == And([q, p])

    def test_and_requires_two_distinct(self):
        p = compare("a", ">", 1)
        with pytest.raises(AlgebraError):
            And([p, p])

    def test_and_evaluation(self):
        p = And([compare("a", ">", 1), compare("b", "<", 2)])
        assert p.evaluate({"a": 5, "b": 0}) is True
        assert p.evaluate({"a": 0, "b": 0}) is False

    def test_and_short_circuits_false_over_null(self):
        p = And([compare("a", ">", 1), compare("b", "<", 2)])
        assert p.evaluate({"a": 0, "b": None}) is False
        assert p.evaluate({"a": 5, "b": None}) is None

    def test_or_evaluation(self):
        p = Or([compare("a", ">", 1), compare("b", "<", 2)])
        assert p.evaluate({"a": 5, "b": 5}) is True
        assert p.evaluate({"a": 0, "b": 5}) is False

    def test_or_true_dominates_null(self):
        p = Or([compare("a", ">", 1), compare("b", "<", 2)])
        assert p.evaluate({"a": 5, "b": None}) is True
        assert p.evaluate({"a": 0, "b": None}) is None

    def test_not(self):
        p = Not(compare("a", ">", 1))
        assert p.evaluate({"a": 0}) is True
        assert p.evaluate({"a": 5}) is False
        assert p.evaluate({"a": None}) is None

    def test_substitute_recurses(self):
        p = And([compare("a", ">", 1), compare("b", "<", 2)])
        renamed = p.substitute({"a": "R.a", "b": "R.b"})
        assert renamed.columns() == frozenset({"R.a", "R.b"})

    def test_hash_consistency(self):
        p = And([compare("a", ">", 1), compare("b", "<", 2)])
        q = And([compare("b", "<", 2), compare("a", ">", 1)])
        assert hash(p) == hash(q)
