"""Unit tests for logical operators and signature-based equality."""

import pytest

from repro.algebra.expressions import column, compare
from repro.algebra.operators import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
    Join,
    Project,
    Relation,
    Select,
    project_if,
    select_if,
)
from repro.catalog.datatypes import DataType
from repro.catalog.schema import Attribute, RelationSchema
from repro.errors import AlgebraError


def rel(name, *cols):
    schema = RelationSchema(
        name, [Attribute(f"{name}.{c}", DataType.INTEGER) for c in cols]
    )
    return Relation(name, schema)


@pytest.fixture
def product():
    return rel("Product", "Pid", "Did")


@pytest.fixture
def division():
    return rel("Division", "Did", "city")


class TestRelation:
    def test_signature(self, product):
        assert product.signature == "rel(Product)"

    def test_is_leaf(self, product):
        assert product.is_leaf
        assert product.base_relations() == frozenset({"Product"})

    def test_with_children_rejects_children(self, product, division):
        with pytest.raises(AlgebraError):
            product.with_children([division])


class TestSelect:
    def test_schema_passthrough(self, product):
        select = Select(product, compare("Product.Pid", ">", 1))
        assert select.schema == product.schema

    def test_unknown_column_rejected(self, product):
        with pytest.raises(AlgebraError):
            Select(product, compare("Division.city", "=", 1))

    def test_short_name_accepted(self, product):
        # Unambiguous short names resolve against the child schema.
        select = Select(product, compare("Pid", ">", 1))
        assert "Pid" in next(iter(select.predicate.columns()))

    def test_equal_predicates_equal_signatures(self, product):
        a = Select(product, compare("Product.Pid", ">", 1))
        b = Select(product, compare("Product.Pid", ">", 1))
        assert a == b and hash(a) == hash(b)

    def test_select_if_none_passthrough(self, product):
        assert select_if(product, None) is product


class TestProject:
    def test_schema(self, product):
        project = Project(product, ["Product.Pid"])
        assert project.schema.attribute_names == ("Product.Pid",)

    def test_empty_rejected(self, product):
        with pytest.raises(AlgebraError):
            Project(product, [])

    def test_signature_order_insensitive(self, product):
        a = Project(product, ["Product.Pid", "Product.Did"])
        b = Project(product, ["Product.Did", "Product.Pid"])
        assert a.signature == b.signature

    def test_project_if_identity_elided(self, product):
        assert project_if(product, ["Product.Pid", "Product.Did"]) is product
        assert isinstance(project_if(product, ["Product.Pid"]), Project)


class TestJoin:
    def test_schema_concatenates(self, product, division):
        join = Join(product, division, compare("Product.Did", "=", column("Division.Did")))
        assert len(join.schema) == 4

    def test_commutative_signature(self, product, division):
        condition = compare("Product.Did", "=", column("Division.Did"))
        assert Join(product, division, condition) == Join(division, product, condition)

    def test_cross_product_signature(self, product, division):
        assert Join(product, division).signature.startswith("join[true]")

    def test_condition_columns_checked(self, product, division):
        with pytest.raises(AlgebraError):
            Join(product, division, compare("Customer.Cid", "=", 1))

    def test_base_relations(self, product, division):
        join = Join(product, division)
        assert join.base_relations() == frozenset({"Product", "Division"})

    def test_walk_postorder(self, product, division):
        join = Join(product, division)
        names = [type(n).__name__ for n in join.walk()]
        assert names == ["Relation", "Relation", "Join"]

    def test_node_count(self, product, division):
        assert Join(product, division).node_count() == 3

    def test_with_children(self, product, division):
        condition = compare("Product.Did", "=", column("Division.Did"))
        join = Join(product, division, condition)
        flipped = join.with_children((division, product))
        assert flipped.condition is condition
        assert flipped.left.signature == division.signature


class TestAggregate:
    def test_output_schema(self, product):
        agg = Aggregate(
            product,
            ["Product.Did"],
            [AggregateSpec(AggregateFunction.COUNT, None, "n")],
        )
        assert agg.schema.attribute_names == ("Product.Did", "n")
        assert agg.schema.attribute("n").datatype is DataType.INTEGER

    def test_sum_is_float(self, product):
        agg = Aggregate(
            product,
            [],
            [AggregateSpec(AggregateFunction.SUM, "Product.Pid", "s")],
        )
        assert agg.schema.attribute("s").datatype is DataType.FLOAT

    def test_min_keeps_input_type(self, product):
        agg = Aggregate(
            product,
            [],
            [AggregateSpec(AggregateFunction.MIN, "Product.Pid")],
        )
        assert agg.schema.attribute("min_Pid").datatype is DataType.INTEGER

    def test_requires_something(self, product):
        with pytest.raises(AlgebraError):
            Aggregate(product, [], [])

    def test_non_count_requires_attribute(self):
        with pytest.raises(AlgebraError):
            AggregateSpec(AggregateFunction.SUM, None)

    def test_default_alias(self):
        spec = AggregateSpec(AggregateFunction.AVG, "Product.Pid")
        assert spec.alias == "avg_Pid"

    def test_signature_stable(self, product):
        a = Aggregate(product, ["Product.Did"], [AggregateSpec(AggregateFunction.COUNT, None)])
        b = Aggregate(product, ["Product.Did"], [AggregateSpec(AggregateFunction.COUNT, None)])
        assert a == b


class TestDescribe:
    def test_describe_is_indented(self, product, division):
        join = Join(product, division)
        text = join.describe()
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("  ")


class TestSortLimit:
    def test_sort_signature_is_order_sensitive(self, product):
        from repro.algebra.operators import Sort

        a = Sort(product, [("Product.Pid", True), ("Product.Did", True)])
        b = Sort(product, [("Product.Did", True), ("Product.Pid", True)])
        assert a.signature != b.signature

    def test_sort_direction_in_signature(self, product):
        from repro.algebra.operators import Sort

        asc = Sort(product, [("Product.Pid", True)])
        desc = Sort(product, [("Product.Pid", False)])
        assert asc.signature != desc.signature

    def test_sort_requires_keys(self, product):
        from repro.algebra.operators import Sort

        with pytest.raises(AlgebraError):
            Sort(product, [])

    def test_sort_resolves_short_names(self, product):
        from repro.algebra.operators import Sort

        sort = Sort(product, [("Pid", True)])
        assert sort.keys == (("Product.Pid", True),)

    def test_sort_schema_passthrough(self, product):
        from repro.algebra.operators import Sort

        assert Sort(product, [("Pid", True)]).schema == product.schema

    def test_limit_validation(self, product):
        from repro.algebra.operators import Limit

        with pytest.raises(AlgebraError):
            Limit(product, -1)
        assert Limit(product, 0).count == 0

    def test_limit_with_children(self, product, division):
        from repro.algebra.operators import Limit

        limit = Limit(product, 5)
        rebuilt = limit.with_children((division,))
        assert rebuilt.count == 5
        assert rebuilt.child is division

    def test_pull_up_peels_decorations(self, product, division):
        from repro.algebra.operators import Join, Limit, Sort
        from repro.algebra.rewrite import pull_up

        join = Join(product, division,
                    compare("Product.Did", "=", column("Division.Did")))
        plan = Limit(Sort(join, [("Product.Pid", True)]), 7)
        pulled = pull_up(plan)
        assert pulled.limit is not None and pulled.limit.count == 7
        assert pulled.sort is not None
        assert isinstance(pulled.skeleton, Join)
        rebuilt = pulled.assemble()
        assert rebuilt.signature == plan.signature

    def test_sort_below_join_rejected_in_pull_up(self, product, division):
        from repro.algebra.operators import Join, Sort
        from repro.algebra.rewrite import pull_up

        sorted_product = Sort(product, [("Product.Pid", True)])
        plan = Join(sorted_product, division,
                    compare("Product.Did", "=", column("Division.Did")))
        with pytest.raises(AlgebraError):
            pull_up(plan)
