"""Unit tests for predicate manipulation (conjunction, disjunction, implies)."""

import pytest

from repro.algebra import predicates as P
from repro.algebra.expressions import And, Not, Or, column, compare


def gt(col, value):
    return compare(col, ">", value)


class TestConjuncts:
    def test_none_is_empty(self):
        assert P.conjuncts(None) == ()

    def test_single(self):
        p = gt("a", 1)
        assert P.conjuncts(p) == (p,)

    def test_and_splits(self):
        p, q = gt("a", 1), gt("b", 2)
        assert set(P.conjuncts(And([p, q]))) == {p, q}


class TestConjunction:
    def test_empty_is_true(self):
        assert P.conjunction([]) is None
        assert P.conjunction([None, None]) is None

    def test_single_passthrough(self):
        p = gt("a", 1)
        assert P.conjunction([p, None]) is p

    def test_flattens(self):
        p, q, r = gt("a", 1), gt("b", 2), gt("c", 3)
        combined = P.conjunction([And([p, q]), r])
        assert isinstance(combined, And)
        assert len(combined.children) == 3

    def test_dedupes(self):
        p = gt("a", 1)
        assert P.conjunction([p, p]) is p


class TestDisjunction:
    def test_true_absorbs(self):
        # If any sharing query applies no selection, the pushed-down
        # condition must be TRUE (Figure 4 step 5).
        assert P.disjunction([gt("a", 1), None]) is None

    def test_combines(self):
        p, q = gt("a", 1), gt("b", 2)
        combined = P.disjunction([p, q])
        assert isinstance(combined, Or)

    def test_single(self):
        p = gt("a", 1)
        assert P.disjunction([p]) is p

    def test_empty(self):
        assert P.disjunction([]) is None

    def test_dedupes(self):
        p = gt("a", 1)
        assert P.disjunction([p, p]) is p


class TestNegate:
    def test_double_negation(self):
        p = gt("a", 1)
        assert P.negate(P.negate(p)) is p

    def test_single_negation(self):
        assert isinstance(P.negate(gt("a", 1)), Not)


class TestSplitSelectionAndJoin:
    def test_split(self):
        join = compare("R.x", "=", column("S.y"))
        selection = gt("R.a", 1)
        selections, joins = P.split_selection_and_join(And([join, selection]))
        assert selections == (selection,)
        assert joins == (join,)

    def test_column_equals_literal_is_selection(self):
        predicate = compare("R.x", "=", 5)
        selections, joins = P.split_selection_and_join(predicate)
        assert selections == (predicate,)
        assert joins == ()


class TestConjunctsCoveredBy:
    def test_partition(self):
        p, q = gt("R.a", 1), gt("S.b", 2)
        inside, outside = P.conjuncts_covered_by(And([p, q]), {"R.a"})
        assert inside == (p,)
        assert outside == (q,)


class TestImplies:
    def test_everything_implies_true(self):
        assert P.implies(gt("a", 1), None)

    def test_true_implies_nothing(self):
        assert not P.implies(None, gt("a", 1))

    def test_identity(self):
        assert P.implies(gt("a", 1), gt("a", 1))

    def test_range_subsumption_gt(self):
        assert P.implies(gt("a", 200), gt("a", 100))
        assert not P.implies(gt("a", 100), gt("a", 200))

    def test_boundary_gt_ge(self):
        assert P.implies(compare("a", ">", 5), compare("a", ">=", 5))
        assert not P.implies(compare("a", ">=", 5), compare("a", ">", 5))

    def test_range_subsumption_lt(self):
        assert P.implies(compare("a", "<", 10), compare("a", "<", 20))
        assert P.implies(compare("a", "<=", 10), compare("a", "<=", 10))

    def test_equality_implies_ranges(self):
        assert P.implies(compare("a", "=", 5), compare("a", "<=", 9))
        assert P.implies(compare("a", "=", 5), compare("a", ">", 1))
        assert not P.implies(compare("a", "=", 5), compare("a", ">", 5))
        assert P.implies(compare("a", "=", 5), compare("a", "!=", 6))

    def test_different_columns_never_proved(self):
        assert not P.implies(gt("a", 200), gt("b", 100))

    def test_disjunction_on_weak_side(self):
        weak = Or([gt("a", 100), gt("b", 5)])
        assert P.implies(gt("a", 200), weak)

    def test_conjunction_on_strong_side(self):
        strong = And([gt("a", 200), gt("b", 0)])
        assert P.implies(strong, gt("a", 100))

    def test_conjunction_on_weak_side_needs_all(self):
        weak = And([gt("a", 100), gt("b", 0)])
        assert not P.implies(gt("a", 200), weak)
        assert P.implies(And([gt("a", 200), gt("b", 3)]), weak)

    def test_incomparable_types_not_proved(self):
        assert not P.implies(compare("a", ">", "zzz"), compare("a", ">", 5))

    def test_pushed_disjunction_does_not_imply_member(self):
        # The core residual-selection rule: a leaf-level disjunction keeps
        # extra tuples, so each query must re-apply its own condition.
        pushed = Or([gt("date", 100), gt("qty", 5)])
        assert not P.implies(pushed, gt("date", 100))


class TestEquijoinPairs:
    def test_pairs(self):
        predicate = P.conjunction(
            [compare("R.x", "=", column("S.y")), gt("R.a", 1)]
        )
        assert P.equijoin_pairs(predicate) == (("R.x", "S.y"),)


class TestReferencedColumns:
    def test_union(self):
        cols = P.referenced_columns([gt("R.a", 1), None, gt("S.b", 2)])
        assert cols == {"R.a", "S.b"}
