"""Property-based tests (hypothesis) for expression semantics.

Invariants checked:

* canonicalization (operand reordering, AND/OR commutation) never changes
  evaluation results;
* the ``implies`` checker is *sound*: a proven implication never has a
  counterexample row;
* ``conjunction``/``disjunction`` helpers agree with direct evaluation.
"""

from hypothesis import given, strategies as st

from repro.algebra import predicates as P
from repro.algebra.expressions import (
    And,
    Comparison,
    Literal,
    Not,
    Or,
    column,
)

COLUMNS = ("a", "b", "c")
OPS = ("=", "!=", "<", "<=", ">", ">=")


@st.composite
def comparisons(draw):
    col = draw(st.sampled_from(COLUMNS))
    op = draw(st.sampled_from(OPS))
    if draw(st.booleans()):
        other = draw(st.sampled_from(COLUMNS))
        return Comparison(op, column(col), column(other))
    value = draw(st.integers(min_value=0, max_value=10))
    return Comparison(op, column(col), Literal(value))


def expressions(max_depth=3):
    return st.recursive(
        comparisons(),
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda t: _and_or(t, And)),
            st.tuples(children, children).map(lambda t: _and_or(t, Or)),
            children.map(Not),
        ),
        max_leaves=6,
    )


def _and_or(pair, cls):
    left, right = pair
    if left.signature == right.signature:
        return left  # n-ary booleans require two distinct operands
    return cls([left, right])


rows = st.fixed_dictionaries(
    {c: st.integers(min_value=0, max_value=10) for c in COLUMNS}
)


@given(comparisons(), rows)
def test_comparison_canonicalization_preserves_semantics(predicate, row):
    # Rebuild with flipped operand order and mirrored operator.
    from repro.algebra.expressions import MIRRORED_OPS

    flipped = Comparison(
        MIRRORED_OPS[predicate.op], predicate.right, predicate.left
    )
    assert predicate.evaluate(row) == flipped.evaluate(row)


@given(comparisons(), comparisons(), rows)
def test_and_commutation(p, q, row):
    if p.signature == q.signature:
        return
    assert And([p, q]).evaluate(row) == And([q, p]).evaluate(row)
    assert And([p, q]).signature == And([q, p]).signature


@given(comparisons(), comparisons(), rows)
def test_or_commutation(p, q, row):
    if p.signature == q.signature:
        return
    assert Or([p, q]).evaluate(row) == Or([q, p]).evaluate(row)
    assert Or([p, q]).signature == Or([q, p]).signature


@given(expressions(), rows)
def test_not_inverts(predicate, row):
    value = predicate.evaluate(row)
    negated = Not(predicate).evaluate(row)
    if value is None:
        assert negated is None
    else:
        assert negated == (not value)


@given(st.lists(comparisons(), min_size=1, max_size=4), rows)
def test_conjunction_matches_all(parts, row):
    combined = P.conjunction(parts)
    expected = all(bool(p.evaluate(row)) for p in parts)
    assert bool(combined.evaluate(row)) == expected


@given(st.lists(comparisons(), min_size=1, max_size=4), rows)
def test_disjunction_matches_any(parts, row):
    combined = P.disjunction(parts)
    expected = any(bool(p.evaluate(row)) for p in parts)
    assert bool(combined.evaluate(row)) == expected


@given(expressions(), expressions(), rows)
def test_implies_is_sound(strong, weak, row):
    if not P.implies(strong, weak):
        return  # nothing proved, nothing to check
    if strong.evaluate(row) is True:
        assert weak.evaluate(row) is True


@given(expressions(), rows)
def test_signature_equal_expressions_evaluate_equal(predicate, row):
    # Evaluating a structurally-rebuilt copy through substitution with an
    # identity mapping gives the same result.
    clone = predicate.substitute({})
    assert clone.signature == predicate.signature
    assert clone.evaluate(row) == predicate.evaluate(row)
