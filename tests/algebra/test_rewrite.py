"""Unit tests for pull-up / push-down rewrites (Figure 4 steps 2, 5, 6)."""

import pytest

from repro.algebra import predicates as P
from repro.algebra.expressions import column, compare
from repro.algebra.operators import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
    Join,
    Project,
    Relation,
    Select,
)
from repro.algebra.rewrite import (
    optimize_tree,
    pull_up,
    push_down_projections,
    push_down_selections,
)
from repro.algebra.tree import find, leaves
from repro.catalog.datatypes import DataType
from repro.catalog.schema import Attribute, RelationSchema


def rel(name, *cols):
    schema = RelationSchema(
        name, [Attribute(f"{name}.{c}", DataType.INTEGER) for c in cols]
    )
    return Relation(name, schema)


@pytest.fixture
def spj_plan():
    """π(σ(Product ⋈ σ(Division))) with a selection buried under the join.

    Both relations carry an extra column (``weight``/``name``) no query
    part needs, so projection push-down has something to prune.
    """
    product = rel("Product", "Pid", "Did", "price", "weight")
    division = rel("Division", "Did", "city", "name")
    sigma = Select(division, compare("Division.city", "=", 3))
    join = Join(product, sigma, compare("Product.Did", "=", column("Division.Did")))
    top = Select(join, compare("Product.price", ">", 10))
    return Project(top, ["Product.Pid"])


class TestPullUp:
    def test_skeleton_has_no_selects(self, spj_plan):
        pulled = pull_up(spj_plan)
        assert not find(pulled.skeleton, lambda n: isinstance(n, (Select, Project)))

    def test_join_conditions_preserved(self, spj_plan):
        pulled = pull_up(spj_plan)
        joins = find(pulled.skeleton, lambda n: isinstance(n, Join))
        assert len(joins) == 1
        assert joins[0].condition is not None

    def test_selection_collects_all_conjuncts(self, spj_plan):
        pulled = pull_up(spj_plan)
        assert len(P.conjuncts(pulled.selection)) == 2

    def test_projection_is_plan_output(self, spj_plan):
        pulled = pull_up(spj_plan)
        assert pulled.projection == ("Product.Pid",)

    def test_assemble_round_trips_semantics(self, spj_plan):
        pulled = pull_up(spj_plan)
        rebuilt = pulled.assemble()
        assert rebuilt.schema.attribute_names == spj_plan.schema.attribute_names
        assert rebuilt.base_relations() == spj_plan.base_relations()

    def test_aggregate_preserved(self):
        product = rel("Product", "Pid", "Did")
        agg = Aggregate(
            Select(product, compare("Product.Pid", ">", 1)),
            ["Product.Did"],
            [AggregateSpec(AggregateFunction.COUNT, None, "n")],
        )
        pulled = pull_up(agg)
        assert pulled.aggregate is not None
        assert pulled.selection is not None
        rebuilt = pulled.assemble()
        assert "n" in rebuilt.schema.attribute_names


class TestPushDownSelections:
    def test_single_side_conjunct_descends(self, spj_plan):
        pulled = pull_up(spj_plan)
        pushed = push_down_selections(pulled.skeleton, pulled.selection)
        # Both conjuncts are single-relation; each must sit on its leaf.
        for select in find(pushed, lambda n: isinstance(n, Select)):
            assert isinstance(select.child, Relation)

    def test_cross_relation_conjunct_stays_above_join(self):
        a, b = rel("A", "x"), rel("B", "y")
        skeleton = Join(a, b, compare("A.x", "=", column("B.y")))
        residual = compare("A.x", "<", column("B.y"))
        pushed = push_down_selections(skeleton, residual)
        assert isinstance(pushed, Select)
        assert isinstance(pushed.child, Join)

    def test_true_selection_is_identity(self):
        a, b = rel("A", "x"), rel("B", "y")
        skeleton = Join(a, b)
        assert push_down_selections(skeleton, None) is skeleton


class TestPushDownProjections:
    def test_leaf_projections_inserted(self, spj_plan):
        optimized = push_down_projections(spj_plan, spj_plan.schema.attribute_names)
        for leaf in leaves(optimized):
            # every leaf should sit under a Project keeping needed columns
            pass
        projects = find(optimized, lambda n: isinstance(n, Project))
        assert len(projects) >= 2

    def test_join_columns_kept(self, spj_plan):
        optimized = push_down_projections(spj_plan, spj_plan.schema.attribute_names)
        # Division side must keep Did (join attr) and city (predicate attr).
        division_projects = [
            p
            for p in find(optimized, lambda n: isinstance(n, Project))
            if p.base_relations() == frozenset({"Division"})
        ]
        assert division_projects
        kept = set(division_projects[0].attributes)
        assert {"Division.Did", "Division.city"} <= kept

    def test_output_schema_unchanged(self, spj_plan):
        optimized = push_down_projections(spj_plan, spj_plan.schema.attribute_names)
        assert optimized.schema.attribute_names == spj_plan.schema.attribute_names


class TestOptimizeTree:
    def test_selections_pushed_and_output_stable(self, spj_plan):
        optimized = optimize_tree(spj_plan)
        assert optimized.schema.attribute_names == spj_plan.schema.attribute_names
        # The division filter must now be below the join.
        joins = find(optimized, lambda n: isinstance(n, Join))
        division_side = joins[0].right
        assert find(division_side, lambda n: isinstance(n, Select))

    def test_without_leaf_projections(self, spj_plan):
        optimized = optimize_tree(spj_plan, project_leaves=False)
        projects = find(optimized, lambda n: isinstance(n, Project))
        assert len(projects) == 1  # only the output projection
