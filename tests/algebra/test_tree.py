"""Unit tests for operator-tree utilities and common-subexpression search."""

import pytest

from repro.algebra import tree
from repro.algebra.expressions import column, compare
from repro.algebra.operators import Join, Project, Relation, Select
from repro.catalog.datatypes import DataType
from repro.catalog.schema import Attribute, RelationSchema


def rel(name, *cols):
    schema = RelationSchema(
        name, [Attribute(f"{name}.{c}", DataType.INTEGER) for c in cols]
    )
    return Relation(name, schema)


@pytest.fixture
def plans():
    product = rel("Product", "Pid", "Did")
    division = rel("Division", "Did", "city")
    part = rel("Part", "Tid", "Pid")
    sigma = Select(division, compare("Division.city", "=", 1))
    shared = Join(product, sigma, compare("Product.Did", "=", column("Division.Did")))
    q1 = Project(shared, ["Product.Pid"])
    q2 = Project(
        Join(shared, part, compare("Part.Pid", "=", column("Product.Pid"))),
        ["Part.Tid"],
    )
    return q1, q2, shared, sigma, product, division, part


class TestFind:
    def test_find_by_predicate(self, plans):
        q1, *_ = plans
        selects = tree.find(q1, lambda n: isinstance(n, Select))
        assert len(selects) == 1

    def test_find_by_signature(self, plans):
        q1, _, shared, *_ = plans
        assert tree.find_by_signature(q1, shared.signature) is not None
        assert tree.find_by_signature(q1, "rel(Nope)") is None

    def test_leaves_in_order(self, plans):
        q1, *_ = plans
        assert [leaf.name for leaf in tree.leaves(q1)] == ["Product", "Division"]

    def test_contains(self, plans):
        q1, _, shared, *_ = plans
        assert tree.contains(q1, shared.signature)
        assert not tree.contains(q1, "rel(Part)")


class TestReplace:
    def test_replace_subtree(self, plans):
        q1, _, shared, sigma, product, division, part = plans
        # A materialized-view stand-in keeps the replaced subtree's
        # qualified attribute names, as the warehouse rewriter does.
        replacement = Relation("MV", shared.schema.rename("MV"))
        rebuilt = tree.replace(q1, shared.signature, replacement)
        assert tree.contains(rebuilt, "rel(MV)")
        assert not tree.contains(rebuilt, sigma.signature)

    def test_replace_no_match_returns_same_object(self, plans):
        q1, *_ = plans
        assert tree.replace(q1, "rel(Nope)", rel("MV", "x")) is q1

    def test_replace_root(self, plans):
        q1, *_ = plans
        replacement = rel("MV", "x")
        assert tree.replace(q1, q1.signature, replacement) is replacement


class TestSubtreeSignatures:
    def test_counts(self, plans):
        q1, *_ = plans
        signatures = tree.subtree_signatures(q1)
        assert q1.signature in signatures
        assert "rel(Product)" in signatures


class TestCommonSubexpressions:
    def test_shared_join_detected(self, plans):
        q1, q2, shared, sigma, *_ = plans
        common = tree.common_subexpressions([q1, q2])
        assert shared.signature in common
        assert sigma.signature in common
        assert len(common[shared.signature]) == 2

    def test_leaves_excluded(self, plans):
        q1, q2, *_ = plans
        common = tree.common_subexpressions([q1, q2])
        assert "rel(Product)" not in common

    def test_maximal_excludes_nested(self, plans):
        q1, q2, shared, sigma, *_ = plans
        maximal = tree.maximal_common_subexpressions([q1, q2])
        # The shared join is maximal; the sigma below it is not.
        assert shared.signature in maximal
        assert sigma.signature not in maximal

    def test_no_sharing(self, plans):
        q1, *_ = plans
        part = rel("Part", "Tid", "Pid")
        assert tree.common_subexpressions([q1, part]) == {}
