"""Unit tests for DOT export."""

from repro.analysis.dot import to_dot, vertex_label
from repro.mvpp.cost import MVPPCostCalculator
from repro.mvpp.materialization import select_views


class TestToDot:
    def test_valid_structure(self, paper_mvpp):
        dot = to_dot(paper_mvpp)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_one_node_statement_per_vertex(self, paper_mvpp):
        dot = to_dot(paper_mvpp)
        node_lines = [l for l in dot.splitlines() if "[shape=" in l]
        assert len(node_lines) == len(paper_mvpp)

    def test_one_edge_per_arc(self, paper_mvpp):
        dot = to_dot(paper_mvpp)
        edge_lines = [l for l in dot.splitlines() if "->" in l]
        expected = sum(len(v.children) for v in paper_mvpp)
        assert len(edge_lines) == expected

    def test_shapes_by_kind(self, paper_mvpp):
        dot = to_dot(paper_mvpp)
        assert "shape=box" in dot  # base relations
        assert "shape=doublecircle" in dot  # query roots
        assert "shape=ellipse" in dot  # operations

    def test_highlight_materialized(self, paper_mvpp):
        calc = MVPPCostCalculator(paper_mvpp)
        result = select_views(paper_mvpp, calc)
        dot = to_dot(paper_mvpp, highlight=result.materialized)
        assert dot.count("fillcolor") == len(result.materialized)

    def test_labels_escaped(self, paper_mvpp):
        dot = to_dot(paper_mvpp)
        # Predicates contain quotes ('LA'); they must not break the DOT.
        for line in dot.splitlines():
            if "label=" in line:
                assert line.count('"') % 2 == 0

    def test_vertex_label_contents(self, paper_mvpp):
        root = paper_mvpp.query_root("Q1")
        assert "fq=10" in vertex_label(root)
        leaf = paper_mvpp.vertex_by_name("Order")
        assert "fu=1" in vertex_label(leaf)
