"""Unit tests for paper-style reporting."""

import pytest

from repro.analysis.report import (
    format_blocks,
    mvpp_cost_table,
    relation_table,
    render_table,
    strategy_table,
)
from repro.mvpp import strategies
from repro.mvpp.cost import MVPPCostCalculator


class TestFormatBlocks:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (37_577_000, "37.577m"),
            (35_370, "35.37k"),
            (95_671_000, "95.671m"),
            (250, "250"),
            (2_500_000_000, "2.500g"),
        ],
    )
    def test_paper_style(self, value, expected):
        assert format_blocks(value) == expected


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["A", "Blong"], [["x", "y"], ["xx", "yy"]])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        text = render_table(["A"], [["1"]], title="T2")
        assert text.splitlines()[0] == "T2"


class TestStrategyTable:
    def test_best_row_marked(self, paper_mvpp):
        calc = MVPPCostCalculator(paper_mvpp)
        rows = [
            strategies.materialize_nothing(paper_mvpp, calc),
            strategies.heuristic(paper_mvpp, calc),
        ]
        text = strategy_table(rows)
        assert "*" in text
        assert "all-virtual" in text

    def test_empty_set_rendered(self, paper_mvpp):
        calc = MVPPCostCalculator(paper_mvpp)
        text = strategy_table([strategies.materialize_nothing(paper_mvpp, calc)])
        assert "(none)" in text


class TestRelationTable:
    def test_lists_table1(self, workload):
        text = relation_table(workload)
        assert "Product" in text
        assert "30,000 records" in text
        assert "fu=1" in text


class TestMVPPCostTable:
    def test_lists_every_vertex(self, paper_mvpp):
        text = mvpp_cost_table(paper_mvpp)
        for vertex in paper_mvpp:
            assert vertex.name in text
        assert "Ca" in text and "Cm" in text


class TestDesignReport:
    def test_sections_present(self, workload):
        from repro.analysis.report import design_report
        from repro.mvpp import design

        result = design(workload, rotations=1)
        text = design_report(result)
        assert "Chosen views" in text
        assert "Against the extremes" in text
        assert "Drop-one sensitivity" in text
        for name in result.materialized_names:
            assert name in text

    def test_design_row_is_best(self, workload):
        from repro.analysis.report import design_report
        from repro.mvpp import design

        result = design(workload, rotations=1)
        text = design_report(result)
        # The strategy table marks the cheapest row; it must be ours.
        marked = [l for l in text.splitlines() if l.rstrip().endswith("*")]
        assert any("this design" in l for l in marked)
