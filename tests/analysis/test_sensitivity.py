"""Unit tests for design sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import (
    add_one,
    drop_one,
    frequency_breakpoints,
)
from repro.mvpp.cost import MVPPCostCalculator
from repro.mvpp.materialization import select_views


@pytest.fixture()
def design(paper_mvpp):
    calc = MVPPCostCalculator(paper_mvpp)
    chosen = select_views(paper_mvpp, calc, refine=True)
    return calc, chosen.materialized


class TestDropOne:
    def test_every_chosen_view_contributes(self, paper_mvpp, design):
        calc, chosen = design
        marginals = drop_one(paper_mvpp, calc, chosen)
        assert len(marginals) == len(chosen)
        # The refined design is locally optimal: dropping anything hurts.
        assert all(m.delta >= 0 for m in marginals)

    def test_sorted_most_valuable_first(self, paper_mvpp, design):
        calc, chosen = design
        deltas = [m.delta for m in drop_one(paper_mvpp, calc, chosen)]
        assert deltas == sorted(deltas, reverse=True)

    def test_shared_oc_join_is_most_valuable(self, paper_mvpp, design):
        """The Order⋈Customer view carries Q4's fq=5 traffic — dropping
        it hurts most."""
        calc, chosen = design
        top = drop_one(paper_mvpp, calc, chosen)[0]
        vertex = paper_mvpp.vertex_by_name(top.vertex)
        assert vertex.operator.base_relations() == frozenset(
            {"Order", "Customer"}
        )


class TestAddOne:
    def test_no_missed_candidates_on_example(self, paper_mvpp, design):
        """The example design matches the exhaustive optimum, so no
        single addition can improve it."""
        calc, chosen = design
        additions = add_one(paper_mvpp, calc, chosen)
        assert all(m.delta >= -1e-6 for m in additions)

    def test_limit_respected(self, paper_mvpp, design):
        calc, chosen = design
        assert len(add_one(paper_mvpp, calc, chosen, limit=3)) == 3

    def test_sorted_best_first(self, paper_mvpp, design):
        calc, chosen = design
        deltas = [m.delta for m in add_one(paper_mvpp, calc, chosen)]
        assert deltas == sorted(deltas)


class TestFrequencyBreakpoints:
    def test_one_breakpoint_per_query(self, paper_mvpp, design):
        calc, chosen = design
        breakpoints = frequency_breakpoints(paper_mvpp, calc, chosen)
        assert {b.query for b in breakpoints} == {"Q1", "Q2", "Q3", "Q4"}

    def test_frequencies_restored(self, paper_mvpp, design):
        calc, chosen = design
        before = {r.name: r.frequency for r in paper_mvpp.roots}
        frequency_breakpoints(paper_mvpp, calc, chosen)
        after = {r.name: r.frequency for r in paper_mvpp.roots}
        assert before == after

    def test_q4_has_a_breakpoint(self, paper_mvpp, design):
        """The Order⋈Customer view exists because of Q4's traffic: cool
        Q4 far enough and the design stops being locally optimal."""
        calc, chosen = design
        breakpoints = {
            b.query: b for b in frequency_breakpoints(paper_mvpp, calc, chosen)
        }
        q4 = breakpoints["Q4"]
        assert q4.breakpoint_frequency is not None
        assert 0 < q4.breakpoint_frequency < q4.current_frequency
        assert 0 < q4.headroom < 1

    def test_breakpoint_is_consistent(self, paper_mvpp, design):
        """Below the breakpoint the design is no longer locally optimal;
        above it, it is."""
        from repro.analysis.sensitivity import _design_is_locally_optimal

        calc, chosen = design
        breakpoints = {
            b.query: b for b in frequency_breakpoints(paper_mvpp, calc, chosen)
        }
        q4 = breakpoints["Q4"]
        root = paper_mvpp.query_root("Q4")
        original = root.frequency
        try:
            root.frequency = q4.breakpoint_frequency * 1.1
            assert _design_is_locally_optimal(calc, chosen)
            root.frequency = q4.breakpoint_frequency * 0.5
            assert not _design_is_locally_optimal(calc, chosen)
        finally:
            root.frequency = original
