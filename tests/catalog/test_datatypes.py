"""Unit tests for the attribute type system."""

import datetime

import pytest

from repro.catalog.datatypes import DataType, common_type, infer_type
from repro.errors import TypeMismatchError


class TestValidate:
    def test_integer_accepts_int(self):
        assert DataType.INTEGER.validate(42) == 42

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            DataType.INTEGER.validate(True)

    def test_integer_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            DataType.INTEGER.validate("42")

    def test_float_promotes_int(self):
        value = DataType.FLOAT.validate(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_none_is_accepted_everywhere(self):
        for datatype in DataType:
            assert datatype.validate(None) is None

    def test_date_accepts_date(self):
        day = datetime.date(1996, 7, 1)
        assert DataType.DATE.validate(day) == day

    def test_date_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            DataType.DATE.validate("1996-07-01")

    def test_boolean_accepts_bool(self):
        assert DataType.BOOLEAN.validate(True) is True

    def test_string_accepts_str(self):
        assert DataType.STRING.validate("LA") == "LA"


class TestParse:
    def test_parse_integer(self):
        assert DataType.INTEGER.parse("17") == 17

    def test_parse_float(self):
        assert DataType.FLOAT.parse("2.5") == 2.5

    def test_parse_date(self):
        assert DataType.DATE.parse("1996-07-01") == datetime.date(1996, 7, 1)

    def test_parse_boolean_true_variants(self):
        for text in ("true", "T", "1"):
            assert DataType.BOOLEAN.parse(text) is True

    def test_parse_boolean_false_variants(self):
        for text in ("false", "F", "0"):
            assert DataType.BOOLEAN.parse(text) is False

    def test_parse_boolean_garbage(self):
        with pytest.raises(TypeMismatchError):
            DataType.BOOLEAN.parse("maybe")

    def test_parse_string_is_identity(self):
        assert DataType.STRING.parse("hello") == "hello"


class TestInference:
    def test_infer_bool_before_int(self):
        # bool is a subclass of int; inference must pick BOOLEAN.
        assert infer_type(True) is DataType.BOOLEAN

    def test_infer_int(self):
        assert infer_type(7) is DataType.INTEGER

    def test_infer_float(self):
        assert infer_type(7.5) is DataType.FLOAT

    def test_infer_string(self):
        assert infer_type("x") is DataType.STRING

    def test_infer_date(self):
        assert infer_type(datetime.date(2000, 1, 1)) is DataType.DATE

    def test_infer_unsupported(self):
        with pytest.raises(TypeMismatchError):
            infer_type([1, 2])


class TestCommonType:
    def test_same_type(self):
        assert common_type(DataType.STRING, DataType.STRING) is DataType.STRING

    def test_numeric_promotion(self):
        assert common_type(DataType.INTEGER, DataType.FLOAT) is DataType.FLOAT

    def test_incompatible(self):
        with pytest.raises(TypeMismatchError):
            common_type(DataType.STRING, DataType.INTEGER)

    def test_numeric_and_orderable_flags(self):
        assert DataType.INTEGER.is_numeric
        assert not DataType.DATE.is_numeric
        assert DataType.DATE.is_orderable
        assert not DataType.BOOLEAN.is_orderable
