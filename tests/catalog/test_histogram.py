"""Unit tests for equi-width histograms and the statistics collector."""

import datetime
import random

import pytest

from repro.catalog.collector import collect_statistics
from repro.catalog.histogram import EquiWidthHistogram, build_histogram
from repro.errors import CatalogError


class TestHistogramConstruction:
    def test_bucket_counts_sum(self):
        histogram = EquiWidthHistogram(list(range(100)), buckets=10)
        assert sum(histogram.counts) == 100
        assert histogram.minimum == 0 and histogram.maximum == 99

    def test_invalid_buckets(self):
        with pytest.raises(CatalogError):
            EquiWidthHistogram([1, 2], buckets=0)

    def test_all_null_rejected(self):
        with pytest.raises(CatalogError):
            EquiWidthHistogram([None, None])

    def test_null_fraction(self):
        histogram = EquiWidthHistogram([1, 2, None, None], buckets=2)
        assert histogram.null_fraction == 0.5

    def test_degenerate_single_value(self):
        histogram = EquiWidthHistogram([5] * 10, buckets=4)
        assert histogram.selectivity(">", 5) == 0.0
        assert histogram.selectivity("<=", 5) == 1.0


class TestHistogramSelectivity:
    @pytest.fixture(scope="class")
    def uniform(self):
        rng = random.Random(1)
        return EquiWidthHistogram(
            [rng.randint(1, 200) for _ in range(5_000)], buckets=20
        )

    @pytest.mark.parametrize(
        "op,value,expected",
        [(">", 100, 0.5), ("<", 50, 0.245), (">=", 150, 0.255), ("<=", 190, 0.95)],
    )
    def test_range_accuracy_on_uniform_data(self, uniform, op, value, expected):
        assert uniform.selectivity(op, value) == pytest.approx(expected, abs=0.05)

    def test_out_of_range(self, uniform):
        assert uniform.selectivity(">", 10_000) == 0.0
        assert uniform.selectivity("<", -5) == 0.0
        assert uniform.selectivity("<", 10_000) == 1.0

    def test_equality_roughly_uniform(self, uniform):
        assert uniform.selectivity("=", 100) == pytest.approx(1 / 200, rel=0.75)

    def test_nulls_never_qualify(self):
        histogram = EquiWidthHistogram([1, 2, 3, 4, None, None, None, None], buckets=2)
        assert histogram.selectivity("<=", 4) == pytest.approx(0.5)

    def test_dates_supported(self):
        start = datetime.date(1996, 1, 1)
        values = [
            datetime.date.fromordinal(start.toordinal() + i) for i in range(366)
        ]
        histogram = EquiWidthHistogram(values, buckets=12)
        mid = histogram.selectivity(">", datetime.date(1996, 7, 1))
        assert mid == pytest.approx(0.5, abs=0.05)

    def test_unknown_operator(self, uniform):
        with pytest.raises(CatalogError):
            uniform.selectivity("~", 3)


class TestBuildHistogram:
    def test_strings_give_none(self):
        assert build_histogram(["a", "b"]) is None

    def test_all_null_gives_none(self):
        assert build_histogram([None]) is None

    def test_numeric_builds(self):
        assert build_histogram([1, 2, 3]) is not None


class TestCollector:
    @pytest.fixture(scope="class")
    def collected(self):
        rng = random.Random(7)
        orders = [
            {
                "Order.id": i,
                "Order.cid": rng.randrange(100),
                "Order.qty": rng.randint(1, 200),
            }
            for i in range(2_000)
        ]
        customers = [{"Customer.cid": i} for i in range(100)]
        return (
            collect_statistics(
                {"Order": orders, "Customer": customers},
                join_keys=[("Order.cid", "Customer.cid")],
            ),
            orders,
        )

    def test_relation_stats(self, collected):
        statistics, _ = collected
        assert statistics.relation("Order").cardinality == 2_000
        assert statistics.relation("Customer").cardinality == 100

    def test_column_stats(self, collected):
        statistics, _ = collected
        column = statistics.column("Order.qty")
        assert column is not None
        assert column.minimum >= 1 and column.maximum <= 200

    def test_histogram_attached_for_numeric(self, collected):
        statistics, _ = collected
        assert statistics.histogram("Order.qty") is not None

    def test_measured_join_selectivity(self, collected):
        statistics, _ = collected
        js = statistics.join_selectivity("Order.cid", "Customer.cid")
        assert js == pytest.approx(1 / 100, rel=0.01)

    def test_estimator_accuracy_with_collected_stats(self, collected):
        from repro.algebra.expressions import compare
        from repro.algebra.operators import Relation, Select
        from repro.catalog.datatypes import DataType
        from repro.catalog.schema import Attribute, RelationSchema
        from repro.optimizer.cardinality import CardinalityEstimator

        statistics, orders = collected
        schema = RelationSchema(
            "Order",
            [
                Attribute("Order.id", DataType.INTEGER),
                Attribute("Order.cid", DataType.INTEGER),
                Attribute("Order.qty", DataType.INTEGER),
            ],
        )
        plan = Select(
            Relation("Order", schema), compare("Order.qty", ">", 150)
        )
        estimated = CardinalityEstimator(statistics).estimate(plan).cardinality
        actual = sum(1 for r in orders if r["Order.qty"] > 150)
        assert estimated == pytest.approx(actual, rel=0.15)

    def test_unknown_join_key_rejected(self):
        with pytest.raises(CatalogError):
            collect_statistics({"R": [{"R.a": 1}]}, join_keys=[("R.a", "S.b")])

    def test_accepts_storage_tables(self, workload):
        from repro.executor.engine import load_database
        from repro.workload.datagen import paper_rows

        database = load_database(paper_rows(scale=0.02, seed=3), workload.catalog)
        statistics = collect_statistics(
            {name: database.table(name) for name in workload.catalog.relation_names}
        )
        order = database.table("Order")
        assert statistics.relation("Order").cardinality == order.cardinality
        assert statistics.relation("Order").blocks == order.num_blocks
