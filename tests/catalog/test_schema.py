"""Unit tests for relation schemas and the catalog."""

import pytest

from repro.catalog.datatypes import DataType
from repro.catalog.schema import Attribute, Catalog, RelationSchema
from repro.errors import (
    CatalogError,
    DuplicateRelationError,
    UnknownAttributeError,
    UnknownRelationError,
)


def make_schema():
    return RelationSchema(
        "Product",
        [
            Attribute("Pid", DataType.INTEGER),
            Attribute("name", DataType.STRING),
            Attribute("Did", DataType.INTEGER),
        ],
    )


class TestAttribute:
    def test_short_name_of_qualified(self):
        attribute = Attribute("Product.name", DataType.STRING)
        assert attribute.short_name == "name"

    def test_short_name_of_unqualified(self):
        assert Attribute("name", DataType.STRING).short_name == "name"

    def test_qualified(self):
        attribute = Attribute("name", DataType.STRING).qualified("Product")
        assert attribute.name == "Product.name"

    def test_qualified_is_idempotent_on_short_name(self):
        attribute = Attribute("Product.name", DataType.STRING).qualified("X")
        assert attribute.name == "X.name"


class TestRelationSchema:
    def test_rejects_empty_name(self):
        with pytest.raises(CatalogError):
            RelationSchema("", [Attribute("a", DataType.INTEGER)])

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(CatalogError):
            RelationSchema(
                "R",
                [Attribute("a", DataType.INTEGER), Attribute("a", DataType.STRING)],
            )

    def test_lookup_exact(self):
        schema = make_schema()
        assert schema.attribute("Pid").datatype is DataType.INTEGER

    def test_lookup_unknown_raises(self):
        with pytest.raises(UnknownAttributeError):
            make_schema().attribute("missing")

    def test_contains(self):
        schema = make_schema()
        assert "name" in schema
        assert "missing" not in schema

    def test_index_of(self):
        assert make_schema().index_of("name") == 1

    def test_project_preserves_order(self):
        projected = make_schema().project(["Did", "Pid"])
        assert projected.attribute_names == ("Did", "Pid")

    def test_qualify(self):
        schema = make_schema().qualify()
        assert schema.attribute_names == ("Product.Pid", "Product.name", "Product.Did")

    def test_qualified_short_lookup(self):
        schema = make_schema().qualify()
        assert schema.attribute("name").name == "Product.name"

    def test_join_disambiguates_clashing_names(self):
        left = make_schema()
        right = RelationSchema(
            "Division",
            [Attribute("Did", DataType.INTEGER), Attribute("name", DataType.STRING)],
        )
        joined = left.join(right)
        names = set(joined.attribute_names)
        # 'name' and 'Did' clash, so both sides get qualified.
        assert "Product.name" in names and "Division.name" in names
        assert "Product.Did" in names and "Division.Did" in names
        assert "Pid" in names  # unique names stay short

    def test_join_of_qualified_schemas_has_no_clashes(self):
        left = make_schema().qualify()
        right = RelationSchema(
            "Division",
            [Attribute("Did", DataType.INTEGER), Attribute("name", DataType.STRING)],
        ).qualify()
        joined = left.join(right)
        assert len(joined) == 5

    def test_ambiguous_short_lookup_raises(self):
        left = make_schema()
        right = RelationSchema(
            "Division",
            [Attribute("Did", DataType.INTEGER), Attribute("name", DataType.STRING)],
        )
        joined = left.join(right)
        with pytest.raises(UnknownAttributeError):
            joined.attribute("name")

    def test_equality_and_hash(self):
        assert make_schema() == make_schema()
        assert hash(make_schema()) == hash(make_schema())
        assert make_schema() != make_schema().rename("Other")

    def test_rename(self):
        assert make_schema().rename("P2").name == "P2"


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog([make_schema()])
        assert catalog.schema("Product").arity == 3

    def test_register_relation_helper(self):
        catalog = Catalog()
        schema = catalog.register_relation("R", [("a", DataType.INTEGER)])
        assert schema.name == "R"
        assert "R" in catalog

    def test_duplicate_rejected(self):
        catalog = Catalog([make_schema()])
        with pytest.raises(DuplicateRelationError):
            catalog.register(make_schema())

    def test_unknown_raises(self):
        with pytest.raises(UnknownRelationError):
            Catalog().schema("nope")

    def test_unregister(self):
        catalog = Catalog([make_schema()])
        catalog.unregister("Product")
        assert "Product" not in catalog
        with pytest.raises(UnknownRelationError):
            catalog.unregister("Product")

    def test_iteration_and_len(self):
        catalog = Catalog([make_schema()])
        assert len(catalog) == 1
        assert [s.name for s in catalog] == ["Product"]

    def test_resolve_attribute_qualified(self):
        catalog = Catalog([make_schema()])
        schema, attribute = catalog.resolve_attribute("Product.name")
        assert schema.name == "Product" and attribute.name == "name"

    def test_resolve_attribute_unqualified_unique(self):
        catalog = Catalog([make_schema()])
        schema, attribute = catalog.resolve_attribute("Pid")
        assert attribute.name == "Pid"

    def test_resolve_attribute_ambiguous(self):
        catalog = Catalog()
        catalog.register_relation("A", [("x", DataType.INTEGER)])
        catalog.register_relation("B", [("x", DataType.INTEGER)])
        with pytest.raises(UnknownAttributeError):
            catalog.resolve_attribute("x")
