"""Unit tests for the statistics catalog."""

import datetime

import pytest

from repro.catalog.statistics import (
    DEFAULT_RANGE_SELECTIVITY,
    ColumnStatistics,
    RelationStatistics,
    StatisticsCatalog,
    blocks_for,
)
from repro.errors import CatalogError, UnknownRelationError


class TestRelationStatistics:
    def test_blocking_factor(self):
        stats = RelationStatistics(30_000, 3_000)
        assert stats.blocking_factor == 10.0

    def test_empty_relation_blocking_factor(self):
        assert RelationStatistics(0, 0).blocking_factor == 1.0

    def test_negative_cardinality_rejected(self):
        with pytest.raises(CatalogError):
            RelationStatistics(-1, 1)

    def test_nonempty_needs_blocks(self):
        with pytest.raises(CatalogError):
            RelationStatistics(10, 0)

    def test_scaled_keeps_blocking_factor(self):
        stats = RelationStatistics(5_000, 500).scaled(0.02)
        assert stats.cardinality == 100
        assert stats.blocks == 10

    def test_scaled_never_zero_blocks_for_tiny_result(self):
        stats = RelationStatistics(100, 10).scaled(0.001)
        assert stats.cardinality == 1
        assert stats.blocks == 1

    def test_scaled_out_of_range(self):
        with pytest.raises(CatalogError):
            RelationStatistics(10, 1).scaled(1.5)


class TestBlocksFor:
    def test_zero_rows(self):
        assert blocks_for(0, 10) == 0

    def test_rounds_up(self):
        assert blocks_for(11, 10) == 2

    def test_minimum_one_block(self):
        assert blocks_for(1, 1000) == 1


class TestColumnStatistics:
    def test_equality_selectivity(self):
        assert ColumnStatistics(50).equality_selectivity() == pytest.approx(0.02)

    def test_positive_distinct_required(self):
        with pytest.raises(CatalogError):
            ColumnStatistics(0)

    def test_range_selectivity_interpolates(self):
        column = ColumnStatistics(200, minimum=1, maximum=200)
        assert column.range_selectivity(">", 100) == pytest.approx(0.5, abs=0.01)
        assert column.range_selectivity("<", 50) == pytest.approx(0.246, abs=0.01)

    def test_range_selectivity_clamps(self):
        column = ColumnStatistics(10, minimum=0, maximum=100)
        assert column.range_selectivity(">", 1_000) == 0.0
        assert column.range_selectivity("<=", -5) == 0.0

    def test_range_selectivity_on_dates(self):
        column = ColumnStatistics(
            366,
            minimum=datetime.date(1996, 1, 1),
            maximum=datetime.date(1996, 12, 31),
        )
        mid = column.range_selectivity(">", datetime.date(1996, 7, 1))
        assert 0.45 <= mid <= 0.55

    def test_range_without_bounds_uses_default(self):
        assert (
            ColumnStatistics(10).range_selectivity(">", 5)
            == DEFAULT_RANGE_SELECTIVITY
        )

    def test_range_with_non_numeric_bounds_uses_default(self):
        column = ColumnStatistics(10, minimum="a", maximum="z")
        assert column.range_selectivity(">", "m") == DEFAULT_RANGE_SELECTIVITY


class TestStatisticsCatalog:
    def test_set_relation_with_blocks(self):
        stats = StatisticsCatalog()
        stats.set_relation("R", 100, 10)
        assert stats.relation("R").blocks == 10

    def test_set_relation_derives_blocks(self):
        stats = StatisticsCatalog(default_blocking_factor=20)
        assert stats.set_relation("R", 100).blocks == 5

    def test_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            StatisticsCatalog().relation("nope")

    def test_has_relation(self):
        stats = StatisticsCatalog()
        stats.set_relation("R", 1)
        assert stats.has_relation("R")
        assert not stats.has_relation("S")

    def test_predicate_selectivity_roundtrip(self):
        stats = StatisticsCatalog()
        stats.set_predicate_selectivity("sig", 0.25)
        assert stats.predicate_selectivity("sig") == 0.25
        assert stats.predicate_selectivity("other") is None

    def test_predicate_selectivity_validated(self):
        with pytest.raises(CatalogError):
            StatisticsCatalog().set_predicate_selectivity("sig", 1.5)

    def test_join_selectivity_is_unordered(self):
        stats = StatisticsCatalog()
        stats.set_join_selectivity("A.x", "B.y", 0.001)
        assert stats.join_selectivity("B.y", "A.x") == 0.001

    def test_default_join_selectivity_from_columns(self):
        stats = StatisticsCatalog()
        stats.set_column("A.x", 100)
        stats.set_column("B.y", 400)
        assert stats.default_join_selectivity("A.x", "B.y") == pytest.approx(1 / 400)

    def test_default_join_selectivity_missing_columns(self):
        assert StatisticsCatalog().default_join_selectivity("A.x", "B.y") is None

    def test_invalid_blocking_factor(self):
        with pytest.raises(CatalogError):
            StatisticsCatalog(default_blocking_factor=0)
