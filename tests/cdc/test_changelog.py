"""Unit tests for the per-relation change logs and capture plumbing."""

import pytest

from repro.cdc import (
    ChangeLog,
    ChangeLogSet,
    ChangeRecord,
    DELETE,
    INSERT,
    UPDATE,
)
from repro.errors import StreamingError, WorkloadWarning


def record(relation="R", lsn=1, seq=1, op=INSERT, row=None, old_row=None):
    if op in (INSERT, UPDATE) and row is None:
        row = {"a": lsn}
    if op in (DELETE, UPDATE) and old_row is None:
        old_row = {"a": lsn}
    return ChangeRecord(
        relation=relation, lsn=lsn, seq=seq, op=op, row=row, old_row=old_row
    )


class TestChangeRecord:
    def test_rejects_unknown_op(self):
        with pytest.raises(StreamingError):
            ChangeRecord(relation="R", lsn=1, seq=1, op="truncate")

    def test_insert_needs_row(self):
        with pytest.raises(StreamingError):
            ChangeRecord(relation="R", lsn=1, seq=1, op=INSERT)

    def test_delete_needs_old_row(self):
        with pytest.raises(StreamingError):
            ChangeRecord(relation="R", lsn=1, seq=1, op=DELETE)

    def test_update_needs_both(self):
        with pytest.raises(StreamingError):
            ChangeRecord(relation="R", lsn=1, seq=1, op=UPDATE, row={"a": 1})

    def test_to_dict_round_trips_rows(self):
        rec = record(op=UPDATE, row={"a": 2}, old_row={"a": 1})
        document = rec.to_dict()
        assert document["op"] == UPDATE
        assert document["row"] == {"a": 2}
        assert document["old_row"] == {"a": 1}


class TestChangeLogRetention:
    def test_append_and_lookup(self):
        log = ChangeLog("R", capacity=10)
        for i in range(1, 4):
            log.append(record(lsn=i, seq=i))
        assert len(log) == 3
        assert log.last_lsn == 3
        assert [r.seq for r in log.records_after(1)] == [2, 3]

    def test_rejects_foreign_relation(self):
        log = ChangeLog("R")
        with pytest.raises(StreamingError):
            log.append(record(relation="S"))

    def test_retention_evicts_and_warns_once(self):
        log = ChangeLog("R", capacity=2)
        log.append(record(lsn=1, seq=1))
        log.append(record(lsn=2, seq=2))
        with pytest.warns(WorkloadWarning, match="retention pressure"):
            log.append(record(lsn=3, seq=3))
        # Subsequent drops in the same pressure episode stay silent.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            log.append(record(lsn=4, seq=4))
        assert log.dropped == 2
        assert log.min_retained_seq == 3

    def test_gap_after_eviction(self):
        import warnings

        log = ChangeLog("R", capacity=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for i in range(1, 5):
                log.append(record(lsn=i, seq=i))
        # A consumer at seq 1 lost records; one at seq 2 has not.
        assert log.has_gap(1)
        assert not log.has_gap(2)
        assert not log.has_gap(4)

    def test_snapshot_barrier_clears_and_gaps(self):
        log = ChangeLog("R", capacity=10)
        log.append(record(lsn=1, seq=1))
        log.snapshot_barrier(5)
        assert len(log) == 0
        assert log.barrier_seq == 5
        assert log.has_gap(4)
        assert not log.has_gap(5)
        # LSNs keep counting after a snapshot.
        log.append(record(lsn=2, seq=6))
        assert log.last_lsn == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(StreamingError):
            ChangeLog("R", capacity=0)


class TestChangeLogSet:
    def test_record_assigns_global_seq_and_per_relation_lsn(self):
        changes = ChangeLogSet()
        changes.capture("R")
        changes.capture("S")
        r1 = changes.record("R", INSERT, row={"a": 1})
        s1 = changes.record("S", INSERT, row={"b": 1})
        r2 = changes.record("R", DELETE, old_row={"a": 1})
        assert (r1.seq, s1.seq, r2.seq) == (1, 2, 3)
        assert (r1.lsn, s1.lsn, r2.lsn) == (1, 1, 2)
        assert changes.head_seq == 3

    def test_uncaptured_relation_raises(self):
        changes = ChangeLogSet()
        with pytest.raises(StreamingError):
            changes.log("missing")

    def test_pending_after_counts_by_relation(self):
        changes = ChangeLogSet()
        changes.capture("R")
        changes.capture("S")
        changes.record("R", INSERT, row={"a": 1})
        changes.record("S", INSERT, row={"b": 1})
        assert changes.pending_after(0) == 2
        assert changes.pending_after(0, relations=("R",)) == 1
        assert changes.pending_after(2) == 0


class TestWriteHookCapture:
    def _database(self):
        from repro.catalog.schema import Attribute, DataType, RelationSchema
        from repro.executor.engine import Database
        from repro.storage.table import Table

        schema = RelationSchema("R", [Attribute("a", DataType.INTEGER)])
        database = Database()
        database.register("R", Table(schema.qualify(), 10))
        return database

    def test_insert_emits_insert_record(self):
        database = self._database()
        changes = ChangeLogSet()
        changes.capture("R")
        changes.attach(database)
        database.table("R").insert({"R.a": 1})
        log = changes.log("R")
        assert len(log) == 1
        assert log.records_after(0)[0].op == INSERT

    def test_delete_emits_delete_record(self):
        database = self._database()
        changes = ChangeLogSet()
        changes.capture("R")
        changes.attach(database)
        table = database.table("R")
        table.insert({"R.a": 1})
        table.delete_many([{"R.a": 1}])
        ops = [r.op for r in changes.log("R").records_after(0)]
        assert ops == [INSERT, DELETE]

    def test_reregister_records_snapshot_barrier_and_rehooks(self):
        from repro.storage.table import Table

        database = self._database()
        changes = ChangeLogSet()
        changes.capture("R")
        changes.attach(database)
        database.table("R").insert({"R.a": 1})
        old = database.table("R")
        fresh = Table(old.schema, old.blocking_factor)
        database.register("R", fresh)
        log = changes.log("R")
        assert log.barrier_seq > 0
        assert len(log) == 0
        # Writes to the replacement table are captured again.
        fresh.insert({"R.a": 2})
        assert len(log) == 1

    def test_suspend_silences_capture(self):
        database = self._database()
        changes = ChangeLogSet()
        changes.capture("R")
        changes.attach(database)
        with changes.suspend("R"):
            database.table("R").insert({"R.a": 1})
        assert len(changes.log("R")) == 0

    def test_detach_removes_hooks(self):
        database = self._database()
        changes = ChangeLogSet()
        changes.capture("R")
        changes.attach(database)
        changes.detach()
        database.table("R").insert({"R.a": 1})
        assert len(changes.log("R")) == 0
        assert database.change_capture is None
