"""The streaming-maintenance correctness property.

For a random interleaving of stream inserts, stream deletes and drains
over the paper's Table-2 workload, draining the change logs must leave
every materialized view bit-identical to a full recomputation of its
plan — under both the vectorized and the reference engine, and with
identical contents across the two (the drain path goes through the
shared overlay evaluation, so engine choice must not leak into stored
rows)."""

import datetime

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cdc import StreamingPolicy
from repro.mvpp.config import DesignConfig
from repro.warehouse import DataWarehouse
from repro.workload import paper_workload
from repro.workload.datagen import paper_rows

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ENGINES = ("vectorized", "reference")

ROW_MAKERS = {
    "Order": lambda salt: {
        "Pid": salt % 300,
        "Cid": salt % 200,
        "quantity": salt % 200 + 1,
        "date": datetime.date(1996, 10, 1 + salt % 28),
    },
    "Customer": lambda salt: {
        "Cid": salt % 200,
        "name": f"C{salt}",
        "city": f"City{salt % 20}",
    },
}

OPS = st.lists(
    st.tuples(
        st.sampled_from(sorted(ROW_MAKERS)),
        st.sampled_from(["insert", "insert", "delete", "drain"]),
        st.integers(min_value=0, max_value=10**6),
    ),
    min_size=1,
    max_size=12,
)

POLICIES = st.sampled_from(
    [
        StreamingPolicy(max_lag_records=10_000, coalesce_records=64),
        StreamingPolicy(max_lag_records=10_000, coalesce_records=1),
        StreamingPolicy(max_lag_records=2, coalesce_records=8),
    ]
)


def _multiset(rows):
    return sorted(tuple(sorted(row.items())) for row in rows)


def _build(engine):
    warehouse = DataWarehouse.from_workload(paper_workload(), engine=engine)
    warehouse.design(DesignConfig(seed=0))
    for relation, rows in sorted(paper_rows(scale=0.005, seed=23).items()):
        warehouse.load(relation, rows)
    warehouse.materialize()
    return warehouse


def _replay(engine, ops, policy):
    """Run one trajectory; return {view: multiset} of final contents."""
    warehouse = _build(engine)
    warehouse.enable_streaming(policy)
    for relation, action, salt in ops:
        if action == "drain":
            warehouse.drain_changes()
        elif action == "insert":
            warehouse.apply_update(
                relation, [ROW_MAKERS[relation](salt)], policy="stream"
            )
        else:
            table = warehouse.database.table(relation)
            if table.cardinality == 0:
                continue
            victim = table.rows()[salt % table.cardinality]
            warehouse.apply_delete(relation, [victim], policy="stream")
    warehouse.drain_changes()
    assert warehouse.stale_views() == []
    assert warehouse.streaming.max_lag() == 0

    contents = {}
    for view in warehouse.views:
        stored = _multiset(warehouse.database.table(view.name).rows())
        recomputed = _multiset(warehouse.engine.execute(view.plan).rows())
        assert stored == recomputed, (
            f"{engine}: view {view.name} diverged from full recompute"
        )
        contents[view.name] = stored
    return contents


@SETTINGS
@given(ops=OPS, policy=POLICIES)
def test_streaming_equals_recompute_on_both_engines(ops, policy):
    results = {engine: _replay(engine, ops, policy) for engine in ENGINES}
    assert results["vectorized"] == results["reference"], (
        "engines disagree on streamed view contents"
    )
