"""Unit tests for the delta propagation graph and propagator."""

import datetime

import pytest

from repro.algebra.expressions import column, compare
from repro.algebra.operators import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
    Join,
    Project,
    Relation,
    Select,
)
from repro.cdc import (
    MODE_DELTA,
    MODE_RECOMPUTE,
    DeltaPropagator,
    PropagationGraph,
)
from repro.cdc.propagation import substitute_subtree
from repro.errors import StreamingError
from repro.executor.engine import Database, ExecutionEngine
from repro.storage.table import Table
from repro.warehouse.view import MaterializedView


@pytest.fixture()
def order_leaf(workload):
    return Relation("Order", workload.catalog.schema("Order").qualify())


@pytest.fixture()
def customer_leaf(workload):
    return Relation("Customer", workload.catalog.schema("Customer").qualify())


def _order_row(pid=1, cid=1, quantity=150):
    return {
        "Pid": pid,
        "Cid": cid,
        "quantity": quantity,
        "date": datetime.date(1996, 10, 1),
    }


class TestEdgeClassification:
    def test_spj_single_reference_is_delta(self, order_leaf):
        view = MaterializedView(
            name="v_spj",
            plan=Select(order_leaf, compare("Order.quantity", ">", 50)),
        )
        graph = PropagationGraph([view])
        rule = graph.rule("v_spj", "Order")
        assert rule.mode == MODE_DELTA
        assert not rule.distinct

    def test_aggregate_forces_recompute(self, order_leaf):
        view = MaterializedView(
            name="v_agg",
            plan=Aggregate(
                order_leaf,
                ["Order.Cid"],
                [AggregateSpec(AggregateFunction.COUNT, None, "n")],
            ),
        )
        graph = PropagationGraph([view])
        rule = graph.rule("v_agg", "Order")
        assert rule.mode == MODE_RECOMPUTE
        assert rule.reason == "aggregate"

    def test_self_join_forces_recompute(self, order_leaf):
        view = MaterializedView(
            name="v_self",
            plan=Join(
                Project(order_leaf, ["Order.Pid"]),
                Project(order_leaf, ["Order.Cid"]),
            ),
        )
        graph = PropagationGraph([view])
        rule = graph.rule("v_self", "Order")
        assert rule.mode == MODE_RECOMPUTE
        assert rule.reason == "self-join"

    def test_distinct_projection_flags_edge(self, order_leaf):
        view = MaterializedView(
            name="v_distinct",
            plan=Project(order_leaf, ["Order.Pid"], distinct=True),
        )
        graph = PropagationGraph([view])
        rule = graph.rule("v_distinct", "Order")
        assert rule.mode == MODE_DELTA
        assert rule.distinct

    def test_affected_views_sorted(self, order_leaf, customer_leaf):
        views = [
            MaterializedView(
                name="v_b",
                plan=Select(order_leaf, compare("Order.quantity", ">", 50)),
            ),
            MaterializedView(name="v_a", plan=order_leaf),
            MaterializedView(name="v_c", plan=customer_leaf),
        ]
        graph = PropagationGraph(views)
        assert graph.affected_views("Order") == ("v_a", "v_b")
        assert graph.affected_views("Customer") == ("v_c",)
        assert graph.affected_views("Part") == ()


class TestSharedSubplans:
    def _views(self, order_leaf, customer_leaf):
        hot = Select(order_leaf, compare("Order.quantity", ">", 100))
        narrow = MaterializedView(
            name="v_narrow", plan=Project(hot, ["Order.Pid"])
        )
        joined = MaterializedView(
            name="v_joined",
            plan=Join(
                hot,
                customer_leaf,
                compare("Order.Cid", "=", column("Customer.Cid")),
            ),
        )
        return hot, narrow, joined

    def test_common_subplan_detected(self, order_leaf, customer_leaf):
        hot, narrow, joined = self._views(order_leaf, customer_leaf)
        graph = PropagationGraph([narrow, joined])
        shared = graph.shared_for("Order")
        assert len(shared) == 1
        assert shared[0].name.startswith("__cdc_shared")
        assert shared[0].signature == hot.signature
        assert shared[0].views == ("v_joined", "v_narrow")
        assert graph.cut_signature("v_narrow", "Order") == hot.signature
        assert graph.cut_signature("v_joined", "Order") == hot.signature

    def test_no_sharing_for_single_view(self, order_leaf, customer_leaf):
        hot, narrow, _ = self._views(order_leaf, customer_leaf)
        graph = PropagationGraph([narrow])
        assert graph.shared_for("Order") == ()
        assert graph.cut_signature("v_narrow", "Order") is None


class TestSubstituteSubtree:
    def test_replaces_matching_subtree(self, order_leaf):
        hot = Select(order_leaf, compare("Order.quantity", ">", 100))
        plan = Project(hot, ["Order.Pid"])
        stand_in = Relation("__delta", hot.schema)
        rewritten = substitute_subtree(plan, hot.signature, stand_in)
        assert isinstance(rewritten.child, Relation)
        assert rewritten.child.name == "__delta"

    def test_untouched_plan_returned_by_identity(self, order_leaf):
        plan = Project(order_leaf, ["Order.Pid"])
        out = substitute_subtree(plan, "no-such-signature", order_leaf)
        assert out is plan


class TestDeltaPropagator:
    def _database(self, workload):
        database = Database()
        for name in ("Order", "Customer"):
            schema = workload.catalog.schema(name).qualify()
            database.register(name, Table(schema, 10))
        database.table("Order").insert_many(
            [_order_row(pid=1, cid=1), _order_row(pid=2, cid=2, quantity=10)]
        )
        database.table("Customer").insert_many(
            [
                {"Cid": 1, "name": "Ada", "city": "NY"},
                {"Cid": 2, "name": "Bob", "city": "LA"},
            ]
        )
        return database

    def test_shared_delta_used_once_for_both_views(
        self, workload, order_leaf, customer_leaf
    ):
        hot = Select(order_leaf, compare("Order.quantity", ">", 100))
        views = [
            MaterializedView(name="v_narrow", plan=Project(hot, ["Order.Pid"])),
            MaterializedView(
                name="v_joined",
                plan=Join(
                    hot,
                    customer_leaf,
                    compare("Order.Cid", "=", column("Customer.Cid")),
                ),
            ),
        ]
        graph = PropagationGraph(views)
        database = self._database(workload)
        propagator = DeltaPropagator(graph, database, ExecutionEngine(database))

        inserts = [_order_row(pid=7, cid=1, quantity=180)]
        deltas = propagator.propagate(
            "Order", inserts, [], ["v_narrow", "v_joined"]
        )
        assert deltas["v_narrow"].insert_rows == [{"Order.Pid": 7}]
        joined = deltas["v_joined"].insert_rows
        assert len(joined) == 1
        assert joined[0]["Customer.name"] == "Ada"
        # Both views consumed the same transient shared-delta table.
        assert deltas["v_narrow"].shared_used == deltas["v_joined"].shared_used
        assert len(deltas["v_narrow"].shared_used) == 1

    def test_filtered_out_insert_yields_empty_delta(
        self, workload, order_leaf
    ):
        view = MaterializedView(
            name="v_hot",
            plan=Select(order_leaf, compare("Order.quantity", ">", 100)),
        )
        graph = PropagationGraph([view])
        database = self._database(workload)
        propagator = DeltaPropagator(graph, database, ExecutionEngine(database))
        deltas = propagator.propagate(
            "Order", [_order_row(quantity=5)], [], ["v_hot"]
        )
        assert deltas["v_hot"].is_empty

    def test_delete_direction_produces_delete_rows(self, workload, order_leaf):
        view = MaterializedView(
            name="v_hot",
            plan=Select(order_leaf, compare("Order.quantity", ">", 100)),
        )
        graph = PropagationGraph([view])
        database = self._database(workload)
        propagator = DeltaPropagator(graph, database, ExecutionEngine(database))
        deltas = propagator.propagate(
            "Order", [], [_order_row(pid=1, cid=1)], ["v_hot"]
        )
        assert not deltas["v_hot"].insert_rows
        assert len(deltas["v_hot"].delete_rows) == 1

    def test_recompute_view_rejected(self, workload, order_leaf):
        view = MaterializedView(
            name="v_agg",
            plan=Aggregate(
                order_leaf,
                ["Order.Cid"],
                [AggregateSpec(AggregateFunction.COUNT, None, "n")],
            ),
        )
        graph = PropagationGraph([view])
        database = self._database(workload)
        propagator = DeltaPropagator(graph, database, ExecutionEngine(database))
        with pytest.raises(StreamingError):
            propagator.propagate("Order", [_order_row()], [], ["v_agg"])


class TestPaperDesignGraph:
    def test_installed_design_compiles_with_delta_edges(self):
        from repro.warehouse import DataWarehouse
        from repro.workload import paper_workload

        warehouse = DataWarehouse.from_workload(paper_workload())
        warehouse.design()
        graph = PropagationGraph(warehouse.views)
        assert graph.relations  # at least one captured base relation
        modes = {
            graph.rule(view.name, relation).mode
            for view in warehouse.views
            for relation in sorted(view.base_relations)
        }
        # The paper's Table-2 design is SPJ-only: every edge streams.
        assert modes == {MODE_DELTA}
