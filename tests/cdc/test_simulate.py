"""Smoke tests for the seeded streaming simulation (the `repro stream`
backend): convergence, zero violations, and per-seed determinism."""

import pytest

from repro.cdc import StreamingPolicy, simulate_streaming
from repro.errors import StreamingError


class TestFaultFree:
    def test_converges_without_violations(self):
        result = simulate_streaming(seed=7, rounds=2, scale=0.02)
        assert result.ok
        assert result.converged
        assert result.consistency_violations == 0
        assert result.partial_writes == 0
        assert result.faults_injected == {}
        assert result.records_appended > 0
        assert result.drains >= result.rounds
        assert result.queries_run > 0

    def test_deterministic_per_seed(self):
        first = simulate_streaming(seed=7, rounds=2, scale=0.02)
        second = simulate_streaming(seed=7, rounds=2, scale=0.02)
        assert first.digest == second.digest
        assert first.to_dict() == second.to_dict()

    def test_seed_changes_digest(self):
        a = simulate_streaming(seed=7, rounds=2, scale=0.02)
        b = simulate_streaming(seed=8, rounds=2, scale=0.02)
        assert a.digest != b.digest

    def test_tight_retention_drops_records(self):
        policy = StreamingPolicy(retention=2, max_lag_records=2)
        with pytest.warns(Warning):
            result = simulate_streaming(
                seed=7, rounds=2, scale=0.02, policy=policy
            )
        assert result.records_dropped > 0
        assert result.ok  # dropped history degrades to recompute, not loss


class TestFaulted:
    def test_converges_under_faults(self):
        result = simulate_streaming(
            failure_rate=0.3, seed=7, rounds=2, scale=0.02
        )
        assert result.ok
        assert result.converged
        assert result.consistency_violations == 0
        assert result.partial_writes == 0
        assert sum(result.faults_injected.values()) > 0

    def test_faulted_run_deterministic(self):
        first = simulate_streaming(
            failure_rate=0.3, seed=7, rounds=2, scale=0.02
        )
        second = simulate_streaming(
            failure_rate=0.3, seed=7, rounds=2, scale=0.02
        )
        assert first.digest == second.digest


class TestValidation:
    def test_rejects_bad_failure_rate(self):
        with pytest.raises(StreamingError):
            simulate_streaming(failure_rate=1.5)

    def test_rejects_bad_rounds(self):
        with pytest.raises(StreamingError):
            simulate_streaming(rounds=0)

    def test_to_dict_sections(self):
        document = simulate_streaming(seed=7, rounds=2, scale=0.02).to_dict()
        assert document["ok"] is True
        for section in ("changes", "drains", "staleness", "queries"):
            assert section in document, section
