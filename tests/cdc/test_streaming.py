"""Warehouse-level streaming maintenance: ingest, drain, backpressure,
bounded staleness, schema validation and fault degradation."""

import datetime

import pytest

from repro.cdc import StreamingPolicy
from repro.cdc.changelog import ChangeRecord, DELETE, INSERT, UPDATE
from repro.cdc.streaming import _coalesce
from repro.errors import DeltaSchemaError, WarehouseError
from repro.mvpp.config import DesignConfig
from repro.resilience.config import ResilienceConfig
from repro.resilience.faults import FaultPolicy
from repro.warehouse import DataWarehouse
from repro.workload import paper_workload
from repro.workload.datagen import paper_rows

NEW_ORDER = {
    "Pid": 1,
    "Cid": 2,
    "quantity": 199,
    "date": datetime.date(1996, 10, 1),
}

#: High bounds: nothing drains unless the test asks for it.
LAZY = StreamingPolicy(max_lag_records=10_000, max_lag_ticks=float("inf"))


def _multiset(rows):
    return sorted(tuple(sorted(row.items())) for row in rows)


def _assert_consistent(warehouse):
    """Every stored view equals a from-scratch evaluation of its plan."""
    for view in warehouse.views:
        stored = warehouse.database.table(view.name).rows()
        expected = warehouse.engine.execute(view.plan).rows()
        assert _multiset(stored) == _multiset(expected), view.name


@pytest.fixture()
def warehouse():
    wh = DataWarehouse.from_workload(paper_workload())
    wh.design(DesignConfig(seed=0))
    for relation, rows in sorted(paper_rows(scale=0.02, seed=23).items()):
        wh.load(relation, rows)
    wh.materialize()
    return wh


class TestEnableStreaming:
    def test_captures_every_base_dependency(self, warehouse):
        streaming = warehouse.enable_streaming(LAZY)
        needed = {
            relation
            for view in warehouse.views
            for relation in view.base_relations
        }
        assert needed <= set(streaming.changes.relations)
        assert streaming.max_lag() == 0
        assert warehouse.stale_views() == []

    def test_stream_policy_requires_enable(self, warehouse):
        with pytest.raises(WarehouseError):
            warehouse.apply_update("Order", [NEW_ORDER], policy="stream")

    def test_enable_is_idempotent_without_policy(self, warehouse):
        first = warehouse.enable_streaming(LAZY)
        assert warehouse.enable_streaming() is first
        second = warehouse.enable_streaming(LAZY)
        assert second is not first

    def test_disable_removes_capture(self, warehouse):
        streaming = warehouse.enable_streaming(LAZY)
        warehouse.disable_streaming()
        assert warehouse.streaming is None
        assert warehouse.database.change_capture is None
        warehouse.apply_update("Order", [NEW_ORDER])  # plain recompute path
        assert len(streaming.changes.log("Order")) == 0


class TestIngestAndDrain:
    def test_ingest_queues_without_draining(self, warehouse):
        streaming = warehouse.enable_streaming(LAZY)
        warehouse.apply_update("Order", [NEW_ORDER], policy="stream")
        assert streaming.drains == 0
        assert streaming.max_lag() >= 1
        assert warehouse.stale_views()  # affected views lag behind

    def test_drain_catches_up_and_matches_recompute(self, warehouse):
        streaming = warehouse.enable_streaming(LAZY)
        warehouse.apply_update("Order", [NEW_ORDER], policy="stream")
        report = warehouse.drain_changes()
        assert report.converged
        assert report.records >= 1
        assert streaming.max_lag() == 0
        assert warehouse.stale_views() == []
        _assert_consistent(warehouse)

    def test_watermarks_advance_to_head(self, warehouse):
        streaming = warehouse.enable_streaming(LAZY)
        warehouse.apply_update("Order", [NEW_ORDER], policy="stream")
        warehouse.apply_update(
            "Part",
            [{"Tid": 10**6, "name": "P", "Pid": 0, "supplier": "S"}],
            policy="stream",
        )
        warehouse.drain_changes()
        head = streaming.changes.head_seq
        for view in warehouse.views:
            assert streaming.watermark(view.name) == head

    def test_delete_streams_too(self, warehouse):
        streaming = warehouse.enable_streaming(LAZY)
        victim = warehouse.database.table("Order").rows()[0]
        warehouse.apply_delete("Order", [victim], policy="stream")
        assert streaming.max_lag() >= 1
        report = warehouse.drain_changes()
        assert report.converged
        _assert_consistent(warehouse)

    def test_insert_delete_pair_cancels_exactly(self, warehouse):
        streaming = warehouse.enable_streaming(LAZY)
        before = {
            view.name: _multiset(warehouse.database.table(view.name).rows())
            for view in warehouse.views
        }
        warehouse.apply_update("Order", [NEW_ORDER], policy="stream")
        warehouse.apply_delete("Order", [NEW_ORDER], policy="stream")
        report = warehouse.drain_changes()
        assert report.coalesced == 2  # the pair vanished before evaluation
        assert report.converged
        for view in warehouse.views:
            stored = _multiset(warehouse.database.table(view.name).rows())
            assert stored == before[view.name], view.name
        _assert_consistent(warehouse)

    def test_reload_forces_recompute_via_snapshot_barrier(self, warehouse):
        warehouse.enable_streaming(LAZY)
        warehouse.apply_update("Order", [NEW_ORDER], policy="stream")
        # A full reload supersedes the log: retained history no longer
        # describes the stored rows, so affected views must recompute.
        warehouse.load("Order", warehouse.database.table("Order").rows())
        report = warehouse.drain_changes()
        assert report.converged
        affected = {
            view.name
            for view in warehouse.views
            if view.depends_on("Order")
        }
        assert affected <= set(report.views_recomputed)
        _assert_consistent(warehouse)


class TestBackpressure:
    def test_lag_bound_forces_drain_on_ingest(self, warehouse):
        streaming = warehouse.enable_streaming(
            StreamingPolicy(max_lag_records=2, max_lag_ticks=float("inf"))
        )
        for quantity in (110, 120, 130, 140):
            warehouse.apply_update(
                "Order", [dict(NEW_ORDER, quantity=quantity)], policy="stream"
            )
        assert streaming.drains >= 1
        assert streaming.max_lag() <= 2
        warehouse.drain_changes()  # absorb the still-queued tail
        _assert_consistent(warehouse)


class TestBoundedStalenessServe:
    def test_serve_forces_catchup_past_bound(self, warehouse):
        streaming = warehouse.enable_streaming(LAZY)
        warehouse.apply_update("Order", [NEW_ORDER], policy="stream")
        assert streaming.max_lag() >= 1
        result = warehouse.serve("Q1", max_staleness=0)
        assert streaming.max_lag() == 0
        assert result.max_staleness == 0

    def test_serve_within_bound_skips_drain(self, warehouse):
        streaming = warehouse.enable_streaming(LAZY)
        warehouse.apply_update("Order", [NEW_ORDER], policy="stream")
        lag = streaming.max_lag()
        warehouse.serve("Q1", max_staleness=10_000)
        assert streaming.max_lag() == lag  # still queued
        assert streaming.drains == 0

    def test_max_staleness_requires_streaming(self, warehouse):
        with pytest.raises(WarehouseError):
            warehouse.serve("Q1", max_staleness=0)


class TestDeltaValidation:
    def test_unknown_column_named_in_error(self, warehouse):
        warehouse.enable_streaming(LAZY)
        bad = dict(NEW_ORDER)
        bad["quantty"] = bad.pop("quantity")
        with pytest.raises(DeltaSchemaError) as excinfo:
            warehouse.apply_update("Order", [bad], policy="stream")
        message = str(excinfo.value)
        assert "quantty" in message
        assert "quantity" in message  # reported as missing too

    def test_missing_column_named_in_error(self, warehouse):
        bad = {k: v for k, v in NEW_ORDER.items() if k != "date"}
        with pytest.raises(DeltaSchemaError) as excinfo:
            warehouse.apply_update("Order", [bad])
        assert "date" in str(excinfo.value)

    def test_rejected_rows_leave_no_trace(self, warehouse):
        streaming = warehouse.enable_streaming(LAZY)
        cardinality = warehouse.database.table("Order").cardinality
        with pytest.raises(DeltaSchemaError):
            warehouse.apply_update(
                "Order", [{"bogus": 1}], policy="stream"
            )
        assert warehouse.database.table("Order").cardinality == cardinality
        assert len(streaming.changes.log("Order")) == 0


class TestCoalesce:
    def _record(self, op, row=None, old_row=None, seq=1):
        return ChangeRecord(
            relation="R", lsn=seq, seq=seq, op=op, row=row, old_row=old_row
        )

    def test_update_expands_to_delete_plus_insert(self):
        records = [
            self._record(
                UPDATE, row={"a": 2}, old_row={"a": 1}, seq=1
            )
        ]
        inserts, deletes, cancelled = _coalesce(records)
        assert inserts == [{"a": 2}]
        assert deletes == [{"a": 1}]
        assert cancelled == 0

    def test_multiset_counts_preserved(self):
        records = [
            self._record(INSERT, row={"a": 1}, seq=1),
            self._record(INSERT, row={"a": 1}, seq=2),
            self._record(DELETE, old_row={"a": 1}, seq=3),
        ]
        inserts, deletes, cancelled = _coalesce(records)
        assert inserts == [{"a": 1}]
        assert deletes == []
        assert cancelled == 2


class TestFaultDegradation:
    def test_drain_degrades_and_converges_under_faults(self, warehouse):
        warehouse.attach_faults(FaultPolicy(storage_failure_rate=0.4, seed=3))
        warehouse.scheduler(ResilienceConfig(seed=3))
        streaming = warehouse.enable_streaming(LAZY)
        for quantity in (110, 120, 130):
            warehouse.apply_update(
                "Order", [dict(NEW_ORDER, quantity=quantity)], policy="stream"
            )
        report = warehouse.drain_changes()
        if not report.converged:
            warehouse.scheduler().refresh_until_converged()
        assert not warehouse.stale_views()
        assert streaming.max_lag() == 0
        # No partial writes: committed swaps match stored cardinalities.
        for view in warehouse.views:
            committed = warehouse.committed_cardinality(view.name)
            stored = warehouse.database.table(view.name).cardinality
            assert committed == stored, view.name
        warehouse.detach_faults()
        _assert_consistent(warehouse)
