"""Shared fixtures: the paper's workload, estimators, and small MVPPs."""

from __future__ import annotations

import pytest

from repro.mvpp import MVPPCostCalculator, generate_mvpps
from repro.optimizer import CardinalityEstimator, NestedLoopCostModel
from repro.workload import (
    GeneratorConfig,
    generate_workload,
    paper_workload,
    paper_workload_fig7,
)


@pytest.fixture(scope="session")
def workload():
    """The paper's Section-2 workload (Table 1 + Q1..Q4)."""
    return paper_workload()


@pytest.fixture(scope="session")
def fig7_workload():
    """The Figure 5/7/8 variant with diverging Division selections."""
    return paper_workload_fig7()


@pytest.fixture(scope="session")
def estimator(workload):
    return CardinalityEstimator(workload.statistics)


@pytest.fixture(scope="session")
def cost_model():
    return NestedLoopCostModel()


@pytest.fixture(scope="session")
def paper_mvpps(workload):
    """All four generated MVPPs for the paper workload."""
    return generate_mvpps(workload)


@pytest.fixture(scope="session")
def paper_mvpp(paper_mvpps):
    """The paper-seeded MVPP (first rotation: Q4's plan first)."""
    return paper_mvpps[0]


@pytest.fixture()
def paper_calculator(paper_mvpp):
    return MVPPCostCalculator(paper_mvpp)


@pytest.fixture(scope="session")
def small_synthetic():
    """A small synthetic workload usable with the exhaustive optimum."""
    config = GeneratorConfig(
        num_relations=4,
        num_queries=3,
        max_query_relations=3,
        min_cardinality=1_000,
        max_cardinality=20_000,
        seed=1,
    )
    return generate_workload(config)
