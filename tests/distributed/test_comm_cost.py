"""Unit tests for site-aware MVPP costing."""

import pytest

from repro.distributed.comm_cost import DistributedCostCalculator
from repro.distributed.sites import Topology
from repro.errors import DistributedError
from repro.mvpp.cost import MVPPCostCalculator
from repro.mvpp.materialization import select_views


@pytest.fixture()
def setup(paper_mvpp):
    topology = Topology(["wh", "s1", "s2"], default_link_cost=2.0)
    placement = {
        "Product": "s1",
        "Division": "s1",
        "Order": "s2",
        "Customer": "s2",
        "Part": "s1",
    }
    calculator = DistributedCostCalculator(
        paper_mvpp, topology, placement, warehouse_site="wh"
    )
    return topology, placement, calculator


class TestValidation:
    def test_missing_placement_rejected(self, paper_mvpp):
        topology = Topology(["wh", "s1"])
        with pytest.raises(DistributedError):
            DistributedCostCalculator(
                paper_mvpp, topology, {"Product": "s1"}, warehouse_site="wh"
            )

    def test_unknown_site_rejected(self, paper_mvpp):
        topology = Topology(["wh"])
        placement = {
            leaf.name: "nowhere" for leaf in paper_mvpp.leaves
        }
        with pytest.raises(DistributedError):
            DistributedCostCalculator(
                paper_mvpp, topology, placement, warehouse_site="wh"
            )

    def test_unknown_warehouse_rejected(self, paper_mvpp):
        topology = Topology(["s1"])
        placement = {leaf.name: "s1" for leaf in paper_mvpp.leaves}
        with pytest.raises(DistributedError):
            DistributedCostCalculator(
                paper_mvpp, topology, placement, warehouse_site="wh"
            )


class TestCosting:
    def test_virtual_queries_pay_transfer(self, paper_mvpp, setup):
        _, _, distributed = setup
        centralized = MVPPCostCalculator(paper_mvpp)
        assert (
            distributed.query_processing_cost(frozenset())
            > centralized.query_processing_cost(frozenset())
        )

    def test_leaf_transfer_cost(self, paper_mvpp, setup):
        _, _, calculator = setup
        product = paper_mvpp.vertex_by_name("Product")
        assert calculator.leaf_transfer_cost(product) == 2.0 * 3_000

    def test_materialized_views_read_locally(self, paper_mvpp, setup):
        _, _, calculator = setup
        vertex = paper_mvpp.operations[0]
        cost = calculator.access_cost(vertex, frozenset({vertex.vertex_id}))
        assert cost == vertex.stats.blocks  # no transfer term

    def test_maintenance_includes_lineage_transfer(self, paper_mvpp, setup):
        _, _, distributed = setup
        centralized = MVPPCostCalculator(paper_mvpp)
        vertex = paper_mvpp.operations[0]
        assert distributed.maintenance_cost(
            frozenset({vertex.vertex_id})
        ) > centralized.maintenance_cost(frozenset({vertex.vertex_id}))

    def test_weight_grows_with_transfer(self, paper_mvpp, setup):
        """Materialization is *more* attractive when lineage is remote and
        queried often: weight under distributed costing should be at least
        the centralized weight for multi-query shared nodes."""
        _, _, distributed = setup
        centralized = MVPPCostCalculator(paper_mvpp)
        shared = [
            v
            for v in paper_mvpp.operations
            if len(paper_mvpp.queries_using(v)) >= 2
        ]
        assert any(
            distributed.weight(v) > centralized.weight(v) for v in shared
        )

    def test_selection_works_under_distributed_costs(self, paper_mvpp, setup):
        _, _, calculator = setup
        result = select_views(paper_mvpp, calculator)
        chosen = calculator.breakdown(result.materialized).total
        assert chosen <= calculator.breakdown(()).total
