"""Unit tests for site-aware MVPP costing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed.comm_cost import DistributedCostCalculator
from repro.distributed.partition import PartitionScheme
from repro.distributed.sharding import ShardCatalog
from repro.distributed.sites import Topology
from repro.errors import DistributedError
from repro.mvpp.cost import MVPPCostCalculator
from repro.mvpp.materialization import select_views


@pytest.fixture()
def setup(paper_mvpp):
    topology = Topology(["wh", "s1", "s2"], default_link_cost=2.0)
    placement = {
        "Product": "s1",
        "Division": "s1",
        "Order": "s2",
        "Customer": "s2",
        "Part": "s1",
    }
    calculator = DistributedCostCalculator(
        paper_mvpp, topology, placement, warehouse_site="wh"
    )
    return topology, placement, calculator


class TestValidation:
    def test_missing_placement_rejected(self, paper_mvpp):
        topology = Topology(["wh", "s1"])
        with pytest.raises(DistributedError):
            DistributedCostCalculator(
                paper_mvpp, topology, {"Product": "s1"}, warehouse_site="wh"
            )

    def test_unknown_site_rejected(self, paper_mvpp):
        topology = Topology(["wh"])
        placement = {
            leaf.name: "nowhere" for leaf in paper_mvpp.leaves
        }
        with pytest.raises(DistributedError):
            DistributedCostCalculator(
                paper_mvpp, topology, placement, warehouse_site="wh"
            )

    def test_unknown_warehouse_rejected(self, paper_mvpp):
        topology = Topology(["s1"])
        placement = {leaf.name: "s1" for leaf in paper_mvpp.leaves}
        with pytest.raises(DistributedError):
            DistributedCostCalculator(
                paper_mvpp, topology, placement, warehouse_site="wh"
            )


class TestCosting:
    def test_virtual_queries_pay_transfer(self, paper_mvpp, setup):
        _, _, distributed = setup
        centralized = MVPPCostCalculator(paper_mvpp)
        assert (
            distributed.query_processing_cost(frozenset())
            > centralized.query_processing_cost(frozenset())
        )

    def test_leaf_transfer_cost(self, paper_mvpp, setup):
        _, _, calculator = setup
        product = paper_mvpp.vertex_by_name("Product")
        assert calculator.leaf_transfer_cost(product) == 2.0 * 3_000

    def test_materialized_views_read_locally(self, paper_mvpp, setup):
        _, _, calculator = setup
        vertex = paper_mvpp.operations[0]
        cost = calculator.access_cost(vertex, frozenset({vertex.vertex_id}))
        assert cost == vertex.stats.blocks  # no transfer term

    def test_maintenance_includes_lineage_transfer(self, paper_mvpp, setup):
        _, _, distributed = setup
        centralized = MVPPCostCalculator(paper_mvpp)
        vertex = paper_mvpp.operations[0]
        assert distributed.maintenance_cost(
            frozenset({vertex.vertex_id})
        ) > centralized.maintenance_cost(frozenset({vertex.vertex_id}))

    def test_weight_grows_with_transfer(self, paper_mvpp, setup):
        """Materialization is *more* attractive when lineage is remote and
        queried often: weight under distributed costing should be at least
        the centralized weight for multi-query shared nodes."""
        _, _, distributed = setup
        centralized = MVPPCostCalculator(paper_mvpp)
        shared = [
            v
            for v in paper_mvpp.operations
            if len(paper_mvpp.queries_using(v)) >= 2
        ]
        assert any(
            distributed.weight(v) > centralized.weight(v) for v in shared
        )

    def test_selection_works_under_distributed_costs(self, paper_mvpp, setup):
        _, _, calculator = setup
        result = select_views(paper_mvpp, calculator)
        chosen = calculator.breakdown(result.materialized).total
        assert chosen <= calculator.breakdown(()).total


class TestCentralizedAgreement:
    """With zero transfer cost the two calculators must agree exactly.

    The distributed calculator only relocates data — it inherits the
    traversal (including the stats-presence guards) from
    ``MVPPCostCalculator``, so free links collapse it to the
    centralized model for *every* materialization choice.
    """

    @pytest.fixture()
    def free_links(self, paper_mvpp):
        topology = Topology(["wh", "s1", "s2"], default_link_cost=0.0)
        placement = {
            "Product": "s1",
            "Division": "s1",
            "Order": "s2",
            "Customer": "s2",
            "Part": "s1",
        }
        return DistributedCostCalculator(
            paper_mvpp, topology, placement, warehouse_site="wh"
        )

    def test_empty_set_agrees(self, paper_mvpp, free_links):
        centralized = MVPPCostCalculator(paper_mvpp)
        assert free_links.query_processing_cost(
            frozenset()
        ) == centralized.query_processing_cost(frozenset())

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_agrees_for_any_materialized_set(self, data, paper_mvpp):
        """Zero transfer ⇒ distributed == centralized, for *random*
        materialized sets (the property form of the _access-guard fix)."""
        topology = Topology(["wh", "s1"], default_link_cost=0.0)
        placement = {leaf.name: "s1" for leaf in paper_mvpp.leaves}
        distributed = DistributedCostCalculator(
            paper_mvpp, topology, placement, warehouse_site="wh"
        )
        centralized = MVPPCostCalculator(paper_mvpp)
        ids = [v.vertex_id for v in paper_mvpp.operations]
        materialized = frozenset(
            data.draw(st.sets(st.sampled_from(ids)))
        )
        assert distributed.query_processing_cost(
            materialized
        ) == pytest.approx(
            centralized.query_processing_cost(materialized)
        )
        assert distributed.maintenance_cost(
            materialized
        ) == pytest.approx(centralized.maintenance_cost(materialized))

    def test_agrees_for_sampled_materialized_sets(
        self, paper_mvpp, free_links
    ):
        centralized = MVPPCostCalculator(paper_mvpp)
        operations = list(paper_mvpp.operations)
        # Every singleton plus a few mixed sets: stats-less vertices
        # included, which is exactly where the _access guards must match.
        candidate_sets = [frozenset()]
        candidate_sets += [
            frozenset({v.vertex_id}) for v in operations
        ]
        candidate_sets += [
            frozenset(v.vertex_id for v in operations[::2]),
            frozenset(v.vertex_id for v in operations[1::2]),
            frozenset(v.vertex_id for v in operations),
        ]
        for materialized in candidate_sets:
            assert free_links.query_processing_cost(
                materialized
            ) == pytest.approx(
                centralized.query_processing_cost(materialized)
            )
            assert free_links.maintenance_cost(
                materialized
            ) == pytest.approx(
                centralized.maintenance_cost(materialized)
            )

    def test_weights_agree_with_free_links(self, paper_mvpp, free_links):
        centralized = MVPPCostCalculator(paper_mvpp)
        for vertex in paper_mvpp.operations:
            assert free_links.weight(vertex) == pytest.approx(
                centralized.weight(vertex)
            )


class TestPartitionAwareCosting:
    """Shard-level transfer and refresh accounting (the tentpole)."""

    PLACEMENT = {
        "Product": "s1",
        "Division": "s1",
        "Order": "s2",
        "Customer": "s2",
        "Part": "s1",
    }

    def catalog(self, shards, sites=("s1", "s2"), replication=1):
        schemes = [
            PartitionScheme(
                relation="Order", key="Order.quantity", shards=shards
            )
        ]
        return ShardCatalog.build(
            schemes, sites=tuple(sites), replication=replication
        )

    def build(self, paper_mvpp, shards, link_cost=2.0):
        topology = Topology(["wh", "s1", "s2"], default_link_cost=link_cost)
        return DistributedCostCalculator(
            paper_mvpp,
            topology,
            self.PLACEMENT,
            warehouse_site="wh",
            sharding=self.catalog(shards),
        )

    def test_single_partition_reproduces_whole_object(self, paper_mvpp):
        """One shard holding the full fraction is the whole relation:
        the partition-aware calculator must agree with the unsharded one
        everywhere (acceptance criterion)."""
        topology = Topology(["wh", "s1", "s2"], default_link_cost=2.0)
        whole = DistributedCostCalculator(
            paper_mvpp, topology, self.PLACEMENT, warehouse_site="wh"
        )
        sharded = self.build(paper_mvpp, shards=1)
        ids = [v.vertex_id for v in paper_mvpp.operations]
        for materialized in (
            frozenset(),
            frozenset(ids[:1]),
            frozenset(ids[::2]),
            frozenset(ids),
        ):
            assert sharded.query_processing_cost(
                materialized
            ) == pytest.approx(whole.query_processing_cost(materialized))
            assert sharded.maintenance_cost(
                materialized
            ) == pytest.approx(whole.maintenance_cost(materialized))
        for vertex in paper_mvpp.operations:
            assert sharded.weight(vertex) == pytest.approx(
                whole.weight(vertex)
            )

    def test_single_partition_zero_transfer_is_centralized(self, paper_mvpp):
        """Single partition + free links ⇒ exactly the centralized
        MVPPCostCalculator (acceptance criterion)."""
        sharded = self.build(paper_mvpp, shards=1, link_cost=0.0)
        centralized = MVPPCostCalculator(paper_mvpp)
        ids = [v.vertex_id for v in paper_mvpp.operations]
        for materialized in (frozenset(), frozenset(ids)):
            assert sharded.query_processing_cost(
                materialized
            ) == pytest.approx(
                centralized.query_processing_cost(materialized)
            )
            assert sharded.maintenance_cost(
                materialized
            ) == pytest.approx(
                centralized.maintenance_cost(materialized)
            )

    def test_sharding_preserves_total_leaf_transfer(self, paper_mvpp):
        """Unpruned access sums shard fractions back to the whole
        relation's blocks — splitting costs nothing by itself."""
        whole = self.build(paper_mvpp, shards=1)
        sharded = self.build(paper_mvpp, shards=4)
        order = paper_mvpp.vertex_by_name("Order")
        assert sharded.leaf_transfer_cost(order) == pytest.approx(
            whole.leaf_transfer_cost(order)
        )

    def test_pruned_access_reads_fewer_shards(self, paper_mvpp):
        sharded = self.build(paper_mvpp, shards=4)
        order = paper_mvpp.vertex_by_name("Order")
        full = sharded.leaf_transfer_cost(order)
        pruned = sharded.leaf_transfer_cost(order, surviving=(0,))
        assert pruned == pytest.approx(full / 4)
        assert sharded.leaf_transfer_cost(order, surviving=()) == 0.0

    def test_lineage_transfer_accepts_pruned_map(self, paper_mvpp):
        sharded = self.build(paper_mvpp, shards=4)
        vertex = next(
            v
            for v in paper_mvpp.operations
            if "Order"
            in {leaf.name for leaf in paper_mvpp.base_relations_of(v)}
        )
        full = sharded.lineage_transfer_cost(vertex)
        pruned = sharded.lineage_transfer_cost(
            vertex, pruned={"Order": (0,)}
        )
        assert pruned < full
