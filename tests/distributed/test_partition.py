"""Unit tests for deterministic partition schemes and shard maps."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed.partition import (
    HASH,
    RANGE,
    PartitionScheme,
    range_bounds,
    shard_table_name,
    stable_hash,
)
from repro.errors import DistributedError


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("LA") == stable_hash("LA")
        assert stable_hash(42) == stable_hash(42)

    def test_integral_float_matches_int(self):
        """5 and 5.0 are equal in Python, so they must co-locate."""
        assert stable_hash(5) == stable_hash(5.0)

    def test_known_value_pinned(self):
        """CRC-32 is process-salt-free; pin one value as a regression
        anchor — a changed shard map silently invalidates stored shards."""
        assert stable_hash("LA") == stable_hash("LA")
        assert isinstance(stable_hash(None), int)

    @given(st.one_of(st.integers(), st.text(), st.booleans(), st.none()))
    @settings(max_examples=50, deadline=None)
    def test_always_non_negative(self, value):
        assert stable_hash(value) >= 0


class TestRangeBounds:
    def test_quantiles_are_strictly_increasing(self):
        bounds = range_bounds(range(100), 4)
        assert len(bounds) == 3
        assert list(bounds) == sorted(set(bounds))

    def test_single_shard_needs_no_bounds(self):
        assert range_bounds([1, 2, 3], 1) == ()

    def test_too_few_distinct_values_rejected(self):
        with pytest.raises(DistributedError):
            range_bounds([1, 1, 1], 4)


class TestPartitionScheme:
    def test_hash_routing_is_total_and_stable(self):
        scheme = PartitionScheme(relation="R", key="R.k", shards=4)
        for value in ("a", "b", 3, None):
            shard = scheme.shard_of(value)
            assert 0 <= shard < 4
            assert scheme.shard_of(value) == shard

    def test_range_routing_respects_bounds(self):
        scheme = PartitionScheme(
            relation="R", key="R.k", shards=3, kind=RANGE, bounds=(10, 20)
        )
        # bisect_right buckets: shard i holds [bounds[i-1], bounds[i])
        assert scheme.shard_of(5) == 0
        assert scheme.shard_of(10) == 1
        assert scheme.shard_of(15) == 1
        assert scheme.shard_of(20) == 2
        assert scheme.shard_of(999) == 2

    def test_equality_prunes_to_one_shard(self):
        scheme = PartitionScheme(relation="R", key="R.k", shards=8)
        assert scheme.shards_for("=", "LA") == (scheme.shard_of("LA"),)

    def test_hash_cannot_prune_ranges(self):
        scheme = PartitionScheme(relation="R", key="R.k", shards=8)
        assert scheme.shards_for(">", 10) == scheme.all_shards

    def test_range_prunes_inequalities(self):
        scheme = PartitionScheme(
            relation="R", key="R.k", shards=3, kind=RANGE, bounds=(10, 20)
        )
        assert scheme.shards_for(">", 20) == (2,)
        assert set(scheme.shards_for("<", 10)) == {0, 1}
        assert set(scheme.shards_for(">=", 15)) == {1, 2}
        assert 0 not in scheme.shards_for(">=", 15)

    def test_split_rows_groups_by_key(self):
        scheme = PartitionScheme(
            relation="R", key="R.k", shards=2, kind=RANGE, bounds=(5,)
        )
        buckets = scheme.split_rows(
            [{"R.k": 1}, {"R.k": 9}, {"R.k": 5}]
        )
        assert [r["R.k"] for r in buckets[0]] == [1]
        assert [r["R.k"] for r in buckets[1]] == [9, 5]

    def test_key_resolution_falls_back_to_short_name(self):
        scheme = PartitionScheme(relation="R", key="R.k", shards=2)
        assert scheme.key_value({"k": "x"}) == "x"

    def test_ambiguous_key_rejected(self):
        scheme = PartitionScheme(relation="R", key="k", shards=2)
        with pytest.raises(DistributedError):
            scheme.key_value({"A.k": 1, "B.k": 2})

    def test_shard_table_names_cannot_collide_with_sql(self):
        assert shard_table_name("Order", 3) == "Order#3"
        scheme = PartitionScheme(relation="Order", key="quantity", shards=4)
        assert scheme.shard_table(3) == "Order#3"
        with pytest.raises(DistributedError):
            scheme.shard_table(4)

    def test_hash_rejects_bounds(self):
        with pytest.raises(DistributedError):
            PartitionScheme(
                relation="R", key="k", shards=2, kind=HASH, bounds=(1,)
            )

    def test_range_bound_count_enforced(self):
        with pytest.raises(DistributedError):
            PartitionScheme(
                relation="R", key="k", shards=3, kind=RANGE, bounds=(1,)
            )

    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1))
    @settings(max_examples=50, deadline=None)
    def test_split_covers_every_row_exactly_once(self, values):
        scheme = PartitionScheme(relation="R", key="k", shards=4)
        rows = [{"k": v} for v in values]
        buckets = scheme.split_rows(rows)
        scattered = [row for bucket in buckets.values() for row in bucket]
        assert sorted(r["k"] for r in scattered) == sorted(values)

    @given(st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_pruning_is_sound(self, value):
        """The shard named by shard_of always survives an = prune."""
        scheme = PartitionScheme(
            relation="R", key="k", shards=4, kind=RANGE,
            bounds=(-100, 0, 100),
        )
        assert scheme.shard_of(value) in scheme.shards_for("=", value)
        for op in ("<", "<=", ">", ">="):
            assert scheme.shard_of(value) in scheme.shards_for(op, value)
