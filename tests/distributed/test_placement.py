"""Unit tests for mirroring decisions and placement helpers."""

import pytest

from repro.distributed.placement import (
    MIRROR,
    REMOTE,
    assign_round_robin,
    mirror_decisions,
)
from repro.distributed.sites import Topology
from repro.errors import DistributedError


class TestRoundRobin:
    def test_cycles_sites(self):
        placement = assign_round_robin(["a", "b", "c"], ["s1", "s2"])
        assert placement == {"a": "s1", "b": "s2", "c": "s1"}

    def test_empty_sites_rejected(self):
        with pytest.raises(DistributedError):
            assign_round_robin(["a"], [])


class TestMirrorDecisions:
    @pytest.fixture()
    def decisions(self, paper_mvpp):
        topology = Topology(["wh", "s1"], default_link_cost=1.0)
        placement = {leaf.name: "s1" for leaf in paper_mvpp.leaves}
        return {
            d.relation: d
            for d in mirror_decisions(paper_mvpp, topology, placement, "wh")
        }

    def test_every_base_relation_decided(self, decisions, paper_mvpp):
        assert set(decisions) == {leaf.name for leaf in paper_mvpp.leaves}

    def test_hot_queried_relation_is_mirrored(self, decisions):
        """Division feeds Q1 (fq=10) + Q2 + Q3 but updates once per period:
        mirroring wins."""
        division = decisions["Division"]
        assert division.choice == MIRROR
        assert division.mirror_cost < division.remote_cost

    def test_choice_follows_costs(self, decisions):
        for decision in decisions.values():
            if decision.choice == MIRROR:
                assert decision.mirror_cost <= decision.remote_cost
            else:
                assert decision.remote_cost < decision.mirror_cost

    def test_cold_relation_goes_remote(self, paper_mvpp):
        """If a relation updates far more often than it is queried, remote
        access wins."""
        topology = Topology(["wh", "s1"], default_link_cost=1.0)
        placement = {leaf.name: "s1" for leaf in paper_mvpp.leaves}
        part = paper_mvpp.vertex_by_name("Part")
        original = part.frequency
        try:
            part.frequency = 1_000.0  # updated constantly
            decisions = {
                d.relation: d
                for d in mirror_decisions(paper_mvpp, topology, placement, "wh")
            }
            assert decisions["Part"].choice == REMOTE
        finally:
            part.frequency = original

    def test_missing_placement_rejected(self, paper_mvpp):
        topology = Topology(["wh", "s1"])
        with pytest.raises(DistributedError):
            mirror_decisions(paper_mvpp, topology, {}, "wh")


class TestRoundRobinDuplicates:
    def test_duplicate_relations_rejected(self):
        """A dict comprehension would keep only the last occurrence,
        silently skewing the spread — reject instead."""
        with pytest.raises(DistributedError, match="duplicate"):
            assign_round_robin(["a", "b", "a"], ["s1", "s2"])

    def test_unique_relations_still_pass(self):
        assert assign_round_robin(["a", "b"], ["s1"]) == {
            "a": "s1", "b": "s1"
        }


class TestStatlessMirrorDecision:
    def test_statless_relation_warns_and_is_flagged(self, paper_mvpp):
        """With no statistics both costs are 0.0 and MIRROR wins the tie
        by default; that default must be visible, not silent."""
        import warnings as warnings_module

        from repro.errors import WorkloadWarning

        topology = Topology(["wh", "s1"], default_link_cost=1.0)
        placement = {leaf.name: "s1" for leaf in paper_mvpp.leaves}
        part = paper_mvpp.vertex_by_name("Part")
        original = part.stats
        try:
            part.stats = None
            with warnings_module.catch_warnings(record=True) as caught:
                warnings_module.simplefilter("always")
                decisions = {
                    d.relation: d
                    for d in mirror_decisions(
                        paper_mvpp, topology, placement, "wh"
                    )
                }
            assert any(
                issubclass(w.category, WorkloadWarning)
                and "Part" in str(w.message)
                for w in caught
            )
            assert decisions["Part"].stats_known is False
            assert decisions["Part"].mirror_cost == 0.0
            assert decisions["Part"].remote_cost == 0.0
            for name, decision in decisions.items():
                if name != "Part":
                    assert decision.stats_known is True
        finally:
            part.stats = original
