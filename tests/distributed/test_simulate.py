"""Tests for workload-derived partition schemes and the sharding sim."""

import pytest

from repro.distributed.partition import HASH, RANGE
from repro.distributed.simulate import choose_schemes, simulate_sharding
from repro.errors import DistributedError
from repro.workload import paper_rows, paper_workload


class TestChooseSchemes:
    def test_paper_workload_keys_follow_predicates(self):
        """Division is constrained on city (Q1-Q3), Order on quantity
        (Q4); numeric keys get RANGE bounds from the loaded values."""
        workload = paper_workload()
        rows = paper_rows(scale=0.01, seed=0)
        schemes = {
            s.relation: s for s in choose_schemes(workload, rows, 4)
        }
        assert schemes["Division"].key == "Division.city"
        assert schemes["Division"].kind == HASH
        assert schemes["Order"].key == "Order.quantity"
        assert schemes["Order"].kind == RANGE
        assert len(schemes["Order"].bounds) == 3

    def test_without_rows_falls_back_to_hash(self):
        workload = paper_workload()
        schemes = choose_schemes(workload, {}, 4)
        assert schemes
        assert all(s.kind == HASH for s in schemes)

    def test_deterministic(self):
        workload = paper_workload()
        rows = paper_rows(scale=0.01, seed=0)
        first = choose_schemes(workload, rows, 4)
        second = choose_schemes(workload, rows, 4)
        assert [(s.relation, s.key, s.kind, s.bounds) for s in first] == [
            (s.relation, s.key, s.kind, s.bounds) for s in second
        ]


class TestSimulateSharding:
    def test_contracts_hold_end_to_end(self):
        result = simulate_sharding(
            shards=2, seed=3, scale=0.01, workers=(1, 2)
        )
        assert result.ok
        assert result.rows_identical
        assert result.pruning_wins
        assert result.refresh_identical
        assert result.refresh_affected_only
        document = result.to_dict()
        assert document["ok"] is True
        assert document["shards"] == 2
