"""Unit tests for sites and the transfer-cost topology."""

import pytest

from repro.distributed.sites import Site, Topology
from repro.errors import DistributedError


class TestTopology:
    def test_same_site_free(self):
        topology = Topology(["a", "b"])
        assert topology.transfer_cost("a", "a", 100) == 0.0

    def test_default_link_cost(self):
        topology = Topology(["a", "b"], default_link_cost=3.0)
        assert topology.transfer_cost("a", "b", 10) == 30.0

    def test_explicit_link_symmetric(self):
        topology = Topology(["a", "b"])
        topology.set_link("a", "b", 7.0)
        assert topology.link_cost("a", "b") == 7.0
        assert topology.link_cost("b", "a") == 7.0

    def test_unknown_site_rejected(self):
        topology = Topology(["a"])
        with pytest.raises(DistributedError):
            topology.link_cost("a", "zz")

    def test_self_link_rejected(self):
        topology = Topology(["a", "b"])
        with pytest.raises(DistributedError):
            topology.set_link("a", "a", 1.0)

    def test_negative_cost_rejected(self):
        topology = Topology(["a", "b"])
        with pytest.raises(DistributedError):
            topology.set_link("a", "b", -1.0)
        with pytest.raises(DistributedError):
            topology.transfer_cost("a", "b", -5)

    def test_empty_topology_rejected(self):
        with pytest.raises(DistributedError):
            Topology([])

    def test_add_site(self):
        topology = Topology(["a"])
        topology.add_site("b")
        assert "b" in topology
        with pytest.raises(DistributedError):
            topology.add_site("b")

    def test_site_name_validated(self):
        with pytest.raises(DistributedError):
            Site("")
