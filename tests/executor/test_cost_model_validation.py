"""Validation: measured block I/O realizes the analytical cost model.

The paper's design decisions are driven by a block-access cost model; the
executor charges the same access patterns on real data.  These tests pin
the correspondence: given the *actual* sizes of the inputs, each physical
operator's measured reads equal the model formula exactly, and end-to-end
predictions land within estimation error of measurements.
"""

import pytest

from repro.catalog.statistics import RelationStatistics
from repro.executor.engine import ExecutionEngine, load_database
from repro.executor.iterators import linear_select, nested_loop_join, project_table
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost_model import NestedLoopCostModel
from repro.optimizer.plans import AnnotatedPlan
from repro.sql.translator import parse_query
from repro.algebra.expressions import column, compare, literal
from repro.workload.datagen import paper_rows
from repro.workload.example import paper_statistics


@pytest.fixture(scope="module")
def database(workload):
    return load_database(
        paper_rows(scale=0.05, seed=11),
        workload.catalog,
        blocking_factors={
            name: workload.statistics.relation(name).blocking_factor
            for name in workload.catalog.relation_names
        },
    )


class TestOperatorFormulas:
    def test_select_reads_equal_input_blocks(self, database):
        table = database.table("Division")
        database.io.reset()
        linear_select(table, compare("Division.city", "=", literal("LA")))
        assert database.io.reads == table.num_blocks

    def test_project_reads_equal_input_blocks(self, database):
        table = database.table("Product")
        database.io.reset()
        project_table(table, ["Product.name"])
        assert database.io.reads == table.num_blocks

    def test_nested_loop_reads_match_formula(self, database):
        orders = database.table("Order")
        customers = database.table("Customer")
        database.io.reset()
        nested_loop_join(
            orders, customers, compare("Order.Cid", "=", column("Customer.Cid"))
        )
        expected = orders.num_blocks + orders.num_blocks * customers.num_blocks
        assert database.io.reads == expected

    def test_model_agrees_given_true_stats(self, workload, database):
        """Feeding the *measured* table sizes into the cost model predicts
        the executor's I/O for a join exactly."""
        orders = database.table("Order")
        customers = database.table("Customer")
        statistics = paper_statistics()
        statistics.set_relation("Order", orders.cardinality, orders.num_blocks)
        statistics.set_relation(
            "Customer", customers.cardinality, customers.num_blocks
        )
        estimator = CardinalityEstimator(statistics)

        from repro.algebra.operators import Join, Relation

        plan = Join(
            Relation("Order", orders.schema),
            Relation("Customer", customers.schema),
            compare("Order.Cid", "=", column("Customer.Cid")),
        )
        predicted = NestedLoopCostModel().local_cost(plan, estimator)
        database.io.reset()
        nested_loop_join(
            orders, customers, compare("Order.Cid", "=", column("Customer.Cid"))
        )
        assert database.io.reads == predicted


class TestEndToEnd:
    def test_scaled_prediction_tracks_measurement(self, workload, database):
        """At 5% scale, predicted and measured Q4 I/O agree within 2x.

        (Exact agreement is impossible: the estimator works from Table 1
        statistics, the executor from sampled data.)
        """
        statistics = paper_statistics()
        for name in workload.catalog.relation_names:
            table = database.table(name)
            statistics.set_relation(name, table.cardinality, table.num_blocks)
        estimator = CardinalityEstimator(statistics)

        plan = parse_query(workload.query("Q4").sql, workload.catalog)
        predicted = AnnotatedPlan(plan, estimator).total_cost
        engine = ExecutionEngine(database)
        _, io = engine.run(plan)
        assert predicted / 2 <= io.reads <= predicted * 2

    def test_output_cardinality_tracks_estimate(self, workload, database):
        statistics = paper_statistics()
        for name in workload.catalog.relation_names:
            table = database.table(name)
            statistics.set_relation(name, table.cardinality, table.num_blocks)
        # Join selectivity scales with the key domain: at 5% scale every
        # order still matches exactly one of the 1000 customers.
        statistics.set_join_selectivity(
            "Order.Cid",
            "Customer.Cid",
            1.0 / database.table("Customer").cardinality,
        )
        estimator = CardinalityEstimator(statistics)

        plan = parse_query(workload.query("Q4").sql, workload.catalog)
        predicted = estimator.estimate(plan).cardinality
        result, _ = ExecutionEngine(database).run(plan)
        assert predicted == pytest.approx(result.cardinality, rel=0.2)
