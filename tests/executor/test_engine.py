"""Unit tests for the execution engine over the paper's schema."""

import pytest

from repro.errors import ExecutionError
from repro.executor.engine import Database, ExecutionEngine, HASH, load_database
from repro.sql.translator import parse_query
from repro.workload.datagen import paper_rows


@pytest.fixture(scope="module")
def database(workload):
    return load_database(
        paper_rows(scale=0.02, seed=3),
        workload.catalog,
        blocking_factors={
            name: workload.statistics.relation(name).blocking_factor
            for name in workload.catalog.relation_names
        },
    )


@pytest.fixture(scope="module")
def engine(database):
    return ExecutionEngine(database)


class TestDatabase:
    def test_register_and_lookup(self, database):
        assert database.table("Product").cardinality == 600

    def test_missing_table(self, database):
        with pytest.raises(ExecutionError):
            database.table("Nope")

    def test_contains(self, database):
        assert "Order" in database
        assert "Nope" not in database

    def test_tables_share_io(self, database):
        assert database.table("Product").io is database.io


class TestExecution:
    def test_q1_runs(self, workload, engine):
        plan = parse_query(workload.query("Q1").sql, workload.catalog)
        result, io = engine.run(plan)
        assert io.total > 0
        assert result.schema.attribute_names == ("Product.name",)

    def test_q1_rows_match_brute_force(self, workload, engine, database):
        plan = parse_query(workload.query("Q1").sql, workload.catalog)
        result, _ = engine.run(plan)
        divisions = {
            r["Division.Did"]
            for r in database.table("Division").rows()
            if r["Division.city"] == "LA"
        }
        expected = sorted(
            r["Product.name"]
            for r in database.table("Product").rows()
            if r["Product.Did"] in divisions
        )
        assert sorted(r["Product.name"] for r in result.rows()) == expected

    def test_q4_selection_correct(self, workload, engine, database):
        plan = parse_query(workload.query("Q4").sql, workload.catalog)
        result, _ = engine.run(plan)
        expected = sum(
            1 for r in database.table("Order").rows() if r["Order.quantity"] > 100
        )
        assert result.cardinality == expected

    def test_hash_engine_matches_nested_loop(self, workload, database):
        nested = ExecutionEngine(database)
        hashed = ExecutionEngine(database, HASH)
        for name in ("Q1", "Q2", "Q3", "Q4"):
            plan = parse_query(workload.query(name).sql, workload.catalog)
            a, _ = nested.run(plan)
            b, _ = hashed.run(plan)
            key = lambda t: sorted(  # noqa: E731
                tuple(sorted(r.items())) for r in t.rows()
            )
            assert key(a) == key(b), name

    def test_hash_join_cheaper_io(self, workload, database):
        plan = parse_query(workload.query("Q4").sql, workload.catalog)
        _, io_nested = ExecutionEngine(database).run(plan)
        _, io_hash = ExecutionEngine(database, HASH).run(plan)
        assert io_hash.total < io_nested.total

    def test_aggregate_query(self, workload, engine, database):
        plan = parse_query(
            "SELECT Division.city, COUNT(*) AS n FROM Division GROUP BY Division.city",
            workload.catalog,
        )
        result, _ = engine.run(plan)
        assert sum(r["n"] for r in result.rows()) == database.table(
            "Division"
        ).cardinality

    def test_unknown_join_method_rejected(self, database):
        with pytest.raises(ExecutionError):
            ExecutionEngine(database, "sort-of-join")

    def test_schema_mismatch_detected(self, workload, database):
        from repro.algebra.operators import Relation

        bogus = Relation("Product", workload.catalog.schema("Customer").qualify())
        with pytest.raises(ExecutionError):
            ExecutionEngine(database).execute(bogus)
