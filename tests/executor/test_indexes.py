"""Unit tests for index management and index-nested-loop joins.

Backs the paper's Section-3.2 claim: an index built on a materialized
result makes probing it cheaper than rescanning, so materialization is
never a loss at query time.
"""

import pytest

from repro.algebra.expressions import column, compare
from repro.catalog.datatypes import DataType
from repro.catalog.schema import Attribute, RelationSchema
from repro.errors import ExecutionError
from repro.executor.engine import (
    HASH,
    INDEX_NESTED_LOOP,
    Database,
    ExecutionEngine,
    load_database,
)
from repro.executor.indexes import IndexManager, index_nested_loop_join
from repro.executor.iterators import nested_loop_join
from repro.storage.table import Table
from repro.workload.datagen import paper_rows


def make_table(name, cols, rows, bf=10, io=None):
    schema = RelationSchema(
        name, [Attribute(f"{name}.{c}", t) for c, t in cols]
    )
    table = Table(schema, bf, io=io)
    for row in rows:
        table.insert(row)
    return table


@pytest.fixture
def orders():
    return make_table(
        "Order",
        [("id", DataType.INTEGER), ("cid", DataType.INTEGER)],
        [{"id": i, "cid": i % 6} for i in range(30)],
        bf=5,
    )


@pytest.fixture
def customers(orders):
    return make_table(
        "Customer",
        [("cid", DataType.INTEGER), ("city", DataType.STRING)],
        [{"cid": i, "city": f"C{i}"} for i in range(6)],
        bf=3,
        io=orders.io,
    )


class TestIndexManager:
    def test_build_once(self, customers):
        manager = IndexManager()
        a = manager.ensure("Customer", customers, "cid")
        b = manager.ensure("Customer", customers, "cid")
        assert a is b
        assert len(manager) == 1

    def test_rebuild_after_growth(self, customers):
        manager = IndexManager()
        a = manager.ensure("Customer", customers, "cid")
        customers.insert({"cid": 99, "city": "X"})
        b = manager.ensure("Customer", customers, "cid")
        assert a is not b
        assert b.lookup(99, count_io=False)

    def test_rebuild_after_table_replacement(self, customers):
        manager = IndexManager()
        a = manager.ensure("Customer", customers, "cid")
        replacement = make_table(
            "Customer",
            [("cid", DataType.INTEGER), ("city", DataType.STRING)],
            [{"cid": i, "city": "Y"} for i in range(6)],
        )
        b = manager.ensure("Customer", replacement, "cid")
        assert a is not b

    def test_invalidate(self, customers):
        manager = IndexManager()
        manager.ensure("Customer", customers, "cid")
        manager.invalidate("Customer")
        assert len(manager) == 0

    def test_build_charges_one_pass(self, customers):
        manager = IndexManager()
        customers.io.reset()
        manager.ensure("Customer", customers, "cid")
        assert customers.io.reads == customers.num_blocks


class TestIndexNestedLoopJoin:
    def test_matches_nested_loop(self, orders, customers):
        condition = compare("Order.cid", "=", column("Customer.cid"))
        reference = nested_loop_join(orders, customers, condition)
        index = IndexManager().ensure("Customer", customers, "cid")
        indexed = index_nested_loop_join(
            orders, index, ("Order.cid", "Customer.cid")
        )
        key = lambda t: sorted(  # noqa: E731
            tuple(sorted(r.items())) for r in t.rows()
        )
        assert key(reference) == key(indexed)

    def test_cheaper_than_nested_loop_on_large_inner(self, orders):
        """Index probes win once the inner relation is large: nested loop
        pays B(outer)·B(inner) while the index pays per-match blocks."""
        big_customers = make_table(
            "Customer",
            [("cid", DataType.INTEGER), ("city", DataType.STRING)],
            [{"cid": i, "city": f"C{i}"} for i in range(600)],
            bf=3,
            io=orders.io,
        )
        index = IndexManager().ensure("Customer", big_customers, "cid")
        orders.io.reset()
        index_nested_loop_join(orders, index, ("Order.cid", "Customer.cid"))
        indexed_io = orders.io.reads
        orders.io.reset()
        nested_loop_join(
            orders,
            big_customers,
            compare("Order.cid", "=", column("Customer.cid")),
        )
        assert indexed_io < orders.io.reads

    def test_wrong_key_rejected(self, orders, customers):
        index = IndexManager().ensure("Customer", customers, "city")
        with pytest.raises(ExecutionError):
            index_nested_loop_join(
                orders, index, ("Order.cid", "Customer.cid")
            )

    def test_residual_applied(self, orders, customers):
        index = IndexManager().ensure("Customer", customers, "cid")
        result = index_nested_loop_join(
            orders,
            index,
            ("Order.cid", "Customer.cid"),
            residual=compare("Order.id", "<", 10),
        )
        assert result.cardinality == 10


class TestEngineIntegration:
    def test_index_engine_matches_hash(self, workload):
        database = load_database(paper_rows(scale=0.02, seed=17), workload.catalog)
        hash_engine = ExecutionEngine(database, HASH)
        index_engine = ExecutionEngine(database, INDEX_NESTED_LOOP)
        from repro.sql.translator import parse_query

        for name in ("Q1", "Q2", "Q3", "Q4"):
            plan = parse_query(workload.query(name).sql, workload.catalog)
            a, _ = hash_engine.run(plan)
            b, _ = index_engine.run(plan)
            key = lambda t: sorted(  # noqa: E731
                tuple(sorted(r.items())) for r in t.rows()
            )
            assert key(a) == key(b), name

    def test_unknown_method_rejected(self):
        with pytest.raises(ExecutionError):
            ExecutionEngine(Database(), "btree-magic")
