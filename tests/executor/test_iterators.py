"""Unit tests for the physical operators and their I/O accounting."""

import pytest

from repro.algebra.expressions import column, compare, literal
from repro.algebra.operators import AggregateFunction, AggregateSpec, Aggregate, Relation
from repro.catalog.datatypes import DataType
from repro.catalog.schema import Attribute, RelationSchema
from repro.errors import ExecutionError
from repro.executor.iterators import (
    aggregate_table,
    hash_join,
    linear_select,
    materialize_table,
    nested_loop_join,
    project_table,
)
from repro.storage.block import IOCounter
from repro.storage.table import Table, table_from_rows


def make_table(name, cols, rows, bf=10, io=None):
    schema = RelationSchema(
        name, [Attribute(f"{name}.{c}", t) for c, t in cols]
    )
    table = Table(schema, bf, io=io)
    for row in rows:
        table.insert(row)
    return table


@pytest.fixture
def orders():
    return make_table(
        "Order",
        [("id", DataType.INTEGER), ("cid", DataType.INTEGER), ("qty", DataType.INTEGER)],
        [{"id": i, "cid": i % 4, "qty": i * 10} for i in range(20)],
        bf=5,
    )


@pytest.fixture
def customers(orders):
    return make_table(
        "Customer",
        [("cid", DataType.INTEGER), ("city", DataType.STRING)],
        [{"cid": i, "city": f"C{i}"} for i in range(4)],
        bf=2,
        io=orders.io,
    )


class TestLinearSelect:
    def test_filters_rows(self, orders):
        result = linear_select(orders, compare("Order.qty", ">", 100))
        assert result.cardinality == 9

    def test_charges_one_pass(self, orders):
        orders.io.reset()
        linear_select(orders, compare("Order.qty", ">", 100))
        assert orders.io.reads == orders.num_blocks == 4

    def test_null_semantics_drop_unknown(self):
        table = make_table(
            "R", [("a", DataType.INTEGER)], [{"a": None}, {"a": 5}]
        )
        result = linear_select(table, compare("R.a", ">", 1))
        assert result.cardinality == 1


class TestProject:
    def test_keeps_columns(self, orders):
        result = project_table(orders, ["Order.qty"])
        assert result.schema.attribute_names == ("Order.qty",)
        assert result.cardinality == 20

    def test_blocking_factor_improves(self, orders):
        result = project_table(orders, ["Order.qty"])
        assert result.blocking_factor > orders.blocking_factor

    def test_bag_semantics_keep_duplicates(self, orders):
        result = project_table(orders, ["Order.cid"])
        assert result.cardinality == 20  # no dedup


class TestNestedLoopJoin:
    def test_result_rows(self, orders, customers):
        condition = compare("Order.cid", "=", column("Customer.cid"))
        result = nested_loop_join(orders, customers, condition)
        assert result.cardinality == 20
        assert set(result.schema.attribute_names) >= {"Order.id", "Customer.city"}

    def test_io_formula(self, orders, customers):
        orders.io.reset()
        condition = compare("Order.cid", "=", column("Customer.cid"))
        nested_loop_join(orders, customers, condition)
        expected = orders.num_blocks + orders.num_blocks * customers.num_blocks
        assert orders.io.reads == expected

    def test_cross_product(self, orders, customers):
        result = nested_loop_join(orders, customers, None)
        assert result.cardinality == 20 * 4


class TestHashJoin:
    def test_matches_nested_loop(self, orders, customers):
        condition = compare("Order.cid", "=", column("Customer.cid"))
        nested = nested_loop_join(orders, customers, condition)
        hashed = hash_join(orders, customers, [("Order.cid", "Customer.cid")])
        key = lambda t: sorted(  # noqa: E731
            tuple(sorted(r.items())) for r in t.rows()
        )
        assert key(nested) == key(hashed)

    def test_io_linear(self, orders, customers):
        orders.io.reset()
        hash_join(orders, customers, [("Order.cid", "Customer.cid")])
        assert orders.io.reads == orders.num_blocks + customers.num_blocks

    def test_requires_keys(self, orders, customers):
        with pytest.raises(ExecutionError):
            hash_join(orders, customers, [])

    def test_residual_applied(self, orders, customers):
        result = hash_join(
            orders,
            customers,
            [("Order.cid", "Customer.cid")],
            residual=compare("Order.qty", ">", 100),
        )
        assert result.cardinality == 9


class TestAggregate:
    def test_group_count_sum(self, orders):
        rel = Relation("Order", orders.schema)
        agg = Aggregate(
            rel,
            ["Order.cid"],
            [
                AggregateSpec(AggregateFunction.COUNT, None, "n"),
                AggregateSpec(AggregateFunction.SUM, "Order.qty", "total"),
            ],
        )
        result = aggregate_table(orders, agg.group_by, agg.aggregates, agg.schema)
        assert result.cardinality == 4
        by_cid = {r["Order.cid"]: r for r in result.rows()}
        assert by_cid[0]["n"] == 5
        assert by_cid[0]["total"] == sum(i * 10 for i in range(20) if i % 4 == 0)

    def test_min_max_avg(self, orders):
        rel = Relation("Order", orders.schema)
        agg = Aggregate(
            rel,
            [],
            [
                AggregateSpec(AggregateFunction.MIN, "Order.qty", "lo"),
                AggregateSpec(AggregateFunction.MAX, "Order.qty", "hi"),
                AggregateSpec(AggregateFunction.AVG, "Order.qty", "mean"),
            ],
        )
        result = aggregate_table(orders, agg.group_by, agg.aggregates, agg.schema)
        row = result.rows()[0]
        assert row["lo"] == 0 and row["hi"] == 190
        assert row["mean"] == pytest.approx(95.0)

    def test_global_aggregate_on_empty_input(self):
        table = make_table("R", [("a", DataType.INTEGER)], [])
        rel = Relation("R", table.schema)
        agg = Aggregate(
            rel, [], [AggregateSpec(AggregateFunction.COUNT, None, "n")]
        )
        result = aggregate_table(table, agg.group_by, agg.aggregates, agg.schema)
        assert result.rows() == [{"n": 0}]

    def test_null_values_skipped(self):
        table = make_table(
            "R", [("a", DataType.INTEGER)], [{"a": None}, {"a": 4}]
        )
        rel = Relation("R", table.schema)
        agg = Aggregate(
            rel,
            [],
            [
                AggregateSpec(AggregateFunction.COUNT, "R.a", "n"),
                AggregateSpec(AggregateFunction.SUM, "R.a", "s"),
            ],
        )
        result = aggregate_table(table, agg.group_by, agg.aggregates, agg.schema)
        assert result.rows()[0] == {"n": 1, "s": 4.0}


class TestMaterialize:
    def test_charges_writes(self, orders):
        orders.io.reset()
        materialize_table(orders)
        assert orders.io.writes == orders.num_blocks
