"""Property tests: every engine configuration matches the naive oracle.

Random SPJ(+aggregate) plans over random tiny tables are evaluated by the
production executor (all three join methods) and by the independent
reference evaluator; multisets of result rows must coincide.  The
optimizer is also covered: optimizing a random plan must not change its
result.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.expressions import column, compare, literal
from repro.algebra.operators import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
    Join,
    Project,
    Relation,
    Select,
)
from repro.catalog.datatypes import DataType
from repro.catalog.schema import Attribute, RelationSchema
from repro.catalog.statistics import StatisticsCatalog
from repro.executor.engine import (
    HASH,
    INDEX_NESTED_LOOP,
    NESTED_LOOP,
    SORT_MERGE,
    Database,
    ExecutionEngine,
)
from repro.executor.reference import evaluate
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.heuristics import optimize_query
from repro.storage.table import Table

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SCHEMAS = {
    "A": RelationSchema(
        "A",
        [
            Attribute("A.id", DataType.INTEGER),
            Attribute("A.v", DataType.INTEGER),
        ],
    ),
    "B": RelationSchema(
        "B",
        [
            Attribute("B.id", DataType.INTEGER),
            Attribute("B.a_fk", DataType.INTEGER),
            Attribute("B.w", DataType.INTEGER),
        ],
    ),
    "C": RelationSchema(
        "C",
        [
            Attribute("C.id", DataType.INTEGER),
            Attribute("C.b_fk", DataType.INTEGER),
        ],
    ),
}


def make_data(seed):
    rng = random.Random(seed)
    n_a, n_b, n_c = rng.randint(1, 8), rng.randint(1, 12), rng.randint(1, 10)
    rows = {
        "A": [{"A.id": i, "A.v": rng.randint(0, 5)} for i in range(n_a)],
        "B": [
            {"B.id": i, "B.a_fk": rng.randrange(n_a), "B.w": rng.randint(0, 5)}
            for i in range(n_b)
        ],
        "C": [
            {"C.id": i, "C.b_fk": rng.randrange(n_b)} for i in range(n_c)
        ],
    }
    return rows


def make_plan(seed):
    """A random SPJ(+aggregate) plan over A ⋈ B (⋈ C)."""
    rng = random.Random(seed)
    plan = Relation("A", SCHEMAS["A"])
    plan = Join(
        plan,
        Relation("B", SCHEMAS["B"]),
        compare("B.a_fk", "=", column("A.id")),
    )
    if rng.random() < 0.5:
        plan = Join(
            plan,
            Relation("C", SCHEMAS["C"]),
            compare("C.b_fk", "=", column("B.id")),
        )
    if rng.random() < 0.7:
        op = rng.choice([">", "<", "=", "!=", ">=", "<="])
        col = rng.choice(["A.v", "B.w"])
        plan = Select(plan, compare(col, op, literal(rng.randint(0, 5))))
    if rng.random() < 0.3:
        plan = Aggregate(
            plan,
            ["A.v"],
            [
                AggregateSpec(AggregateFunction.COUNT, None, "n"),
                AggregateSpec(AggregateFunction.SUM, "B.w", "s"),
            ],
        )
    elif rng.random() < 0.5:
        plan = Project(plan, ["A.v", "B.w"])
    return plan


def load(rows):
    database = Database()
    for name, table_rows in rows.items():
        table = Table(SCHEMAS[name], blocking_factor=3)
        for row in table_rows:
            table.insert(row)
        database.register(name, table)
    return database


def multiset(rows):
    return sorted(tuple(sorted(r.items())) for r in rows)


@SETTINGS
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_all_engines_match_reference(plan_seed, data_seed):
    plan = make_plan(plan_seed)
    rows = make_data(data_seed)
    expected = multiset(evaluate(plan, rows))
    for method in (NESTED_LOOP, HASH, INDEX_NESTED_LOOP, SORT_MERGE):
        engine = ExecutionEngine(load(rows), method)
        result = engine.execute(plan)
        assert multiset(result.rows()) == expected, method


@SETTINGS
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_optimizer_preserves_semantics(plan_seed, data_seed):
    plan = make_plan(plan_seed)
    rows = make_data(data_seed)

    statistics = StatisticsCatalog()
    for name, table_rows in rows.items():
        statistics.set_relation(name, max(1, len(table_rows)))
    estimator = CardinalityEstimator(statistics)
    optimized = optimize_query(plan, estimator)

    expected = multiset(evaluate(plan, rows))
    got = multiset(evaluate(optimized, rows))
    # Projection order may differ only if schemas differ — they must not.
    assert set(optimized.schema.attribute_names) == set(
        plan.schema.attribute_names
    )
    # Compare on the common output columns.
    columns = sorted(plan.schema.attribute_names)

    def narrowed(rows_):
        return sorted(
            tuple((c, dict(r)[c]) for c in columns) for r in rows_
        )

    assert narrowed(evaluate(optimized, rows)) == narrowed(evaluate(plan, rows))


@SETTINGS
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_pushdown_rewrites_preserve_semantics(plan_seed, data_seed):
    from repro.algebra.rewrite import optimize_tree

    plan = make_plan(plan_seed)
    rows = make_data(data_seed)
    rewritten = optimize_tree(plan)
    columns = sorted(plan.schema.attribute_names)

    def narrowed(rows_):
        return sorted(
            tuple((c, dict(r)[c]) for c in columns) for r in rows_
        )

    assert narrowed(evaluate(rewritten, rows)) == narrowed(evaluate(plan, rows))
