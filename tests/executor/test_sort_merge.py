"""Unit tests for the sort-merge join operator and engine mode."""

import math

import pytest

from repro.algebra.expressions import column, compare
from repro.catalog.datatypes import DataType
from repro.catalog.schema import Attribute, RelationSchema
from repro.errors import ExecutionError
from repro.executor.engine import ExecutionEngine, SORT_MERGE, load_database
from repro.executor.iterators import nested_loop_join, sort_merge_join
from repro.storage.table import Table
from repro.workload.datagen import paper_rows


def make_table(name, cols, rows, bf=5, io=None):
    schema = RelationSchema(
        name, [Attribute(f"{name}.{c}", t) for c, t in cols]
    )
    table = Table(schema, bf, io=io)
    for row in rows:
        table.insert(row)
    return table


@pytest.fixture
def orders():
    return make_table(
        "Order",
        [("id", DataType.INTEGER), ("cid", DataType.INTEGER)],
        [{"id": i, "cid": (i * 7) % 5} for i in range(25)],
    )


@pytest.fixture
def customers(orders):
    return make_table(
        "Customer",
        [("cid", DataType.INTEGER), ("city", DataType.STRING)],
        [{"cid": i, "city": f"C{i}"} for i in range(5)],
        io=orders.io,
    )


def multiset(table):
    return sorted(tuple(sorted(r.items())) for r in table.rows())


class TestSortMergeJoin:
    def test_matches_nested_loop(self, orders, customers):
        condition = compare("Order.cid", "=", column("Customer.cid"))
        expected = multiset(nested_loop_join(orders, customers, condition))
        got = multiset(
            sort_merge_join(orders, customers, [("Order.cid", "Customer.cid")])
        )
        assert got == expected

    def test_duplicate_keys_cross_product(self):
        left = make_table(
            "L", [("k", DataType.INTEGER), ("a", DataType.INTEGER)],
            [{"k": 1, "a": i} for i in range(3)],
        )
        right = make_table(
            "R", [("k", DataType.INTEGER), ("b", DataType.INTEGER)],
            [{"k": 1, "b": i} for i in range(4)],
            io=left.io,
        )
        result = sort_merge_join(left, right, [("L.k", "R.k")])
        assert result.cardinality == 12

    def test_null_keys_never_match(self):
        left = make_table(
            "L", [("k", DataType.INTEGER)], [{"k": None}, {"k": 1}]
        )
        right = make_table(
            "R", [("k2", DataType.INTEGER)], [{"k2": None}, {"k2": 1}],
            io=left.io,
        )
        result = sort_merge_join(left, right, [("L.k", "R.k2")])
        assert result.cardinality == 1

    def test_io_includes_sort_passes(self, orders, customers):
        orders.io.reset()
        sort_merge_join(orders, customers, [("Order.cid", "Customer.cid")])
        expected = 0
        for table in (orders, customers):
            blocks = table.num_blocks
            expected += blocks
            if blocks > 1:
                expected += blocks * math.ceil(math.log2(blocks))
        assert orders.io.reads == expected

    def test_requires_keys(self, orders, customers):
        with pytest.raises(ExecutionError):
            sort_merge_join(orders, customers, [])

    def test_residual_applied(self, orders, customers):
        result = sort_merge_join(
            orders,
            customers,
            [("Order.cid", "Customer.cid")],
            residual=compare("Order.id", "<", 5),
        )
        assert result.cardinality == 5


class TestEngineMode:
    def test_matches_other_engines_on_paper_queries(self, workload):
        database = load_database(paper_rows(scale=0.02, seed=29), workload.catalog)
        from repro.sql.translator import parse_query

        nested = ExecutionEngine(database)
        merged = ExecutionEngine(database, SORT_MERGE)
        for name in ("Q1", "Q2", "Q3", "Q4"):
            plan = parse_query(workload.query(name).sql, workload.catalog)
            a, _ = nested.run(plan)
            b, _ = merged.run(plan)
            assert multiset(a) == multiset(b), name
