"""Property tests: the vectorized engine is bit-identical to the reference.

The vectorized columnar executor must reproduce the row-at-a-time
reference engine *exactly* — the same rows in the same order and the
same block-I/O charges — for every operator, every join method, and
every batch size (including degenerate ``batch_size=1``).  Random
SPJ(+aggregate/sort/limit/distinct) plans over random tiny tables pin
the property; the paper's Table-2 workload and the maintenance paths
(DISTINCT views, self-join fallback) pin the end-to-end story.
"""

import random
import warnings

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.expressions import column, compare, literal
from repro.algebra.operators import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
    Join,
    Limit,
    Project,
    Relation,
    Select,
    Sort,
)
from repro.catalog.datatypes import DataType
from repro.catalog.schema import Attribute, RelationSchema
from repro.errors import ExecutionError
from repro.executor.engine import (
    ENGINES,
    HASH,
    INDEX_NESTED_LOOP,
    NESTED_LOOP,
    REFERENCE,
    SORT_MERGE,
    VECTORIZED,
    Database,
    ExecutionEngine,
)
from repro.executor.physical import BuildSideCache, PhysicalPlanner
from repro.storage.table import Table

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

BATCH_SIZES = (1, 7, 1024)

SCHEMAS = {
    "A": RelationSchema(
        "A",
        [
            Attribute("A.id", DataType.INTEGER),
            Attribute("A.v", DataType.INTEGER),
        ],
    ),
    "B": RelationSchema(
        "B",
        [
            Attribute("B.id", DataType.INTEGER),
            Attribute("B.a_fk", DataType.INTEGER),
            Attribute("B.w", DataType.INTEGER),
        ],
    ),
}


def make_data(seed):
    rng = random.Random(seed)
    n_a, n_b = rng.randint(1, 8), rng.randint(1, 12)
    rows = {
        "A": [
            {"A.id": i, "A.v": rng.choice([None, *range(5)])}
            for i in range(n_a)
        ],
        "B": [
            {"B.id": i, "B.a_fk": rng.randrange(n_a), "B.w": rng.randint(0, 5)}
            for i in range(n_b)
        ],
    }
    return rows


def make_plan(seed):
    """A random plan exercising every operator the engines support."""
    rng = random.Random(seed)
    plan = Relation("A", SCHEMAS["A"])
    plan = Join(
        plan,
        Relation("B", SCHEMAS["B"]),
        compare("B.a_fk", "=", column("A.id")),
    )
    if rng.random() < 0.7:
        op = rng.choice([">", "<", "=", "!=", ">=", "<="])
        col = rng.choice(["A.v", "B.w"])
        plan = Select(plan, compare(col, op, literal(rng.randint(0, 5))))
    shape = rng.random()
    if shape < 0.3:
        plan = Aggregate(
            plan,
            ["A.v"],
            [
                AggregateSpec(AggregateFunction.COUNT, None, "n"),
                AggregateSpec(AggregateFunction.SUM, "B.w", "s"),
                AggregateSpec(AggregateFunction.MIN, "B.w", "lo"),
                AggregateSpec(AggregateFunction.AVG, "B.w", "m"),
            ],
        )
    elif shape < 0.6:
        plan = Project(plan, ["A.v", "B.w"], distinct=rng.random() < 0.5)
    if rng.random() < 0.4:
        plan = Sort(plan, [(plan.schema.attribute_names[0], rng.random() < 0.5)])
    if rng.random() < 0.3:
        plan = Limit(plan, rng.randint(1, 6))
    return plan


def load(rows):
    database = Database()
    for name, table_rows in rows.items():
        table = Table(SCHEMAS[name], blocking_factor=3)
        for row in table_rows:
            table.insert(row)
        database.register(name, table)
    return database


def run(plan, rows, method, mode, batch_size=1024):
    """(ordered row tuples, (reads, writes)) for one engine configuration."""
    database = load(rows)
    engine = ExecutionEngine(
        database, method, engine=mode, batch_size=batch_size
    )
    database.io.reset()
    result = engine.execute(plan)
    ordered = [
        tuple(row[name] for name in result.schema.attribute_names)
        for row in result.rows()
    ]
    return ordered, (database.io.reads, database.io.writes)


@SETTINGS
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_vectorized_matches_reference_rows_and_io(plan_seed, data_seed):
    plan = make_plan(plan_seed)
    rows = make_data(data_seed)
    for method in (NESTED_LOOP, HASH, INDEX_NESTED_LOOP, SORT_MERGE):
        expected_rows, expected_io = run(plan, rows, method, REFERENCE)
        got_rows, got_io = run(plan, rows, method, VECTORIZED)
        assert got_rows == expected_rows, method
        assert got_io == expected_io, method


@SETTINGS
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_batch_size_never_changes_results(plan_seed, data_seed):
    plan = make_plan(plan_seed)
    rows = make_data(data_seed)
    baseline = run(plan, rows, NESTED_LOOP, REFERENCE)
    for batch_size in BATCH_SIZES:
        assert run(
            plan, rows, NESTED_LOOP, VECTORIZED, batch_size
        ) == baseline, batch_size


class TestPaperWorkload:
    """Table-2 workload: both engines answer every query identically."""

    @pytest.fixture(scope="class")
    def warehouses(self, workload):
        from repro.mvpp.config import DesignConfig
        from repro.warehouse import DataWarehouse
        from repro.workload.datagen import paper_rows

        rows = paper_rows(scale=0.05, seed=7)
        built = {}
        for mode in ENGINES:
            warehouse = DataWarehouse.from_workload(workload, engine=mode)
            warehouse.design(DesignConfig(seed=0))
            for relation, relation_rows in rows.items():
                warehouse.load(relation, relation_rows)
            warehouse.materialize()
            built[mode] = warehouse
        return built

    def test_queries_bit_identical(self, warehouses, workload):
        for spec in workload.queries:
            results = {}
            for mode, warehouse in warehouses.items():
                table, io = warehouse.execute(spec.name)
                ordered = [
                    tuple(row[n] for n in table.schema.attribute_names)
                    for row in table.rows()
                ]
                results[mode] = (ordered, io.reads, io.writes)
            assert results[VECTORIZED] == results[REFERENCE], spec.name

    def test_refresh_bit_identical(self, warehouses, workload):
        import datetime

        delta = [
            {"Pid": 1, "Cid": 2, "quantity": 11,
             "date": datetime.date(1996, 6, 6)},
        ]
        outcomes = {}
        for mode, warehouse in warehouses.items():
            before = warehouse.database.io.snapshot()
            warehouse.apply_update("Order", delta, policy="incremental")
            io = warehouse.database.io.since(before)
            stored = {
                view.name: sorted(
                    tuple(sorted(r.items()))
                    for r in warehouse.database.table(view.name).rows()
                )
                for view in warehouse.views
                if view.name in warehouse.database
            }
            outcomes[mode] = (stored, io.reads, io.writes)
        assert outcomes[VECTORIZED] == outcomes[REFERENCE]


class TestMaintenancePaths:
    """DISTINCT and self-join incremental paths under both engines."""

    @staticmethod
    def _database(workload, scale=0.02):
        from repro.executor.engine import load_database
        from repro.workload.datagen import paper_rows

        return load_database(paper_rows(scale=scale, seed=5), workload.catalog)

    @staticmethod
    def _stored(database, name):
        return sorted(
            tuple(sorted(r.items())) for r in database.table(name).rows()
        )

    @pytest.mark.parametrize("mode", ENGINES)
    def test_distinct_view_refresh(self, workload, estimator, mode):
        import datetime

        from repro.optimizer.heuristics import optimize_query
        from repro.sql.translator import parse_query
        from repro.warehouse.maintenance import ViewMaintainer
        from repro.warehouse.view import MaterializedView

        database = self._database(workload)
        plan = optimize_query(
            parse_query(
                "SELECT DISTINCT Customer.city FROM Order, Customer "
                "WHERE Order.Cid = Customer.Cid",
                workload.catalog,
            ),
            estimator,
        )
        view = MaterializedView(name="mv_cities", plan=plan)
        maintainer = ViewMaintainer(
            database, ExecutionEngine(database, engine=mode)
        )
        maintainer.materialize(view)
        delta = [
            {"Pid": 9, "Cid": 1, "quantity": 2,
             "date": datetime.date(1996, 2, 2)},
        ]
        database.table("Order").insert_many(delta)
        maintainer.incremental_refresh(view, "Order", delta)
        oracle = ExecutionEngine(database, engine=REFERENCE).execute(plan)
        assert self._stored(database, "mv_cities") == sorted(
            tuple(sorted(r.items())) for r in oracle.rows()
        )

    @pytest.mark.parametrize("mode", ENGINES)
    def test_self_join_view_falls_back(self, workload, mode):
        import datetime

        from repro.warehouse.maintenance import RECOMPUTE, ViewMaintainer
        from repro.warehouse.view import MaterializedView

        database = self._database(workload)
        schema = workload.catalog.schema("Order").qualify()
        order = Relation("Order", schema)
        plan = Join(
            Project(order, ["Order.Pid"]),
            Project(order, ["Order.Cid"]),
            None,
        )
        view = MaterializedView(name="mv_self", plan=plan)
        maintainer = ViewMaintainer(
            database, ExecutionEngine(database, engine=mode)
        )
        maintainer.materialize(view)
        delta = [
            {"Pid": 4, "Cid": 2, "quantity": 3,
             "date": datetime.date(1996, 1, 1)},
        ]
        database.table("Order").insert_many(delta)
        report = maintainer.incremental_refresh(view, "Order", delta)
        assert report.policy == RECOMPUTE
        oracle = ExecutionEngine(database, engine=REFERENCE).execute(plan)
        assert self._stored(database, "mv_self") == sorted(
            tuple(sorted(r.items())) for r in oracle.rows()
        )


class TestEngineSelector:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ExecutionError):
            ExecutionEngine(Database(), engine="volcano")

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ExecutionError):
            ExecutionEngine(Database(), batch_size=0)

    def test_per_call_override(self):
        rows = make_data(3)
        plan = make_plan(3)
        database = load(rows)
        engine = ExecutionEngine(database)  # vectorized default
        via_override = engine.execute(plan, engine=REFERENCE)
        via_default = engine.execute(plan)
        assert [r for r in via_override.rows()] == [
            r for r in via_default.rows()
        ]

    def test_design_config_validates_engine(self):
        from repro.errors import MVPPError
        from repro.mvpp.config import DesignConfig

        with pytest.raises(MVPPError):
            DesignConfig(engine="volcano")
        assert DesignConfig(engine=REFERENCE).engine == REFERENCE

    def test_explain_shows_physical_tree(self):
        rows = make_data(1)
        engine = ExecutionEngine(load(rows))
        plan = make_plan(1)
        text = engine.explain(plan)
        assert "Scan[" in text
        assert engine.explain(plan, engine=REFERENCE) == plan.describe()


class TestBuildSideCache:
    @staticmethod
    def _join_plan():
        return Join(
            Relation("A", SCHEMAS["A"]),
            Relation("B", SCHEMAS["B"]),
            compare("B.a_fk", "=", column("A.id")),
        )

    def test_hit_replays_identical_io_and_rows(self):
        rows = make_data(11)
        plan = self._join_plan()
        database = load(rows)
        engine = ExecutionEngine(database, HASH)
        database.io.reset()
        first = engine.execute(plan)
        cold = (database.io.reads, database.io.writes)
        database.io.reset()
        second = engine.execute(plan)
        warm = (database.io.reads, database.io.writes)
        assert engine.build_cache.hits == 1
        assert warm == cold  # replayed charges keep accounting identical
        assert list(second.rows()) == list(first.rows())

    def test_update_invalidates(self):
        rows = make_data(11)
        plan = self._join_plan()
        database = load(rows)
        engine = ExecutionEngine(database, HASH)
        engine.execute(plan)
        database.table("B").insert({"B.id": 99, "B.a_fk": 0, "B.w": 1})
        result = engine.execute(plan)  # validity check misses, rebuilds
        assert engine.build_cache.hits == 0
        assert any(row["B.id"] == 99 for row in result.rows())

    def test_register_bumps_version(self):
        rows = make_data(11)
        plan = self._join_plan()
        database = load(rows)
        engine = ExecutionEngine(database, HASH)
        engine.execute(plan)
        replacement = Table(SCHEMAS["B"], blocking_factor=3)
        database.register("B", replacement)
        result = engine.execute(plan)
        assert engine.build_cache.hits == 0
        assert list(result.rows()) == []

    def test_named_invalidation(self):
        cache = BuildSideCache()
        token = ("hash-build", "sig", ("B.a_fk",))
        cache.store(token, (("B", 0, 3),), [[1]], 1, {}, 1, 0, ("B",))
        cache.invalidate("A")
        assert len(cache) == 1
        cache.invalidate("B")
        assert len(cache) == 0

    def test_fifo_eviction(self):
        cache = BuildSideCache(max_entries=2)
        for i in range(3):
            cache.store(
                ("hash-build", f"sig{i}", ()), (), [], 0, {}, 0, 0, ("B",)
            )
        assert len(cache) == 2
        assert cache.lookup(("hash-build", "sig0", ()), ()) is None


class TestColumnView:
    def _table(self):
        table = Table(SCHEMAS["A"], blocking_factor=3)
        table.insert_many(
            [{"A.id": i, "A.v": i * 2} for i in range(4)], count_io=False
        )
        return table

    def test_columns_match_rows(self):
        table = self._table()
        view = table.column_view()
        assert view.column("A.id") == [0, 1, 2, 3]
        assert view.column("A.v") == [0, 2, 4, 6]

    def test_insert_invalidates(self):
        table = self._table()
        view = table.column_view()
        assert view.column("A.id") == [0, 1, 2, 3]
        table.insert({"A.id": 9, "A.v": 9})
        assert view.column("A.id") == [0, 1, 2, 3, 9]

    def test_clear_invalidates(self):
        table = self._table()
        view = table.column_view()
        view.column("A.id")
        table.clear()
        assert view.column("A.id") == []

    def test_column_read_charges_no_io(self):
        table = self._table()
        before = table.io.snapshot()
        table.column_view().column("A.v")
        assert table.io.since(before).total == 0


class TestDeprecatedShims:
    def test_free_functions_warn_and_delegate(self):
        from repro.executor import iterators

        table = Table(SCHEMAS["A"], blocking_factor=3)
        table.insert_many(
            [{"A.id": i, "A.v": i} for i in range(5)], count_io=False
        )
        with pytest.warns(DeprecationWarning, match="linear_select"):
            result = iterators.linear_select(
                table, compare("A.v", ">", literal(2))
            )
        assert result.cardinality == 2
        with pytest.warns(DeprecationWarning, match="project_table"):
            projected = iterators.project_table(table, ["A.v"])
        assert projected.schema.attribute_names == ("A.v",)

    def test_planner_rejects_unbound_without_schema(self):
        planner = PhysicalPlanner(database=None, require_tables=True)
        with pytest.raises(ExecutionError):
            planner.lower(Relation("A", SCHEMAS["A"]))
