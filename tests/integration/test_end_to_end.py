"""Integration tests: the full pipeline from SQL to measured block I/O.

The strongest correctness check in the repository: for both the paper
workload and random synthetic workloads, every query answered *through
the designed materialized views* returns exactly the same rows as the
same query executed directly against base data, and the designed views
reduce total measured query I/O.
"""

import pytest

from repro.executor.engine import load_database
from repro.warehouse import DataWarehouse
from repro.workload import (
    GeneratorConfig,
    generate_workload,
    paper_rows,
    paper_workload,
    synthetic_rows,
)


def row_key(table):
    return sorted(tuple(sorted(r.items())) for r in table.rows())


class TestPaperWorkloadEndToEnd:
    @pytest.fixture(scope="class")
    def warehouse(self):
        wh = DataWarehouse.from_workload(paper_workload())
        wh.design()
        for relation, rows in paper_rows(scale=0.05, seed=42).items():
            wh.load(relation, rows)
        wh.materialize()
        return wh

    def test_every_query_correct_through_views(self, warehouse):
        for name in ("Q1", "Q2", "Q3", "Q4"):
            with_views, _ = warehouse.execute(name, use_views=True)
            without, _ = warehouse.execute(name, use_views=False)
            assert row_key(with_views) == row_key(without), name

    def test_q1_matches_handwritten_reference(self, warehouse):
        result, _ = warehouse.execute("Q1")
        division = warehouse.database.table("Division")
        product = warehouse.database.table("Product")
        la = {
            r["Division.Did"]
            for r in division.rows()
            if r["Division.city"] == "LA"
        }
        expected = sorted(
            r["Product.name"] for r in product.rows() if r["Product.Did"] in la
        )
        assert sorted(r["Product.name"] for r in result.rows()) == expected

    def test_design_reduces_weighted_io(self, warehouse):
        workload = paper_workload()
        weighted_views = weighted_plain = 0.0
        for spec in workload.queries:
            _, io_views = warehouse.execute(spec.name, use_views=True)
            _, io_plain = warehouse.execute(spec.name, use_views=False)
            weighted_views += spec.frequency * io_views.total
            weighted_plain += spec.frequency * io_plain.total
        assert weighted_views < weighted_plain


class TestSyntheticWorkloadsEndToEnd:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_views_preserve_results(self, seed):
        generated = generate_workload(
            GeneratorConfig(
                num_relations=4,
                num_queries=3,
                max_query_relations=3,
                min_cardinality=2_000,
                max_cardinality=20_000,
                seed=seed,
            )
        )
        warehouse = DataWarehouse.from_workload(generated.workload)
        warehouse.design(rotations=1)
        for relation, rows in synthetic_rows(generated, scale=0.02, seed=seed).items():
            warehouse.load(relation, rows)
        warehouse.materialize()
        for spec in generated.workload.queries:
            with_views, _ = warehouse.execute(spec.name, use_views=True)
            without, _ = warehouse.execute(spec.name, use_views=False)
            assert row_key(with_views) == row_key(without), (seed, spec.name)

    def test_hash_join_engine_agrees(self):
        generated = generate_workload(
            GeneratorConfig(num_relations=4, num_queries=3, seed=9)
        )
        from repro.executor.engine import HASH

        nested = DataWarehouse.from_workload(generated.workload)
        hashed = DataWarehouse.from_workload(generated.workload, join_method=HASH)
        data = synthetic_rows(generated, scale=0.02, seed=9)
        for wh in (nested, hashed):
            wh.design(rotations=1)
            for relation, rows in data.items():
                wh.load(relation, rows)
            wh.materialize()
        for spec in generated.workload.queries:
            a, _ = nested.execute(spec.name)
            b, _ = hashed.execute(spec.name)
            assert row_key(a) == row_key(b), spec.name


class TestDesignPipelineStability:
    def test_design_is_deterministic(self):
        workload = paper_workload()
        a = DataWarehouse.from_workload(workload).design()
        b = DataWarehouse.from_workload(paper_workload()).design()
        assert a.materialized_names == b.materialized_names
        assert a.total_cost == pytest.approx(b.total_cost)

    def test_statistics_resync_changes_estimates_not_results(self):
        wh = DataWarehouse.from_workload(paper_workload())
        wh.design()
        data = paper_rows(scale=0.02, seed=13)
        for relation, rows in data.items():
            wh.load(relation, rows)
        wh.materialize()
        before, _ = wh.execute("Q2")
        wh.sync_statistics()
        after, _ = wh.execute("Q2")
        assert row_key(before) == row_key(after)
