"""Integration test: ``repro profile`` covers all four pipeline phases."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.export import PHASES, validate_profile


@pytest.fixture(autouse=True)
def _restore_obs_state():
    yield
    obs.disable()


@pytest.fixture(scope="module")
def profile_document(tmp_path_factory):
    target = tmp_path_factory.mktemp("profile") / "trace.json"
    try:
        assert (
            main(
                [
                    "profile",
                    "--workload",
                    "paper",
                    "--scale",
                    "0.005",
                    "--trace-json",
                    str(target),
                ]
            )
            == 0
        )
    finally:
        obs.disable()
    return json.loads(target.read_text())


class TestProfileCommand:
    def test_document_passes_schema_validation(self, profile_document):
        assert validate_profile(profile_document) == []

    def test_all_four_phases_have_spans_and_wall_time(self, profile_document):
        for phase in PHASES:
            bucket = profile_document["phases"][phase]
            assert bucket["spans"] > 0, phase
            assert bucket["wall_ms"] > 0, phase

    def test_span_tree_covers_pipeline_stages(self, profile_document):
        names = set()

        def walk(node):
            names.add(node["name"])
            for child in node["children"]:
                walk(child)

        for root in profile_document["spans"]:
            walk(root)
        for expected in (
            "generation.design",
            "generation.merge",
            "selection.figure9",
            "execution.warehouse_query",
            "execution.query",
            "maintenance.refresh",
            "maintenance.update",
        ):
            assert expected in names

    def test_io_counters_and_drift_gauges_present(self, profile_document):
        metrics = profile_document["metrics"]
        assert metrics["counters"]["storage.blocks_read"] > 0
        assert metrics["counters"]["executor.blocks_read"] > 0
        assert any(
            key.startswith("warehouse.cost_drift_ratio")
            for key in metrics["gauges"]
        )
        assert any(
            key.startswith("maintenance.io{policy=")
            for key in metrics["histograms"]
        )

    def test_selection_decisions_emitted_as_events(self, profile_document):
        decisions = []

        def walk(node):
            if node["name"] == "selection.figure9":
                decisions.extend(
                    e for e in node["events"] if e["name"] == "decision"
                )
            for child in node["children"]:
                walk(child)

        for root in profile_document["spans"]:
            walk(root)
        assert decisions
        assert all(
            {"vertex", "decision", "weight"} <= set(d) for d in decisions
        )

    def test_json_stdout_format(self, capsys):
        try:
            assert (
                main(
                    [
                        "profile",
                        "--workload",
                        "paper",
                        "--scale",
                        "0.002",
                        "--format",
                        "json",
                    ]
                )
                == 0
            )
        finally:
            obs.disable()
        document = json.loads(capsys.readouterr().out)
        assert validate_profile(document) == []

    def test_profile_leaves_obs_enabled_state_contained(self, profile_document):
        # module fixture disabled obs afterwards; tier-1 default is off
        assert not obs.enabled()

    def test_bad_scale_rejected(self, capsys):
        assert main(["profile", "--workload", "paper", "--scale", "0"]) == 1
        assert "error:" in capsys.readouterr().err
