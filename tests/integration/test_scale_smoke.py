"""Scale smoke tests: the pipeline stays fast and sound on wide inputs."""

import time

import pytest

from repro.mvpp import MVPPCostCalculator, generate_mvpps, select_views
from repro.workload import GeneratorConfig, generate_workload


class TestWideWorkloads:
    def test_fifteen_relations_fifteen_queries(self):
        workload = generate_workload(
            GeneratorConfig(
                num_relations=15,
                num_queries=15,
                max_query_relations=5,
                max_fanout=3,
                seed=99,
            )
        ).workload
        start = time.perf_counter()
        mvpp = generate_mvpps(workload, rotations=2)[0]
        calc = MVPPCostCalculator(mvpp)
        result = select_views(mvpp, calc, refine=True)
        elapsed = time.perf_counter() - start
        mvpp.validate()
        assert elapsed < 30.0  # generous CI bound; typically well under 5s
        assert (
            calc.breakdown(result.materialized).total
            <= calc.breakdown(()).total + 1e-6
        )

    def test_wide_query_uses_greedy_join_order(self):
        """A 12-relation query exceeds the DP cap and must still optimize
        via the greedy fallback."""
        from repro.optimizer.heuristics import optimize_query
        from repro.optimizer.cardinality import CardinalityEstimator
        from repro.sql.translator import parse_query

        generated = generate_workload(
            GeneratorConfig(
                num_relations=12,
                num_queries=1,
                max_fanout=3,
                seed=5,
            )
        )
        workload = generated.workload
        # Build one query over every relation, joined along FK edges.
        joins = []
        for relation, targets in generated.foreign_keys.items():
            for target in targets:
                joins.append(f"{relation}.{target}_fk = {target}.id")
        sql = (
            "SELECT R0.val FROM "
            + ", ".join(generated.foreign_keys)
            + " WHERE "
            + " AND ".join(joins)
        )
        plan = parse_query(sql, workload.catalog)
        estimator = CardinalityEstimator(workload.statistics)
        start = time.perf_counter()
        optimized = optimize_query(plan, estimator)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0
        assert optimized.base_relations() == plan.base_relations()

    def test_all_rotations_on_ten_queries(self):
        workload = generate_workload(
            GeneratorConfig(
                num_relations=8,
                num_queries=10,
                max_query_relations=4,
                seed=77,
            )
        ).workload
        mvpps = generate_mvpps(workload)
        assert len(mvpps) == 10
        for mvpp in mvpps:
            mvpp.validate()
