"""Fixture tests for the Layer-2 code analyzer: every rule must fire on a
snippet seeding its violation, and stay silent on the clean variant."""

import textwrap

import pytest

from repro.errors import LintError
from repro.lint import Severity, Suppressions, lint_paths, lint_self, lint_source


def rules_fired(source):
    report = lint_source(textwrap.dedent(source), path="snippet.py")
    return sorted(d.rule for d in report.diagnostics)


class TestC101SetIteration:
    def test_for_loop_over_set_literal(self):
        assert rules_fired("""
            for x in {1, 2, 3}:
                print(x)
        """) == ["C101"]

    def test_comprehension_over_set_call(self):
        assert rules_fired("""
            out = [x for x in set(items)]
        """) == ["C101"]

    def test_ordering_sink_call(self):
        assert rules_fired("""
            pairs = list({"a", "b"})
        """) == ["C101"]

    def test_join_over_set_comprehension(self):
        assert rules_fired("""
            text = ", ".join({v.name for v in vs})
        """) == ["C101"]

    def test_sorted_wrapping_is_clean(self):
        assert rules_fired("""
            for x in sorted({3, 1, 2}, key=int):
                print(x)
        """) == []

    def test_named_set_variable_not_resolved(self):
        # conservative: a Name is never treated as a set
        assert rules_fired("""
            items = compute()
            for x in items:
                print(x)
        """) == []


class TestC102UnkeyedOrdering:
    def test_sorted_over_set_without_key(self):
        assert rules_fired("""
            order = sorted({b.vertex for b in found})
        """) == ["C102"]

    def test_min_over_frozenset(self):
        assert rules_fired("""
            first = min(frozenset(xs))
        """) == ["C102"]

    def test_key_keyword_is_clean(self):
        assert rules_fired("""
            order = sorted({b for b in found}, key=str)
        """) == []

    def test_sorted_over_list_is_clean(self):
        assert rules_fired("""
            order = sorted([3, 1, 2])
        """) == []


class TestC103UnseededRandom:
    def test_module_level_draw(self):
        assert rules_fired("""
            import random
            pick = random.choice(options)
        """) == ["C103"]

    def test_from_import_of_draw_names(self):
        assert rules_fired("""
            from random import shuffle
        """) == ["C103"]

    def test_seeded_instance_is_clean(self):
        assert rules_fired("""
            import random
            rng = random.Random(42)
            pick = rng.choice(options)
        """) == []


class TestC104WallClock:
    def test_time_time_on_design_path(self):
        assert rules_fired("""
            import time
            started = time.time()
        """) == ["C104"]

    def test_datetime_now(self):
        assert rules_fired("""
            import datetime
            stamp = datetime.datetime.now()
        """) == ["C104"]

    def test_obs_path_exempt(self):
        source = "import time\nstarted = time.perf_counter()\n"
        report = lint_source(source, path="repro/obs/tracing.py")
        assert [d.rule for d in report.diagnostics] == []

    def test_benchmarks_path_exempt(self):
        source = "import time\nstarted = time.perf_counter()\n"
        report = lint_source(source, path="benchmarks/bench_design.py")
        assert [d.rule for d in report.diagnostics] == []


class TestC105MutableDefaults:
    def test_list_display_default(self):
        assert rules_fired("""
            def f(items=[]):
                return items
        """) == ["C105"]

    def test_dict_call_default_and_kwonly(self):
        assert rules_fired("""
            def f(a, cache=dict(), *, seen=set()):
                return a
        """) == ["C105", "C105"]

    def test_none_default_is_clean(self):
        assert rules_fired("""
            def f(items=None):
                return items or []
        """) == []


class TestO001ObsNames:
    def test_uppercase_name_rejected(self):
        assert rules_fired("""
            registry.counter("Executor.QueryIO").inc(1)
        """) == ["O001"]

    def test_unknown_subsystem_prefix_rejected(self):
        assert rules_fired("""
            registry.histogram("nonsense.latency").observe(1.0)
        """) == ["O001"]

    def test_single_segment_name_rejected(self):
        assert rules_fired("""
            obs.journal_event("refresh")
        """) == ["O001"]

    def test_known_prefix_and_shape_is_clean(self):
        assert rules_fired("""
            registry.counter("executor.blocks_read").inc(12)
            registry.gauge("warehouse.cost_drift_ratio", query="Q1").set(1.0)
            obs.journal_event("resilience.refresh.begin", view="mv_a")
        """) == []

    def test_span_names_checked_too(self):
        assert rules_fired("""
            with obs.span("Bad Span Name"):
                pass
        """) == ["O001"]

    def test_non_literal_first_argument_not_resolved(self):
        # conservative: only string literals are checked
        assert rules_fired("""
            registry.counter(metric_name).inc(1)
        """) == []

    def test_unrelated_call_names_ignored(self):
        assert rules_fired("""
            print("Not An Obs Name")
            logger.info("Free Text")
        """) == []

    def test_suppression_honored(self):
        report = lint_source(
            'registry.counter("Legacy.Name")  # lint: ignore[O001]\n',
            path="s.py",
        )
        assert report.diagnostics == []
        assert report.suppressed == 1


class TestSuppressions:
    def test_parse_specific_and_blanket(self):
        sup = Suppressions.parse(
            "x = 1  # lint: ignore[C101, c102]\n"
            "y = 2  # lint: ignore\n"
            "z = 3\n"
        )
        assert sup.covers(1, "C101")
        assert sup.covers(1, "C102")
        assert not sup.covers(1, "C103")
        assert sup.covers(2, "C105")
        assert not sup.covers(3, "C101")
        assert not sup.covers(None, "C101")

    def test_suppressed_finding_counted_not_reported(self):
        report = lint_source(
            "order = sorted({1, 2})  # lint: ignore[C102]\n", path="s.py"
        )
        assert report.diagnostics == []
        assert report.suppressed == 1

    def test_suppression_of_other_rule_does_not_silence(self):
        report = lint_source(
            "order = sorted({1, 2})  # lint: ignore[C101]\n", path="s.py"
        )
        assert [d.rule for d in report.diagnostics] == ["C102"]
        assert report.suppressed == 0


class TestEntryPoints:
    def test_syntax_error_raises_lint_error(self):
        with pytest.raises(LintError, match="cannot parse"):
            lint_source("def broken(:\n", path="bad.py")

    def test_lint_paths_relativizes_and_merges(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("for x in {1}:\n    pass\n")
        (tmp_path / "pkg" / "b.py").write_text("y = sorted([1])\n")
        report = lint_paths([tmp_path / "pkg"], base=tmp_path)
        assert [d.rule for d in report.diagnostics] == ["C101"]
        assert report.diagnostics[0].location.file == "pkg/a.py"

    def test_own_sources_are_clean(self):
        """The repo-wide gate: repro's own code has no violations."""
        report = lint_self()
        assert report.diagnostics == [], "\n".join(
            d.render() for d in report.diagnostics
        )
        # the documented intentional exemption in warehouse.py
        assert report.suppressed >= 1

    def test_diagnostics_carry_severity_and_location(self):
        report = lint_source("for x in {1}:\n    pass\n", path="s.py")
        (diag,) = report.diagnostics
        assert diag.severity is Severity.ERROR
        assert diag.location.file == "s.py"
        assert diag.location.line == 1
        assert report.exit_code == 1
