"""Synthetic-package tests for the concurrency (X1xx) and effect (E2xx)
analyzers.

Each test builds a tiny fake package with
:meth:`PackageContext.build` — (display path, dotted module, source)
triples — crafted so exactly one rule fires, then asserts on the rule id
and the located line.  The closing tests pin the negative space: the
conservative analyzer stays silent on the patterns it must not flag, and
the real ``src/repro`` tree is clean.
"""

import textwrap

from repro.lint.concurrency import (
    PackageContext,
    lint_concurrency,
)
from repro.lint.effects import lint_effects


def build(**modules):
    """``build(pkg_worker="...")`` -> context with module pkg/worker.py."""
    files = []
    for dotted_underscored, source in modules.items():
        dotted = dotted_underscored.replace("__", ".")
        path = dotted.replace(".", "/") + ".py"
        files.append((path, dotted, textwrap.dedent(source)))
    return PackageContext.build(files)


def rules_of(report):
    return sorted(d.rule for d in report.diagnostics)


SUBMIT = """
    from pkg.worker import crunch

    def fan_out(executor, items):
        return executor.map(crunch, items)
"""


class TestConcurrencyRules:
    def test_x101_global_mutation_in_submitted_function(self):
        ctx = build(
            pkg__driver=SUBMIT,
            pkg__worker="""
                RESULTS = []

                def crunch(item):
                    RESULTS.append(item)
                    return item
            """,
        )
        report = lint_concurrency(ctx)
        assert rules_of(report) == ["X101"]
        diagnostic = report.diagnostics[0]
        assert "RESULTS" in diagnostic.message
        assert diagnostic.location.file == "pkg/worker.py"

    def test_x101_transitive_through_helper(self):
        ctx = build(
            pkg__driver=SUBMIT,
            pkg__worker="""
                COUNTS = {}

                def record(item):
                    COUNTS[item] = 1

                def crunch(item):
                    record(item)
                    return item
            """,
        )
        report = lint_concurrency(ctx)
        assert rules_of(report) == ["X101"]
        assert "record" in report.diagnostics[0].message

    def test_x102_submitted_method_mutates_self(self):
        ctx = build(
            pkg__worker="""
                class Builder:
                    def __init__(self):
                        self.seen = []

                    def crunch(self, item):
                        self.seen.append(item)
                        return item

                    def run(self, executor, items):
                        return executor.map(self.crunch, items)
            """,
        )
        report = lint_concurrency(ctx)
        assert rules_of(report) == ["X102"]
        assert "self.seen" in report.diagnostics[0].message

    def test_x102_suppression_with_justification(self):
        ctx = build(
            pkg__worker="""
                class Builder:
                    def __init__(self):
                        self.seen = []

                    def crunch(self, item):
                        self.seen.append(item)  # lint: ignore[X102]
                        return item

                    def run(self, executor, items):
                        return executor.map(self.crunch, items)
            """,
        )
        report = lint_concurrency(ctx)
        assert report.diagnostics == []
        assert report.suppressed == 1

    def test_x103_cache_write_outside_known_sites(self):
        ctx = build(
            pkg__rogue="""
                def tamper(calculator, key, value):
                    calculator.cost_cache.store(key, value)
            """,
        )
        report = lint_concurrency(ctx)
        assert rules_of(report) == ["X103"]
        assert "cost_cache.store" in report.diagnostics[0].message

    def test_x103_allows_registered_sites(self):
        ctx = build(
            repro__mvpp__cost="""
                def owner(self, key, value):
                    self.cost_cache.store(key, value)
            """,
        )
        assert lint_concurrency(ctx).diagnostics == []

    def test_x104_unseeded_random(self):
        ctx = build(
            pkg__chance="""
                import random

                def pick(items):
                    return random.Random().choice(items)
            """,
        )
        assert rules_of(lint_concurrency(ctx)) == ["X104"]

    def test_x104_seeded_random_is_fine(self):
        ctx = build(
            pkg__chance="""
                import random

                def pick(items, seed):
                    return random.Random(seed).choice(items)
            """,
        )
        assert lint_concurrency(ctx).diagnostics == []

    def test_x105_wall_clock_sleep(self):
        ctx = build(
            pkg__sched="""
                import time

                def wait():
                    time.sleep(0.1)
            """,
        )
        assert rules_of(lint_concurrency(ctx)) == ["X105"]

    def test_x105_exempt_in_obs(self):
        ctx = build(
            repro__obs__pacing="""
                import time

                def wait():
                    time.sleep(0.1)
            """,
        )
        assert lint_concurrency(ctx).diagnostics == []

    def test_x106_raw_thread(self):
        ctx = build(
            pkg__spawn="""
                import threading

                def go(fn):
                    worker = threading.Thread(target=fn)
                    worker.start()
                    return worker
            """,
        )
        assert rules_of(lint_concurrency(ctx)) == ["X106"]

    def test_x106_exempt_inside_parallel(self):
        ctx = build(
            repro__parallel__executor="""
                import threading

                def make_lock():
                    return threading.Lock()
            """,
        )
        assert lint_concurrency(ctx).diagnostics == []

    def test_pure_submission_is_clean(self):
        ctx = build(
            pkg__driver=SUBMIT,
            pkg__worker="""
                def crunch(item):
                    local = [item]
                    local.append(item * 2)
                    return sum(local)
            """,
        )
        assert lint_concurrency(ctx).diagnostics == []

    def test_unresolvable_submission_is_skipped(self):
        # Conservative by construction: a name the index cannot resolve
        # never produces a finding.
        ctx = build(
            pkg__driver="""
                def fan_out(executor, fn, items):
                    return executor.map(fn, items)
            """,
        )
        assert lint_concurrency(ctx).diagnostics == []


COST_HEADER = "repro__mvpp__cost"


class TestEffectRules:
    def test_e201_catalog_mutation_on_cost_path(self):
        ctx = build(
            **{
                COST_HEADER: """
                    def access_cost(catalog, vertex):
                        catalog.set_cardinality(vertex, 10)
                        return 1.0
                """
            }
        )
        report = lint_effects(ctx)
        assert rules_of(report) == ["E201"]
        assert "set_cardinality" in report.diagnostics[0].message

    def test_e201_external_attribute_store(self):
        ctx = build(
            **{
                COST_HEADER: """
                    def access_cost(stats, vertex):
                        stats.blocks = 0
                        return 1.0
                """
            }
        )
        assert rules_of(lint_effects(ctx)) == ["E201"]

    def test_e202_io_on_cost_path(self):
        ctx = build(
            **{
                COST_HEADER: """
                    def access_cost(vertex):
                        print(vertex)
                        return 1.0
                """
            }
        )
        assert rules_of(lint_effects(ctx)) == ["E202"]

    def test_e202_reachable_helper_in_other_module(self):
        ctx = build(
            **{
                COST_HEADER: """
                    from repro.mvpp.helpers import dump

                    def access_cost(vertex):
                        dump(vertex)
                        return 1.0
                """,
                "repro__mvpp__helpers": """
                    import os

                    def dump(vertex):
                        os.remove(str(vertex))
                """,
            }
        )
        report = lint_effects(ctx)
        assert rules_of(report) == ["E202"]
        assert report.diagnostics[0].location.file == "repro/mvpp/helpers.py"

    def test_e202_obs_receiver_exempt(self):
        ctx = build(
            **{
                COST_HEADER: """
                    def access_cost(registry, vertex):
                        registry.counter("mvpp.costs").inc()
                        return 1.0
                """
            }
        )
        assert lint_effects(ctx).diagnostics == []

    def test_e203_argument_mutation_warns(self):
        ctx = build(
            **{
                COST_HEADER: """
                    def access_cost(vertex, cache):
                        cache[vertex] = 1.0
                        return cache[vertex]
                """
            }
        )
        report = lint_effects(ctx)
        assert rules_of(report) == ["E203"]
        assert report.exit_code == 0  # warning, not error

    def test_e203_self_mutation_allowed(self):
        ctx = build(
            **{
                COST_HEADER: """
                    class Calculator:
                        def access_cost(self, vertex):
                            self._memo[vertex] = 1.0
                            return self._memo[vertex]
                """
            }
        )
        assert lint_effects(ctx).diagnostics == []

    def test_non_cost_modules_not_analyzed(self):
        ctx = build(
            pkg__elsewhere="""
                def noisy():
                    print("fine outside cost paths")
            """,
        )
        assert lint_effects(ctx).diagnostics == []


class TestRealPackageIsClean:
    def test_src_repro_concurrency_and_effects(self):
        from pathlib import Path

        import repro

        package_root = Path(repro.__file__).resolve().parent
        ctx = PackageContext.from_package(
            package_root, base=package_root.parent
        )
        concurrency = lint_concurrency(ctx)
        effects = lint_effects(ctx)
        assert concurrency.diagnostics == []
        assert effects.diagnostics == []
        # The documented CostCache memo-dict contract is suppressed in
        # place, not silently ignored.  Exactly the two writes in
        # MVPPCostCalculator: the distributed calculator shares the
        # traversal through hooks instead of duplicating the cache.
        assert effects.suppressed >= 2

    def test_submission_sites_resolve(self):
        from pathlib import Path

        import repro

        package_root = Path(repro.__file__).resolve().parent
        ctx = PackageContext.from_package(
            package_root, base=package_root.parent
        )
        sites = {
            (module.path, target.name) for module, _, target in ctx.submissions()
        }
        assert ("repro/mvpp/exhaustive.py", "_chunk_best") in sites
        assert len(sites) >= 4
