"""Unit tests for the shared lint framework (severities, registry, reports)."""

import pytest

from repro import obs
from repro.errors import LintError
from repro.lint import (
    Diagnostic,
    LintReport,
    Location,
    Severity,
    all_rules,
    get_rule,
    register_rule,
    rule_ids,
    rules_for,
)


class TestSeverity:
    def test_ordering(self):
        assert Severity.NOTE < Severity.WARNING < Severity.ERROR

    def test_labels(self):
        assert [s.label for s in Severity] == ["note", "warning", "error"]

    def test_parse_round_trips(self):
        for severity in Severity:
            assert Severity.parse(severity.label) is severity
        assert Severity.parse("ERROR") is Severity.ERROR

    def test_parse_unknown_rejected(self):
        with pytest.raises(LintError, match="unknown severity"):
            Severity.parse("fatal")


class TestLocation:
    def test_source_location_renders_file_line_column(self):
        loc = Location(file="src/repro/x.py", line=12, column=4)
        assert loc.render() == "src/repro/x.py:12:4"

    def test_vertex_location_renders_mvpp_and_vertex(self):
        assert Location(mvpp="m1", vertex="tmp3").render() == "m1::tmp3"

    def test_empty_location(self):
        assert Location().render() == "<workload>"


class TestRegistry:
    def test_known_rules_registered(self):
        ids = rule_ids()
        for expected in ("W001", "M003", "D001", "C101", "C105"):
            assert expected in ids

    def test_get_rule_unknown_rejected(self):
        with pytest.raises(LintError, match="unknown lint rule"):
            get_rule("Z999")

    def test_rules_for_scope_partitions(self):
        from repro.lint import SCOPES

        scoped = {r.rule_id for s in SCOPES for r in rules_for(s)}
        assert scoped == set(rule_ids())
        assert len(all_rules()) == len(rule_ids())

    def test_rules_for_unknown_scope_rejected(self):
        with pytest.raises(LintError, match="unknown rule scope"):
            rules_for("cosmic")

    def test_register_rule_override_wins(self):
        original = get_rule("W004")
        try:
            @register_rule("W004", scope="workload",
                           severity=Severity.ERROR, summary="stricter")
            def stricter(ctx):
                return []

            assert get_rule("W004").severity is Severity.ERROR
            assert get_rule("W004").summary == "stricter"
        finally:
            register_rule(
                "W004", scope=original.scope, severity=original.severity,
                summary=original.summary, paper=original.paper,
            )(original.check)

    def test_rule_diagnostic_prefills_and_overrides(self):
        rule = get_rule("M005")
        default = rule.diagnostic("msg")
        assert default.rule == "M005"
        assert default.severity is rule.severity
        escalated = rule.diagnostic("msg", severity=Severity.ERROR)
        assert escalated.severity is Severity.ERROR


def _diag(rule, severity, line=1):
    return Diagnostic(
        rule=rule, severity=severity, message="m",
        location=Location(file="f.py", line=line),
    )


class TestLintReport:
    def test_counts_and_exit_code(self):
        report = LintReport(target="t")
        report.extend([
            _diag("C101", Severity.ERROR),
            _diag("M001", Severity.WARNING),
            _diag("W004", Severity.NOTE),
        ])
        assert report.counts() == {"error": 1, "warning": 1, "note": 1}
        assert report.has_errors
        assert report.exit_code == 1
        assert LintReport().exit_code == 0

    def test_merge_accumulates(self):
        a = LintReport(suppressed=1)
        a.extend([_diag("C101", Severity.ERROR)])
        b = LintReport(suppressed=2)
        b.extend([_diag("C102", Severity.ERROR)])
        a.merge(b)
        assert len(a.diagnostics) == 2
        assert a.suppressed == 3

    def test_sorted_orders_severity_then_location(self):
        report = LintReport()
        report.extend([
            _diag("W004", Severity.NOTE, line=1),
            _diag("C102", Severity.ERROR, line=9),
            _diag("C101", Severity.ERROR, line=3),
        ])
        ordered = report.sorted()
        assert [d.rule for d in ordered] == ["C101", "C102", "W004"]

    def test_raise_on_errors(self):
        report = LintReport(target="unit")
        report.extend([_diag("C103", Severity.ERROR)])
        with pytest.raises(LintError, match=r"1 error\(s\) in unit.*C103"):
            report.raise_on_errors()
        LintReport().raise_on_errors()  # no errors: no raise

    def test_publish_exports_counters(self):
        was_enabled = obs.enabled()
        obs.enable(reset=True)
        try:
            report = LintReport(suppressed=2)
            report.extend([
                _diag("C101", Severity.ERROR),
                _diag("C101", Severity.ERROR),
            ])
            report.publish()
            counter = obs.metrics().counter(
                "lint.diagnostics", rule="C101", severity="error"
            )
            assert counter.value == 2
            assert obs.metrics().counter("lint.suppressed").value == 2
        finally:
            if not was_enabled:
                obs.disable()
