"""Emitter v2 tests: SARIF partialFingerprints, the GitHub annotation
format, JSON fingerprints, and the new CLI flags (``--cache-dir``,
``--diff``, ``--baseline``, ``--write-baseline``, ``--format github``)."""

import json
import subprocess

import pytest

from repro.cli import main
from repro.lint import (
    Diagnostic,
    LintReport,
    Location,
    Severity,
    diagnostic_fingerprint,
    render_github,
    report_to_json,
    report_to_sarif,
)
from repro.lint.code import lint_source
from repro.lint.emitters import FINGERPRINT_KEY

UNSEEDED = "import random\n\ndef draw():\n    return random.random()\n"


def sample_report():
    report = LintReport(target="sample")
    report.diagnostics = [
        Diagnostic(
            rule="C105",
            severity=Severity.ERROR,
            message="function 'f' has a mutable default argument",
            location=Location(file="pkg/mod.py", line=3, column=6),
            hint="default to None",
            fingerprint="abcd1234abcd1234",
        ),
        Diagnostic(
            rule="M003",
            severity=Severity.WARNING,
            message="vertex is never materialized",
            location=Location(mvpp="paper", vertex="tmp4"),
        ),
    ]
    return report


class TestFingerprints:
    def test_lint_source_stamps_fingerprints(self):
        report = lint_source(UNSEEDED, path="pkg/mod.py")
        assert report.diagnostics
        assert all(len(d.fingerprint) == 16 for d in report.diagnostics)

    def test_fingerprint_is_line_number_free(self):
        moved = "# pad\n# pad\n" + UNSEEDED
        first = lint_source(UNSEEDED, path="pkg/mod.py").diagnostics[0]
        second = lint_source(moved, path="pkg/mod.py").diagnostics[0]
        assert first.location.line != second.location.line
        assert first.fingerprint == second.fingerprint

    def test_fingerprint_distinguishes_identical_lines(self):
        doubled = UNSEEDED + "\ndef draw2():\n    return random.random()\n"
        report = lint_source(doubled, path="pkg/mod.py")
        fingerprints = [d.fingerprint for d in report.diagnostics]
        assert len(fingerprints) == len(set(fingerprints)) == 2

    def test_fallback_for_unstamped_diagnostics(self):
        bare = Diagnostic(
            rule="M003",
            severity=Severity.WARNING,
            message="vertex is never materialized",
            location=Location(mvpp="paper", vertex="tmp4"),
        )
        assert bare.fingerprint == ""
        assert len(diagnostic_fingerprint(bare)) == 16


class TestSarif:
    def test_results_carry_partial_fingerprints(self):
        document = report_to_sarif(sample_report())
        results = document["runs"][0]["results"]
        assert len(results) == 2
        for result in results:
            fingerprint = result["partialFingerprints"][FINGERPRINT_KEY]
            assert len(fingerprint) == 16
        assert (
            results[0]["partialFingerprints"][FINGERPRINT_KEY]
            == "abcd1234abcd1234"
        )


class TestJson:
    def test_diagnostics_carry_fingerprint_and_baselined_summary(self):
        report = sample_report()
        report.baselined = 2
        document = report_to_json(report)
        assert document["summary"]["baselined"] == 2
        assert document["diagnostics"][0]["fingerprint"] == "abcd1234abcd1234"


class TestGithubFormat:
    def test_error_annotation_golden(self):
        text = render_github(sample_report())
        lines = text.splitlines()
        assert lines[0] == (
            "::error file=pkg/mod.py,line=3,col=7,title=C105::"
            "function 'f' has a mutable default argument (hint: default to None)"
        )
        assert lines[1] == (
            "::warning title=M003::paper::tmp4: vertex is never materialized"
        )
        assert lines[2] == (
            "::notice title=repro-lint::1 error(s), 1 warning(s), 0 note(s)"
        )

    def test_newlines_escaped(self):
        report = LintReport()
        report.diagnostics = [
            Diagnostic(
                rule="C101",
                severity=Severity.ERROR,
                message="line one\nline two",
                location=Location(file="a.py", line=1),
            )
        ]
        assert "%0A" in render_github(report)
        assert "\nline two" not in render_github(report).splitlines()[0]


class TestCliFlags:
    def test_format_github(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("pick = sorted({1, 2})\n")
        assert main(["lint", "--path", str(bad), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=C102" in out

    def test_self_with_cache_dir_runs_twice(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["lint", "--self", "--cache-dir", str(cache)]) == 0
        assert any(cache.glob("*.json"))
        assert main(["lint", "--self", "--cache-dir", str(cache)]) == 0

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        bad = tmp_path / "pkg"
        bad.mkdir()
        (bad / "mod.py").write_text(UNSEEDED)
        baseline = tmp_path / "lint-baseline.json"
        assert (
            main(
                ["lint", "--path", str(bad), "--write-baseline", str(baseline)]
            )
            == 0
        )
        document = json.loads(baseline.read_text())
        assert document["schema"] == 1
        assert len(document["entries"]) == 1
        capsys.readouterr()
        assert (
            main(["lint", "--path", str(bad), "--baseline", str(baseline)]) == 0
        )
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_expired_baseline_entry_reported(self, tmp_path, capsys):
        bad = tmp_path / "pkg"
        bad.mkdir()
        (bad / "mod.py").write_text(UNSEEDED)
        baseline = tmp_path / "lint-baseline.json"
        main(["lint", "--path", str(bad), "--write-baseline", str(baseline)])
        (bad / "mod.py").write_text("def fixed():\n    return 1\n")
        capsys.readouterr()
        assert (
            main(["lint", "--path", str(bad), "--baseline", str(baseline)]) == 0
        )
        out = capsys.readouterr().out
        assert "expired" in out
        assert "--write-baseline" in out

    def test_self_diff_against_head(self, tmp_path, capsys):
        # The working tree may or may not have pending edits; the command
        # must succeed either way and only analyze the diff.
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True
        )
        if completed.returncode != 0:
            pytest.skip("not running inside a git checkout")
        assert main(["lint", "--self", "--diff", "HEAD"]) == 0

    def test_self_jobs(self, capsys):
        assert main(["lint", "--self", "--jobs", "4"]) == 0
