"""Tests for the incremental lint engine: content-hash caching, the
``--diff`` restriction against a real two-commit git repo, and baseline
add/expire semantics."""

import json
import subprocess

import pytest

from repro import obs
from repro.lint.incremental import (
    apply_baseline,
    changed_files,
    engine_fingerprint,
    file_key,
    lint_package,
    load_baseline,
    write_baseline,
)

CLEAN = "def fine():\n    return 1\n"
MUTABLE_DEFAULT = "def bad(x={}):\n    return x\n"
UNSEEDED = "import random\n\ndef draw():\n    return random.random()\n"


@pytest.fixture
def package(tmp_path):
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "a.py").write_text(UNSEEDED)
    (root / "b.py").write_text(CLEAN)
    return root


@pytest.fixture
def counters():
    obs.enable(reset=True)
    yield lambda name: obs.metrics().counter(name).value
    obs.disable()


class TestResultCache:
    def test_cold_then_warm(self, package, tmp_path, counters):
        cache_dir = tmp_path / "cache"
        first = lint_package(package, base=package.parent, cache_dir=cache_dir)
        assert counters("lint.cache.misses") == 3  # 2 files + package entry
        assert counters("lint.cache.hits") == 0
        assert counters("lint.files_analyzed") == 2

        second = lint_package(package, base=package.parent, cache_dir=cache_dir)
        assert counters("lint.cache.hits") == 3
        assert counters("lint.files_analyzed") == 2  # no new analysis
        assert [d.rule for d in second.diagnostics] == [
            d.rule for d in first.diagnostics
        ]
        assert second.suppressed == first.suppressed

    def test_edit_invalidates_only_that_file(self, package, tmp_path, counters):
        cache_dir = tmp_path / "cache"
        lint_package(package, base=package.parent, cache_dir=cache_dir)
        (package / "b.py").write_text(MUTABLE_DEFAULT)
        report = lint_package(package, base=package.parent, cache_dir=cache_dir)
        # a.py hits; b.py and the package digest miss.
        assert counters("lint.cache.hits") == 1
        assert counters("lint.files_analyzed") == 3  # 2 cold + 1 re-analyzed
        assert {d.rule for d in report.diagnostics} == {"C103", "C105"}

    def test_cache_key_covers_engine_identity(self, package):
        key = file_key(CLEAN)
        assert key != file_key(MUTABLE_DEFAULT)
        assert engine_fingerprint() in ("", engine_fingerprint())  # stable
        assert file_key(CLEAN) == key  # deterministic

    def test_parallel_jobs_match_serial(self, package, tmp_path):
        serial = lint_package(package, base=package.parent)
        threaded = lint_package(package, base=package.parent, jobs=4)
        assert [d.fingerprint for d in serial.diagnostics] == [
            d.fingerprint for d in threaded.diagnostics
        ]


class TestDiffRestriction:
    @pytest.fixture
    def repo(self, tmp_path):
        def git(*argv):
            subprocess.run(
                ["git", *argv], cwd=tmp_path, check=True, capture_output=True
            )

        git("init", ".")
        git("config", "user.email", "lint@test")
        git("config", "user.name", "lint")
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text(UNSEEDED)
        (pkg / "b.py").write_text(CLEAN)
        git("add", "-A")
        git("commit", "-m", "seed")
        (pkg / "b.py").write_text(MUTABLE_DEFAULT)
        return tmp_path

    def test_changed_files_lists_only_the_edit(self, repo):
        changed = changed_files("HEAD", base=repo, repo_root=repo)
        assert changed == {"pkg/b.py"}

    def test_diff_run_skips_unchanged_files(self, repo):
        changed = changed_files("HEAD", base=repo, repo_root=repo)
        report = lint_package(repo / "pkg", base=repo, changed=changed)
        # a.py's C103 is outside the diff; b.py's C105 is inside.
        assert [d.rule for d in report.diagnostics] == ["C105"]

    def test_unknown_revision_raises(self, repo):
        with pytest.raises(ValueError, match="git diff"):
            changed_files("no-such-rev", base=repo, repo_root=repo)


class TestBaseline:
    def test_round_trip_hides_known_findings(self, package, tmp_path):
        report = lint_package(package, base=package.parent)
        baseline_path = tmp_path / "lint-baseline.json"
        count = write_baseline(report, baseline_path)
        assert count == len(report.diagnostics) == 1

        fresh = lint_package(package, base=package.parent)
        expired = apply_baseline(fresh, load_baseline(baseline_path))
        assert fresh.diagnostics == []
        assert fresh.baselined == 1
        assert expired == []
        assert fresh.exit_code == 0

    def test_new_finding_still_fails(self, package, tmp_path):
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(lint_package(package, base=package.parent), baseline_path)
        (package / "b.py").write_text(MUTABLE_DEFAULT)
        report = lint_package(package, base=package.parent)
        apply_baseline(report, load_baseline(baseline_path))
        assert [d.rule for d in report.diagnostics] == ["C105"]
        assert report.exit_code == 1

    def test_fixed_finding_expires(self, package, tmp_path):
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(lint_package(package, base=package.parent), baseline_path)
        (package / "a.py").write_text(CLEAN.replace("fine", "fixed"))
        report = lint_package(package, base=package.parent)
        expired = apply_baseline(report, load_baseline(baseline_path))
        assert report.diagnostics == []
        assert report.baselined == 0
        assert len(expired) == 1
        assert expired[0]["rule"] == "C103"

    def test_fingerprint_survives_line_moves(self, package, tmp_path):
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(lint_package(package, base=package.parent), baseline_path)
        # Push the finding down three lines; the fingerprint must hold.
        (package / "a.py").write_text("# moved\n# down\n# a bit\n" + UNSEEDED)
        report = lint_package(package, base=package.parent)
        expired = apply_baseline(report, load_baseline(baseline_path))
        assert report.diagnostics == []
        assert report.baselined == 1
        assert expired == []

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text(json.dumps({"schema": 99, "entries": []}))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []
