"""End-to-end tests for ``repro lint`` and the ``DesignConfig.lint`` gate."""

import json

import pytest

from repro.cli import main
from repro.errors import LintError
from repro.lint import LINT_SCHEMA_VERSION
from repro.mvpp import DesignConfig, design
from repro.workload import paper_workload


class TestLintCommand:
    def test_paper_workload_exits_zero(self, capsys):
        assert main(["lint", "--workload", "paper"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_target_workload_only(self, capsys):
        assert main(["lint", "--workload", "paper", "--target", "workload"]) == 0

    def test_target_mvpp_with_rotations(self, capsys):
        assert (
            main(["lint", "--workload", "paper", "--target", "mvpp",
                  "--rotations", "1"])
            == 0
        )

    def test_self_exits_zero(self, capsys):
        assert main(["lint", "--self"]) == 0
        out = capsys.readouterr().out
        assert "suppressed" in out  # the documented warehouse.py exemption

    def test_path_lints_given_files(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("for x in {1, 2}:\n    pass\n")
        assert main(["lint", "--path", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "C101" in out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("pick = sorted({1, 2})\n")
        assert main(["lint", "--path", str(bad), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == LINT_SCHEMA_VERSION
        assert document["summary"]["error"] == 1
        assert document["diagnostics"][0]["rule"] == "C102"

    def test_sarif_format(self, capsys):
        assert main(["lint", "--workload", "paper", "--format", "sarif"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"C101", "M003", "W001", "D001"} <= rule_ids
        assert run["results"] == []

    def test_sarif_result_levels(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", "--path", str(bad), "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        (result,) = document["runs"][0]["results"]
        assert result["ruleId"] == "C104"
        assert result["level"] == "error"

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        assert (
            main(["lint", "--workload", "paper", "--format", "json",
                  "--output", str(target)])
            == 0
        )
        assert "written to" in capsys.readouterr().out
        assert json.loads(target.read_text())["summary"]["error"] == 0

    def test_rules_catalog(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("W001", "M001", "D001", "C101"):
            assert rule_id in out
        assert "Figure 4" in out  # paper anchors are shown


class TestDesignConfigLint:
    def test_design_with_lint_attaches_clean_report(self):
        result = design(paper_workload(), DesignConfig(lint=True))
        assert result.lint_report is not None
        assert result.lint_report.exit_code == 0
        assert result.lint_report.target.startswith("design on MVPP")

    def test_design_without_lint_has_no_report(self):
        result = design(paper_workload(), DesignConfig())
        assert result.lint_report is None

    def test_lint_gate_raises_on_errors(self, monkeypatch):
        import repro.lint.semantic as semantic

        def inject(mvpp, materialized, calculator=None, workload=None,
                   policy=None, streaming=None):
            from repro.lint import LintReport, Severity, get_rule

            report = LintReport(target="injected")
            report.extend([get_rule("M003").diagnostic("planted duplicate")])
            return report

        monkeypatch.setattr(semantic, "lint_design", inject)
        with pytest.raises(LintError, match="planted duplicate"):
            design(paper_workload(), DesignConfig(lint=True))
