"""Property tests (hypothesis) for the plan verifier.

Two properties pin the verifier's contract:

* **soundness on well-formed plans** — any plan the constructors build
  (random SPJ + aggregate/sort/limit shapes) verifies with zero
  diagnostics;
* **single-error corruption detection** — surgically corrupting one node
  (dropping a declared output column, retyping a join key under the
  join) produces *exactly one* error naming the expected P-rule: the
  anti-cascade contract means one corruption never snowballs into an
  error at every ancestor.
"""

from hypothesis import given, settings, strategies as st

from repro.algebra.expressions import column, compare, literal
from repro.algebra.operators import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
    Join,
    Limit,
    Project,
    Relation,
    Select,
    Sort,
)
from repro.catalog.datatypes import DataType
from repro.catalog.schema import Attribute, RelationSchema
from repro.lint.plans import verify_plan

SETTINGS = settings(max_examples=60, deadline=None)


def schema_a():
    return RelationSchema(
        "A",
        [
            Attribute("A.id", DataType.INTEGER),
            Attribute("A.v", DataType.INTEGER),
        ],
    )


def schema_b():
    return RelationSchema(
        "B",
        [
            Attribute("B.id", DataType.INTEGER),
            Attribute("B.a_fk", DataType.INTEGER),
            Attribute("B.w", DataType.INTEGER),
        ],
    )


@st.composite
def spj_plans(draw):
    """A well-formed SPJ(+aggregate/sort/limit) plan; also returns the
    join's right leaf so corruption strategies can reach it."""
    leaf_b = Relation("B", schema_b())
    plan = Join(
        Relation("A", schema_a()),
        leaf_b,
        compare("B.a_fk", "=", column("A.id")),
    )
    if draw(st.booleans()):
        op = draw(st.sampled_from([">", "<", "=", "!=", ">=", "<="]))
        col = draw(st.sampled_from(["A.v", "B.w"]))
        plan = Select(plan, compare(col, op, literal(draw(st.integers(0, 5)))))
    shape = draw(st.integers(min_value=0, max_value=2))
    if shape == 0:
        plan = Aggregate(
            plan,
            ["A.v"],
            [
                AggregateSpec(AggregateFunction.COUNT, None, "n"),
                AggregateSpec(AggregateFunction.SUM, "B.w", "s"),
                AggregateSpec(AggregateFunction.MIN, "B.w", "lo"),
            ],
        )
    elif shape == 1:
        plan = Project(
            plan, ["A.id", "A.v", "B.w"], distinct=draw(st.booleans())
        )
    if draw(st.booleans()):
        plan = Sort(plan, [(plan.schema.attribute_names[0], draw(st.booleans()))])
    if draw(st.booleans()):
        plan = Limit(plan, draw(st.integers(1, 6)))
    return plan, leaf_b


@SETTINGS
@given(spj_plans())
def test_well_formed_plans_verify_clean(built):
    plan, _leaf = built
    report = verify_plan(plan)
    assert report.diagnostics == []


@SETTINGS
@given(spj_plans())
def test_dropped_column_yields_exactly_one_p007(built):
    plan, _leaf = built
    # Wrap the plan in a projection of its full output, then drop the
    # last column from the *declared* schema only — the classic symptom
    # of a rewrite that rebuilt the attribute list but not the schema.
    root = Project(plan, list(plan.schema.attribute_names))
    root._schema = RelationSchema(
        root.schema.name, list(root.schema.attributes[:-1])
    )
    root._signature = None
    root._hash = None
    report = verify_plan(root)
    errors = report.errors
    assert len(errors) == 1
    assert errors[0].rule == "P007"


@SETTINGS
@given(spj_plans())
def test_retyped_join_key_yields_exactly_one_p003(built):
    plan, leaf = built
    leaf._schema = RelationSchema(
        "B",
        [
            Attribute(
                a.name,
                DataType.STRING if a.name == "B.a_fk" else a.datatype,
            )
            for a in schema_b().attributes
        ],
    )
    leaf._signature = None
    leaf._hash = None
    report = verify_plan(plan)
    errors = report.errors
    assert len(errors) == 1
    assert errors[0].rule == "P003"
