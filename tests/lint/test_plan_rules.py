"""Unit tests for the plan verifier (rules P001-P008).

Plans are corrupted the way rewrites corrupt them in the wild: by
assigning directly into the operator slots (``_schema``, ``attributes``)
after construction, bypassing the constructors' own validation — the
verifier exists precisely because constructors cannot protect a tree
that is edited after the fact.
"""

import pytest

from repro.algebra.expressions import column, compare, literal
from repro.algebra.operators import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
    Join,
    Limit,
    Project,
    Relation,
    Select,
    Sort,
)
from repro.catalog.datatypes import DataType
from repro.catalog.schema import Attribute, RelationSchema
from repro.errors import LintError
from repro.executor.engine import (
    REFERENCE,
    VECTORIZED,
    Database,
    ExecutionEngine,
)
from repro.lint.plans import verify_lowering, verify_plan
from repro.storage.table import Table


def schema_a():
    return RelationSchema(
        "A",
        [
            Attribute("A.id", DataType.INTEGER),
            Attribute("A.v", DataType.INTEGER),
        ],
    )


def schema_b():
    return RelationSchema(
        "B",
        [
            Attribute("B.id", DataType.INTEGER),
            Attribute("B.a_fk", DataType.INTEGER),
        ],
    )


def joined_plan():
    return Join(
        Relation("A", schema_a()),
        Relation("B", schema_b()),
        compare("B.a_fk", "=", column("A.id")),
    )


def retype(schema, name, datatype):
    return RelationSchema(
        schema.name,
        [
            Attribute(a.name, datatype if a.name == name else a.datatype)
            for a in schema.attributes
        ],
    )


def corrupt_schema(node, schema):
    """Overwrite a node's declared schema in place (slot assignment)."""
    node._schema = schema
    node._signature = None
    node._hash = None


def rules_of(report):
    return [d.rule for d in report.diagnostics]


class TestCleanPlans:
    def test_spj_plan_verifies_clean(self):
        plan = Project(
            Select(joined_plan(), compare("A.v", ">", literal(1))),
            ["A.id", "B.a_fk"],
        )
        report = verify_plan(plan)
        assert report.diagnostics == []
        assert report.exit_code == 0

    def test_aggregate_plan_verifies_clean(self):
        plan = Aggregate(
            joined_plan(),
            ["A.v"],
            [
                AggregateSpec(AggregateFunction.COUNT, None, "n"),
                AggregateSpec(AggregateFunction.SUM, "B.a_fk", "s"),
            ],
        )
        assert verify_plan(plan).diagnostics == []

    def test_sort_limit_plan_verifies_clean(self):
        plan = Limit(Sort(joined_plan(), [("A.id", True)]), 5)
        assert verify_plan(plan).diagnostics == []


class TestPlanRules:
    def test_p001_unknown_projection_column(self):
        plan = Project(Relation("A", schema_a()), ["A.id"])
        plan.attributes = ("A.id", "A.missing")
        plan._signature = None
        report = verify_plan(plan)
        assert rules_of(report) == ["P001"]
        assert "A.missing" in report.diagnostics[0].message

    def test_p002_duplicate_projection_columns(self):
        plan = Project(Relation("A", schema_a()), ["A.id", "A.v"])
        plan.attributes = ("A.id", "A.id")
        plan._signature = None
        assert rules_of(verify_plan(plan)) == ["P002"]

    def test_p003_join_key_type_mismatch(self):
        plan = joined_plan()
        b_leaf = plan.right
        corrupt_schema(b_leaf, retype(schema_b(), "B.a_fk", DataType.STRING))
        report = verify_plan(plan)
        assert rules_of(report) == ["P003"]
        assert "string" in report.diagnostics[0].message

    def test_p004_predicate_unknown_column(self):
        plan = Select(Relation("A", schema_a()), compare("A.v", ">", literal(1)))
        plan.predicate = compare("A.gone", ">", literal(1))
        plan._signature = None
        report = verify_plan(plan)
        assert rules_of(report) == ["P004"]

    def test_p005_sum_over_string(self):
        relation = Relation("A", retype(schema_a(), "A.v", DataType.STRING))
        plan = Aggregate(
            relation,
            ["A.id"],
            [AggregateSpec(AggregateFunction.COUNT, None, "n")],
        )
        plan.aggregates = (AggregateSpec(AggregateFunction.SUM, "A.v", "s"),)
        plan._signature = None
        report = verify_plan(plan)
        assert "P005" in rules_of(report)
        assert "numeric" in report.diagnostics[0].message

    def test_p005_unknown_group_by(self):
        plan = Aggregate(
            Relation("A", schema_a()),
            ["A.id"],
            [AggregateSpec(AggregateFunction.COUNT, None, "n")],
        )
        plan.group_by = ("A.nope",)
        plan._signature = None
        assert "P005" in rules_of(verify_plan(plan))

    def test_p006_limit_zero_warns(self):
        plan = Limit(Relation("A", schema_a()), 1)
        plan.count = 0
        plan._signature = None
        report = verify_plan(plan)
        assert rules_of(report) == ["P006"]
        assert report.exit_code == 0  # warning, not error

    def test_p006_sort_under_aggregate_warns(self):
        plan = Aggregate(
            Sort(Relation("A", schema_a()), [("A.id", True)]),
            ["A.v"],
            [AggregateSpec(AggregateFunction.COUNT, None, "n")],
        )
        report = verify_plan(plan)
        assert rules_of(report) == ["P006"]
        assert "destroyed" in report.diagnostics[0].message

    def test_p007_dropped_schema_column(self):
        plan = Project(joined_plan(), ["A.id", "B.a_fk"])
        corrupt_schema(
            plan,
            RelationSchema(plan.schema.name, [plan.schema.attributes[0]]),
        )
        report = verify_plan(plan)
        assert rules_of(report) == ["P007"]

    def test_anti_cascade_single_error_under_ancestors(self):
        # The corruption sits below a Select and a Project; only the
        # corrupted node reports.
        inner = Project(joined_plan(), ["A.id", "A.v"])
        corrupt_schema(
            inner,
            retype(inner.schema, "A.v", DataType.STRING),
        )
        plan = Project(
            Select(inner, compare("A.id", ">", literal(0))), ["A.id"]
        )
        report = verify_plan(plan)
        assert rules_of(report) == ["P007"]


class TestLoweringVerification:
    def load(self):
        database = Database()
        for name, schema in (("A", schema_a()), ("B", schema_b())):
            database.register(name, Table(schema, blocking_factor=3))
        return database

    def test_clean_lowering_passes(self):
        engine = ExecutionEngine(self.load(), engine=VECTORIZED, lint=True)
        plan = Project(joined_plan(), ["A.id", "B.a_fk"])
        root = engine.physical_plan(plan)
        assert verify_lowering(plan, root).diagnostics == []

    def test_p008_root_schema_drift(self):
        engine = ExecutionEngine(self.load(), engine=VECTORIZED)
        plan = Project(joined_plan(), ["A.id", "B.a_fk"])
        root = engine.physical_plan(plan)
        # Pretend the logical root promised something else.
        other = Project(joined_plan(), ["A.id"])
        report = verify_lowering(other, root)
        assert "P008" in rules_of(report)

    def test_corrupted_plan_fails_lowering_with_lint_error(self):
        engine = ExecutionEngine(self.load(), engine=VECTORIZED, lint=True)
        plan = Project(joined_plan(), ["A.id", "B.a_fk"])
        corrupt_schema(
            plan,
            RelationSchema(plan.schema.name, [plan.schema.attributes[0]]),
        )
        with pytest.raises(LintError, match="P007"):
            engine.physical_plan(plan)

    def test_corrupted_plan_fails_reference_execute(self):
        engine = ExecutionEngine(self.load(), engine=REFERENCE, lint=True)
        plan = joined_plan()
        corrupt_schema(
            plan.right, retype(schema_b(), "B.a_fk", DataType.STRING)
        )
        with pytest.raises(LintError, match="P003"):
            engine.execute(plan)

    def test_lint_off_does_not_verify(self):
        engine = ExecutionEngine(self.load(), engine=VECTORIZED, lint=False)
        plan = Project(joined_plan(), ["A.id", "B.a_fk"])
        corrupt_schema(
            plan,
            RelationSchema(plan.schema.name, [plan.schema.attributes[0]]),
        )
        engine.physical_plan(plan)  # no raise

    def test_explain_reports_diagnostics_without_raising(self):
        engine = ExecutionEngine(self.load(), engine=VECTORIZED)
        plan = Project(joined_plan(), ["A.id", "B.a_fk"])
        corrupt_schema(
            plan,
            RelationSchema(plan.schema.name, [plan.schema.attributes[0]]),
        )
        text = engine.explain(plan)
        assert "plan diagnostics" in text
        assert "P007" in text

    def test_explain_clean_plan_has_no_diagnostics_section(self):
        engine = ExecutionEngine(self.load(), engine=VECTORIZED)
        plan = Project(joined_plan(), ["A.id", "B.a_fk"])
        assert "plan diagnostics" not in engine.explain(plan)
