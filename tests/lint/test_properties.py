"""Property test: every MVPP the generator produces passes the semantic
linter with no error-severity findings, for arbitrary workloads.

Warnings are allowed (a random workload may legitimately leave a leaf
full-width); errors (missed merges, negative or non-monotone costs,
missing statistics) would mean the generation pipeline itself violates
the paper's invariants.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.lint import Severity, lint_mvpp, lint_workload
from repro.mvpp import generate_mvpps
from repro.workload import GeneratorConfig, generate_workload


@st.composite
def generator_configs(draw):
    num_relations = draw(st.integers(min_value=3, max_value=6))
    return GeneratorConfig(
        num_relations=num_relations,
        num_queries=draw(st.integers(min_value=2, max_value=4)),
        max_query_relations=draw(
            st.integers(min_value=2, max_value=min(4, num_relations))
        ),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=generator_configs())
def test_generated_mvpps_have_no_error_findings(config):
    workload = generate_workload(config).workload

    workload_report = lint_workload(workload)
    assert workload_report.errors == [], "\n".join(
        d.render() for d in workload_report.errors
    )

    for mvpp in generate_mvpps(workload):
        report = lint_mvpp(mvpp, workload=workload)
        errors = [d for d in report.diagnostics if d.severity >= Severity.ERROR]
        assert errors == [], f"{mvpp.name}:\n" + "\n".join(
            d.render() for d in errors
        )
