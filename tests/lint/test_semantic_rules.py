"""Fixture tests for the Layer-1 semantic rules: each seeds one violation
into a real workload/MVPP/design and asserts the expected rule fires."""

import dataclasses

import pytest

from repro.lint import Severity, lint_design, lint_mvpp, lint_workload
from repro.mvpp import MVPPCostCalculator, design, generate_mvpps
from repro.mvpp.graph import VertexKind
from repro.workload import paper_workload
from repro.workload.spec import QuerySpec


def fired(report, rule_id):
    return [d for d in report.diagnostics if d.rule == rule_id]


@pytest.fixture()
def fresh_workload():
    """A private paper workload instance, safe to mutate."""
    return paper_workload()


@pytest.fixture()
def fresh_mvpp(fresh_workload):
    """A private first-rotation MVPP over the paper workload."""
    return generate_mvpps(fresh_workload, rotations=1)[0]


class TestWorkloadRules:
    def test_paper_workload_is_clean(self, fresh_workload):
        report = lint_workload(fresh_workload)
        assert report.diagnostics == []
        assert report.exit_code == 0

    def test_w001_zero_query_frequency(self, fresh_workload):
        queries = tuple(
            dataclasses.replace(q, frequency=0.0) if q.name == "Q2" else q
            for q in fresh_workload.queries
        )
        workload = dataclasses.replace(fresh_workload, queries=queries)
        (diag,) = fired(lint_workload(workload), "W001")
        assert "Q2" in diag.message
        assert diag.severity is Severity.WARNING

    def test_w002_zero_update_frequency(self, fresh_workload):
        frequencies = dict(fresh_workload.update_frequencies)
        frequencies["Part"] = 0.0
        workload = dataclasses.replace(
            fresh_workload, update_frequencies=frequencies
        )
        (diag,) = fired(lint_workload(workload), "W002")
        assert "Part" in diag.message

    def test_w003_missing_statistics_is_error(self, fresh_workload):
        from repro.catalog.statistics import StatisticsCatalog

        workload = dataclasses.replace(
            fresh_workload, statistics=StatisticsCatalog()
        )
        report = lint_workload(workload)
        missing = fired(report, "W003")
        assert {d.severity for d in missing} == {Severity.ERROR}
        assert len(missing) == len(workload.catalog.relation_names)
        assert report.exit_code == 1

    def test_w003_stale_statistics_is_warning(self, fresh_workload):
        fresh_workload.statistics.set_relation("Ghost", 100)
        (diag,) = fired(lint_workload(fresh_workload), "W003")
        assert diag.severity is Severity.WARNING
        assert "Ghost" in diag.message

    def test_w003_view_statistics_exempt(self, fresh_workload):
        fresh_workload.statistics.set_relation("mv_tmp3", 100)
        assert fired(lint_workload(fresh_workload), "W003") == []

    def test_w004_duplicate_sql(self, fresh_workload):
        duplicate = QuerySpec("Q9", fresh_workload.queries[0].sql, 2.0)
        workload = dataclasses.replace(
            fresh_workload, queries=fresh_workload.queries + (duplicate,)
        )
        (diag,) = fired(lint_workload(workload), "W004")
        assert "Q1" in diag.message and "Q9" in diag.message
        assert diag.severity is Severity.NOTE


class TestMVPPRules:
    def test_generated_mvpps_are_clean(self, fresh_workload):
        for mvpp in generate_mvpps(fresh_workload):
            report = lint_mvpp(mvpp, workload=fresh_workload)
            assert report.diagnostics == [], "\n".join(
                d.render() for d in report.diagnostics
            )

    def test_m001_unmerged_selections(self, fresh_workload):
        """The pre-merge (Figure 3) form: each query keeps its own plan, so
        shared base relations are read through several distinct stems."""
        from repro.mvpp.builder import build_from_workload

        mvpp = build_from_workload(fresh_workload)
        report = lint_mvpp(mvpp)
        m001 = fired(report, "M001")
        # Order is read filtered by Q4 (quantity > 100) and raw by Q3's path.
        assert any("Order" in d.message for d in m001)
        assert all(d.severity is Severity.WARNING for d in m001)
        assert all(d.location.mvpp == mvpp.name for d in m001)

    def test_m002_missing_projection_pushdown(self, fresh_workload):
        """push_down=False yields the paper's Figure-7 form: full-width
        base relations feeding joins with never-referenced attributes."""
        mvpp = generate_mvpps(fresh_workload, rotations=1, push_down=False)[0]
        m002 = fired(lint_mvpp(mvpp), "M002")
        assert m002, "expected full-width leaves in the no-pushdown form"
        flagged = {d.location.vertex for d in m002}
        assert "Part" in flagged

    def test_m003_duplicate_subtree(self, fresh_mvpp):
        victim = next(
            v for v in fresh_mvpp if v.kind is VertexKind.OPERATION
        )
        clone = fresh_mvpp._new_vertex(
            "clone", VertexKind.OPERATION, victim.operator,
            children=(), register_signature=False,
        )
        report = lint_mvpp(fresh_mvpp)
        (diag,) = fired(report, "M003")
        assert victim.name in diag.message and clone.name in diag.message
        assert diag.severity is Severity.ERROR
        assert report.exit_code == 1

    def test_m004_unreachable_vertex(self, fresh_mvpp):
        clone = fresh_mvpp._new_vertex(
            "orphan", VertexKind.OPERATION,
            next(v for v in fresh_mvpp if v.kind is VertexKind.OPERATION).operator,
            children=(), register_signature=False,
        )
        m004 = fired(lint_mvpp(fresh_mvpp), "M004")
        assert [d.location.vertex for d in m004] == [clone.name]

    def test_m005_frequency_annotations(self, fresh_mvpp):
        root = fresh_mvpp.roots[0]
        leaf = fresh_mvpp.leaves[0]
        root.frequency = 0.0
        leaf.frequency = -1.0
        report = lint_mvpp(fresh_mvpp)
        m005 = fired(report, "M005")
        by_vertex = {d.location.vertex: d for d in m005}
        assert by_vertex[root.name].severity is Severity.WARNING
        assert by_vertex[leaf.name].severity is Severity.ERROR

    def test_m005_zero_fu_is_warning(self, fresh_mvpp):
        fresh_mvpp.leaves[0].frequency = 0.0
        (diag,) = fired(lint_mvpp(fresh_mvpp), "M005")
        assert diag.severity is Severity.WARNING
        assert "fu=0" in diag.message

    def test_m006_negative_cost(self, fresh_mvpp):
        victim = next(
            v for v in fresh_mvpp if v.kind is VertexKind.OPERATION
        )
        victim.access_cost = -5.0
        report = lint_mvpp(fresh_mvpp)
        m006 = fired(report, "M006")
        assert [d.location.vertex for d in m006] == [victim.name]
        assert report.exit_code == 1

    def test_m007_non_monotone_access_cost(self, fresh_mvpp):
        # find an operation with an operation child and invert their costs
        victim = next(
            v
            for v in fresh_mvpp
            if v.kind is VertexKind.OPERATION
            and any(
                c.kind is VertexKind.OPERATION
                for c in fresh_mvpp.children_of(v)
            )
        )
        child = next(
            c
            for c in fresh_mvpp.children_of(victim)
            if c.kind is VertexKind.OPERATION
        )
        victim.access_cost = child.access_cost / 2
        m007 = fired(lint_mvpp(fresh_mvpp), "M007")
        assert any(
            d.location.vertex == victim.name and child.name in d.message
            for d in m007
        )

    def test_m007_maintenance_below_access(self, fresh_mvpp):
        victim = next(
            v for v in fresh_mvpp if v.kind is VertexKind.OPERATION
        )
        victim.maintenance_cost = victim.access_cost / 2
        m007 = fired(lint_mvpp(fresh_mvpp), "M007")
        assert any(
            d.location.vertex == victim.name and "Cm=" in d.message
            for d in m007
        )

    def test_unannotated_mvpp_skips_cost_rules(self, fresh_workload):
        from repro.mvpp.builder import build_from_workload

        mvpp = build_from_workload(fresh_workload)
        mvpp._annotated = False
        report = lint_mvpp(mvpp)
        assert fired(report, "M006") == []
        assert fired(report, "M007") == []


class TestDesignRules:
    def test_paper_design_is_clean(self, fresh_workload):
        result = design(fresh_workload)
        report = lint_design(
            result.mvpp, result.materialized,
            calculator=result.calculator, workload=fresh_workload,
        )
        assert report.diagnostics == [], "\n".join(
            d.render() for d in report.diagnostics
        )

    def test_d001_non_positive_weight(self, fresh_mvpp):
        calculator = MVPPCostCalculator(fresh_mvpp)
        loser = min(
            (v for v in fresh_mvpp if v.kind is VertexKind.OPERATION),
            key=lambda v: (calculator.weight(v), v.vertex_id),
        )
        assert calculator.weight(loser) <= 0, "paper MVPP should have one"
        report = lint_design(fresh_mvpp, [loser], calculator=calculator)
        (diag,) = fired(report, "D001")
        assert diag.location.vertex == loser.name
        assert diag.severity is Severity.WARNING

    def test_d002_shadowed_view(self, fresh_mvpp):
        calculator = MVPPCostCalculator(fresh_mvpp)
        shadowed = next(
            v
            for v in fresh_mvpp
            if v.kind is VertexKind.OPERATION and fresh_mvpp.parents_of(v)
            and calculator.weight(v) > 0
        )
        chosen = [shadowed] + fresh_mvpp.parents_of(shadowed)
        report = lint_design(fresh_mvpp, chosen, calculator=calculator)
        d002 = fired(report, "D002")
        assert any(d.location.vertex == shadowed.name for d in d002)

    def test_lint_design_defaults_calculator(self, fresh_mvpp):
        report = lint_design(fresh_mvpp, [])
        assert fired(report, "D001") == []


class TestAdaptiveRules:
    def test_a001_cooldown_below_drift_window(self):
        from repro.adaptive import AdaptivePolicy
        from repro.lint import lint_adaptive_policy

        policy = AdaptivePolicy(
            period_ticks=10.0, window_periods=4.0, cooldown_ticks=10.0
        )
        (diag,) = fired(lint_adaptive_policy(policy), "A001")
        assert diag.severity is Severity.WARNING
        assert "cooldown" in diag.message

    def test_a002_zero_benefit_margin(self):
        from repro.adaptive import AdaptivePolicy
        from repro.lint import lint_adaptive_policy

        policy = AdaptivePolicy(min_benefit_margin=0.0)
        (diag,) = fired(lint_adaptive_policy(policy), "A002")
        assert diag.severity is Severity.WARNING

    def test_default_policy_is_clean(self):
        from repro.adaptive import DEFAULT_ADAPTIVE_POLICY
        from repro.lint import lint_adaptive_policy

        assert lint_adaptive_policy(DEFAULT_ADAPTIVE_POLICY).diagnostics == []

    def test_non_policy_rejected(self):
        from repro.errors import LintError
        from repro.lint import lint_adaptive_policy

        with pytest.raises(LintError):
            lint_adaptive_policy(object())

    def test_lint_design_runs_adaptive_scope_with_policy(self, fresh_workload):
        from repro.adaptive import AdaptivePolicy

        policy = AdaptivePolicy(
            period_ticks=10.0, window_periods=4.0, cooldown_ticks=0.0,
            min_benefit_margin=0.0,
        )
        result = design(fresh_workload)
        report = lint_design(
            result.mvpp, result.materialized,
            calculator=result.calculator, workload=fresh_workload,
            policy=policy,
        )
        assert fired(report, "A001") and fired(report, "A002")

    def test_design_pipeline_lints_config_policy(self, fresh_workload):
        """design(config with adaptive=...) feeds the policy to the
        lint gate; warnings never abort the run."""
        from repro.adaptive import AdaptivePolicy
        from repro.mvpp import DesignConfig

        policy = AdaptivePolicy(
            period_ticks=10.0, window_periods=4.0, cooldown_ticks=0.0
        )
        result = design(
            fresh_workload, DesignConfig(adaptive=policy, lint=True)
        )
        assert result.lint_report is not None
        assert any(d.rule == "A001" for d in result.lint_report.diagnostics)
