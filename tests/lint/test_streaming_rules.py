"""Fixture tests for the streaming-scope lint rules S001/S002: each
seeds one violation and asserts the expected diagnostic fires."""

import pytest

from repro.algebra.operators import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
    Relation,
)
from repro.cdc import DEFAULT_STREAMING_POLICY, StreamingPolicy
from repro.errors import LintError
from repro.lint import Severity, lint_design, lint_streaming_policy
from repro.mvpp import design
from repro.mvpp.graph import Vertex, VertexKind
from repro.workload import paper_workload


def fired(report, rule_id):
    return [d for d in report.diagnostics if d.rule == rule_id]


@pytest.fixture()
def fresh_workload():
    return paper_workload()


class TestS001LagVsRetention:
    def test_fires_when_lag_bound_exceeds_retention(self):
        policy = StreamingPolicy(max_lag_records=10_000, retention=100)
        assert not policy.covers_lag_bound
        (diag,) = fired(lint_streaming_policy(policy), "S001")
        assert diag.severity is Severity.WARNING
        assert "10000" in diag.message
        assert "100" in diag.message

    def test_default_policy_is_clean(self):
        report = lint_streaming_policy(DEFAULT_STREAMING_POLICY)
        assert report.diagnostics == []
        assert report.exit_code == 0

    def test_boundary_is_covered(self):
        policy = StreamingPolicy(max_lag_records=100, retention=100)
        assert fired(lint_streaming_policy(policy), "S001") == []

    def test_non_policy_rejected(self):
        with pytest.raises(LintError):
            lint_streaming_policy(object())


class TestS002RecomputeOnlyView:
    def _aggregate_vertex(self, workload):
        order = Relation(
            "Order", workload.catalog.schema("Order").qualify()
        )
        plan = Aggregate(
            order,
            ["Order.Cid"],
            [AggregateSpec(AggregateFunction.COUNT, None, "n")],
        )
        return Vertex(
            vertex_id=999,
            name="agg_per_customer",
            kind=VertexKind.OPERATION,
            operator=plan,
            children=(),
        )

    def test_fires_on_aggregate_only_view(self, fresh_workload):
        result = design(fresh_workload)
        vertex = self._aggregate_vertex(fresh_workload)
        report = lint_design(
            result.mvpp,
            [vertex],
            workload=fresh_workload,
            streaming=DEFAULT_STREAMING_POLICY,
        )
        (diag,) = fired(report, "S002")
        assert "agg_per_customer" in diag.message
        assert "full recompute" in diag.message
        assert "aggregate" in diag.message

    def test_paper_design_is_clean(self, fresh_workload):
        result = design(fresh_workload)
        report = lint_design(
            result.mvpp,
            result.materialized,
            calculator=result.calculator,
            workload=fresh_workload,
            streaming=DEFAULT_STREAMING_POLICY,
        )
        assert fired(report, "S001") == []
        assert fired(report, "S002") == []

    def test_skipped_without_streaming_policy(self, fresh_workload):
        result = design(fresh_workload)
        vertex = self._aggregate_vertex(fresh_workload)
        report = lint_design(
            result.mvpp, [vertex], workload=fresh_workload
        )
        assert fired(report, "S002") == []


class TestDesignPipeline:
    def test_design_config_streaming_feeds_lint_gate(self, fresh_workload):
        from repro.mvpp import DesignConfig

        policy = StreamingPolicy(max_lag_records=10_000, retention=100)
        result = design(
            fresh_workload, DesignConfig(streaming=policy, lint=True)
        )
        assert result.lint_report is not None
        assert any(
            d.rule == "S001" for d in result.lint_report.diagnostics
        )
