"""Unit tests for the simulated-annealing baseline."""

import pytest

from repro.errors import MVPPError
from repro.mvpp.annealing import AnnealingConfig, simulated_annealing
from repro.mvpp.cost import MVPPCostCalculator
from repro.mvpp.exhaustive import exhaustive_optimal
from repro.mvpp.generation import generate_mvpps
from repro.workload import GeneratorConfig, generate_workload


class TestConfig:
    def test_invalid_cooling(self):
        with pytest.raises(MVPPError):
            AnnealingConfig(cooling=1.0)

    def test_invalid_steps(self):
        with pytest.raises(MVPPError):
            AnnealingConfig(steps_per_temperature=0)

    def test_invalid_temperature(self):
        with pytest.raises(MVPPError):
            AnnealingConfig(initial_temperature_fraction=0)


class TestSearch:
    def test_never_worse_than_all_virtual(self, paper_mvpp, paper_calculator):
        chosen, breakdown = simulated_annealing(paper_mvpp, paper_calculator)
        assert breakdown.total <= paper_calculator.breakdown(()).total

    def test_deterministic_for_seed(self, paper_mvpp, paper_calculator):
        a = simulated_annealing(paper_mvpp, paper_calculator)
        b = simulated_annealing(paper_mvpp, paper_calculator)
        assert [v.vertex_id for v in a[0]] == [v.vertex_id for v in b[0]]
        assert a[1].total == b[1].total

    def test_finds_paper_optimum_on_example(self, paper_mvpp, paper_calculator):
        """On the worked example, annealing reaches the exhaustive optimum
        (which the Figure-9 heuristic also hits)."""
        chosen, breakdown = simulated_annealing(paper_mvpp, paper_calculator)
        _, optimum = exhaustive_optimal(
            paper_mvpp, paper_calculator, max_candidates=16
        )
        assert breakdown.total <= optimum.total * 1.02

    def test_empty_candidate_pool(self, paper_mvpp, paper_calculator):
        chosen, breakdown = simulated_annealing(
            paper_mvpp, paper_calculator, candidates=[]
        )
        assert chosen == []
        assert breakdown.total == paper_calculator.breakdown(()).total

    @pytest.mark.parametrize("seed", range(3))
    def test_close_to_optimal_on_synthetic(self, seed):
        workload = generate_workload(
            GeneratorConfig(
                num_relations=4, num_queries=3, max_query_relations=3, seed=seed
            )
        ).workload
        mvpp = generate_mvpps(workload, rotations=1)[0]
        if len(mvpp.operations) > 14:
            pytest.skip("instance too large for exhaustive comparison")
        calc = MVPPCostCalculator(mvpp)
        _, breakdown = simulated_annealing(
            mvpp, calc, config=AnnealingConfig(seed=seed)
        )
        _, optimum = exhaustive_optimal(mvpp, calc)
        assert breakdown.total <= optimum.total * 1.10
