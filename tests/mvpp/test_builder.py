"""Unit tests for the direct MVPP builder."""

import pytest

from repro.mvpp.builder import build_from_plans, build_from_workload
from repro.optimizer.heuristics import optimize_query
from repro.sql.translator import parse_query


class TestBuildFromPlans:
    def test_plans_interned_with_frequencies(self, workload, estimator):
        plans = []
        for spec in workload.queries[:2]:
            plan = optimize_query(
                parse_query(spec.sql, workload.catalog), estimator
            )
            plans.append((spec.name, plan, spec.frequency))
        mvpp = build_from_plans(plans, estimator, name="two")
        assert mvpp.name == "two"
        assert set(mvpp.query_names) == {"Q1", "Q2"}
        assert mvpp.query_root("Q1").frequency == 10.0

    def test_update_frequencies_applied(self, workload, estimator):
        plan = optimize_query(
            parse_query(workload.query("Q1").sql, workload.catalog), estimator
        )
        mvpp = build_from_plans(
            [("Q1", plan, 1.0)],
            estimator,
            update_frequencies={"Division": 4.0},
        )
        assert mvpp.vertex_by_name("Division").frequency == 4.0
        assert mvpp.vertex_by_name("Product").frequency == 1.0  # default

    def test_annotated_and_named(self, workload, estimator):
        mvpp = build_from_workload(workload, estimator)
        assert mvpp.is_annotated
        mvpp.validate()


class TestBuildFromWorkload:
    def test_unoptimized_plans_supported(self, workload, estimator):
        raw = build_from_workload(workload, estimator, optimize=False)
        optimized = build_from_workload(workload, estimator, optimize=True)
        raw.validate()
        optimized.validate()
        # Optimization changes plan shapes, hence the vertex population.
        assert raw.structure_signature() != optimized.structure_signature()

    def test_natural_sharing_only(self, workload, estimator):
        """Q1/Q2/Q3 share the σ(city='LA') lineage naturally because their
        individually-optimal plans coincide on it; Q4 shares nothing."""
        mvpp = build_from_workload(workload, estimator)
        q4_private = [
            v
            for v in mvpp.operations
            if {q.name for q in mvpp.queries_using(v)} == {"Q4"}
        ]
        assert q4_private  # Q4's lineage is unshared in the naive build
        shared = [
            v for v in mvpp.operations if len(mvpp.queries_using(v)) >= 2
        ]
        assert shared  # but the LA lineage is still shared

    def test_default_name(self, workload, estimator):
        mvpp = build_from_workload(workload, estimator)
        assert mvpp.name.endswith("-naive")
