"""Unit tests for the MVPP cost calculator (Section 4.1 formulas)."""

import pytest

from repro.errors import MVPPError
from repro.mvpp.cost import MVPPCostCalculator, PER_BASE, PER_PERIOD


@pytest.fixture
def calc(paper_mvpp):
    return MVPPCostCalculator(paper_mvpp)


def shared_join(mvpp, bases):
    from repro.algebra.operators import Join

    for v in mvpp.operations:
        if isinstance(v.operator, Join) and v.operator.base_relations() == frozenset(
            bases
        ):
            return v
    raise AssertionError(f"no join over {bases}")


class TestQueryProcessing:
    def test_all_virtual_is_weighted_ca(self, paper_mvpp, calc):
        expected = sum(
            root.frequency * root.access_cost for root in paper_mvpp.roots
        )
        assert calc.query_processing_cost(frozenset()) == pytest.approx(expected)

    def test_materializing_vertex_reduces_cost(self, paper_mvpp, calc):
        vertex = shared_join(paper_mvpp, {"Product", "Division"})
        baseline = calc.query_processing_cost(frozenset())
        reduced = calc.query_processing_cost(frozenset({vertex.vertex_id}))
        assert reduced < baseline

    def test_materialized_vertex_costs_its_blocks(self, paper_mvpp, calc):
        vertex = shared_join(paper_mvpp, {"Product", "Division"})
        cost = calc.access_cost(vertex, frozenset({vertex.vertex_id}))
        assert cost == vertex.stats.blocks

    def test_leaf_access_is_free(self, paper_mvpp, calc):
        leaf = paper_mvpp.vertex_by_name("Product")
        assert calc.access_cost(leaf, frozenset()) == 0.0

    def test_materialized_descendant_cuts_lineage(self, paper_mvpp, calc):
        vertex = shared_join(paper_mvpp, {"Product", "Division"})
        parent_queries = calc.mvpp.queries_using(vertex)
        root = parent_queries[0]
        without = calc.access_cost(root, frozenset())
        with_mv = calc.access_cost(root, frozenset({vertex.vertex_id}))
        assert with_mv < without


class TestMaintenance:
    def test_empty_set_no_maintenance(self, calc):
        assert calc.maintenance_cost(frozenset()) == 0.0

    def test_leaves_never_charged(self, paper_mvpp, calc):
        leaf = paper_mvpp.vertex_by_name("Product")
        assert calc.maintenance_cost(frozenset({leaf.vertex_id})) == 0.0

    def test_per_period_uses_max_frequency(self, paper_mvpp):
        calc = MVPPCostCalculator(paper_mvpp, PER_PERIOD)
        vertex = shared_join(paper_mvpp, {"Product", "Division"})
        assert calc.refresh_trigger(vertex) == 1.0  # all fu = 1

    def test_per_base_sums_frequencies(self, paper_mvpp):
        calc = MVPPCostCalculator(paper_mvpp, PER_BASE)
        vertex = shared_join(paper_mvpp, {"Product", "Division"})
        assert calc.refresh_trigger(vertex) == 2.0  # Product + Division

    def test_maintenance_is_trigger_times_cm(self, paper_mvpp, calc):
        vertex = shared_join(paper_mvpp, {"Product", "Division"})
        cost = calc.maintenance_cost(frozenset({vertex.vertex_id}))
        assert cost == pytest.approx(
            calc.refresh_trigger(vertex) * vertex.maintenance_cost
        )

    def test_unknown_trigger_mode_rejected(self, paper_mvpp):
        with pytest.raises(MVPPError):
            MVPPCostCalculator(paper_mvpp, "sometimes")


class TestBreakdown:
    def test_total_is_sum(self, paper_mvpp, calc):
        vertex = shared_join(paper_mvpp, {"Product", "Division"})
        breakdown = calc.breakdown([vertex])
        assert breakdown.total == pytest.approx(
            breakdown.query_processing + breakdown.maintenance
        )

    def test_accepts_vertices_and_ids(self, paper_mvpp, calc):
        vertex = shared_join(paper_mvpp, {"Product", "Division"})
        assert (
            calc.breakdown([vertex]).total
            == calc.breakdown([vertex.vertex_id]).total
        )

    def test_rejects_garbage(self, calc):
        with pytest.raises(MVPPError):
            calc.breakdown(["tmp1"])


class TestWeight:
    def test_weight_formula(self, paper_mvpp, calc):
        vertex = shared_join(paper_mvpp, {"Product", "Division"})
        fq_sum = sum(q.frequency for q in paper_mvpp.queries_using(vertex))
        expected = fq_sum * vertex.access_cost - calc.refresh_trigger(
            vertex
        ) * vertex.maintenance_cost
        assert calc.weight(vertex) == pytest.approx(expected)

    def test_leaf_weight_zero(self, paper_mvpp, calc):
        assert calc.weight(paper_mvpp.vertex_by_name("Order")) == 0.0

    def test_incremental_saving_shrinks_with_materialized_descendants(
        self, paper_mvpp, calc
    ):
        upper = shared_join(
            paper_mvpp, {"Product", "Division", "Order", "Customer"}
        )
        lower = shared_join(paper_mvpp, {"Product", "Division"})
        alone = calc.incremental_saving(upper, frozenset())
        with_descendant = calc.incremental_saving(
            upper, frozenset({lower.vertex_id})
        )
        assert with_descendant < alone

    def test_incremental_saving_equals_weight_when_m_empty(
        self, paper_mvpp, calc
    ):
        for vertex in paper_mvpp.operations:
            assert calc.incremental_saving(vertex, frozenset()) == pytest.approx(
                calc.weight(vertex)
            )
