"""Tests for the shared cross-candidate CostCache.

Covers key soundness (cached costs equal uncached costs, across
materialization sets and across candidate MVPPs), the hit/miss
accounting, invalidation on ``DataWarehouse.sync_statistics()``, and the
``repro.obs`` export.
"""

import pytest

from repro import obs
from repro.mvpp import (
    CostCache,
    DesignConfig,
    MVPPCostCalculator,
    design,
    generate_mvpps,
)
from repro.warehouse import DataWarehouse
from repro.workload import paper_workload


class TestCacheMechanics:
    def test_empty_cache_stats(self):
        cache = CostCache()
        assert len(cache) == 0
        assert cache.hit_ratio == 0.0
        assert cache.stats() == {
            "hits": 0,
            "misses": 0,
            "hit_ratio": 0.0,
            "size": 0,
            "invalidations": 0,
        }

    def test_lookup_store_counts(self):
        cache = CostCache()
        key = ("sig", frozenset())
        assert cache.lookup(key) is None
        cache.store(key, 42.0)
        assert cache.lookup(key) == 42.0
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_ratio == 0.5

    def test_invalidate_clears_but_keeps_counters(self):
        cache = CostCache()
        cache.store(("sig", frozenset()), 1.0)
        cache.lookup(("sig", frozenset()))
        cache.invalidate()
        assert len(cache) == 0
        assert cache.hits == 1
        assert cache.invalidations == 1


class TestCacheCorrectness:
    def test_cached_costs_match_uncached(self, paper_mvpp):
        plain = MVPPCostCalculator(paper_mvpp)
        cached = MVPPCostCalculator(paper_mvpp, cache=CostCache())
        operations = paper_mvpp.operations
        subsets = [
            (),
            operations[:1],
            operations[:3],
            operations,
        ]
        for subset in subsets:
            expected = plain.breakdown(subset)
            actual = cached.breakdown(subset)
            assert actual.query_processing == expected.query_processing
            assert actual.maintenance == expected.maintenance

    def test_cache_shared_across_candidates(self, workload):
        cache = CostCache()
        for mvpp in generate_mvpps(workload):
            calculator = MVPPCostCalculator(mvpp, cache=cache)
            calculator.breakdown(())
            calculator.breakdown(mvpp.operations[:2])
        assert cache.hits > 0  # rotations share subtrees
        # Re-costing the first candidate is now mostly cache hits.
        first = generate_mvpps(workload)[0]
        hits_before = cache.hits
        misses_before = cache.misses
        MVPPCostCalculator(first, cache=cache).breakdown(())
        assert cache.hits > hits_before
        assert cache.misses == misses_before

    def test_design_results_identical_with_and_without_cache(self, workload):
        with_cache = design(workload, DesignConfig(cache=True))
        without = design(workload, DesignConfig(cache=False))
        assert with_cache.views == without.views
        assert with_cache.total_cost == without.total_cost
        assert with_cache.cache_stats is not None
        assert without.cache_stats is None

    def test_design_cache_hit_ratio_documented_floor(self, workload):
        """The acceptance floor: >= 50% hits on the full paper sweep."""
        result = design(workload, DesignConfig())
        assert result.cache_stats["hit_ratio"] >= 0.5


class TestWarehouseInvalidation:
    def test_sync_statistics_invalidates(self):
        warehouse = DataWarehouse.from_workload(paper_workload())
        warehouse.design(DesignConfig(rotations=2))
        assert len(warehouse.cost_cache) > 0
        warehouse.sync_statistics()
        assert len(warehouse.cost_cache) == 0
        assert warehouse.cost_cache.invalidations == 1

    def test_redesign_after_sync_repopulates(self):
        warehouse = DataWarehouse.from_workload(paper_workload())
        first = warehouse.design(DesignConfig(rotations=2))
        warehouse.sync_statistics()
        plan = warehouse.redesign(DesignConfig(rotations=2))
        assert len(warehouse.cost_cache) > 0
        # Unchanged statistics: same design, so the migration is a no-op.
        assert plan.is_noop
        assert warehouse.design_result.views == first.views

    def test_cache_disabled_leaves_warehouse_cache_empty(self):
        warehouse = DataWarehouse.from_workload(paper_workload())
        warehouse.design(DesignConfig(rotations=2, cache=False))
        assert len(warehouse.cost_cache) == 0


class TestObsExport:
    def test_publish_exports_counters_and_gauges(self):
        was_enabled = obs.enabled()
        obs.enable(reset=True)
        try:
            cache = CostCache()
            key = ("sig", frozenset())
            cache.lookup(key)
            cache.store(key, 1.0)
            cache.lookup(key)
            cache.publish()
            metrics = obs.snapshot()["metrics"]
            assert metrics["counters"]["cost_cache.hits"] == 1
            assert metrics["counters"]["cost_cache.misses"] == 1
            assert metrics["gauges"]["cost_cache.size"] == 1
            assert metrics["gauges"]["cost_cache.hit_ratio"] == 0.5
        finally:
            if not was_enabled:
                obs.disable()

    def test_design_publishes_cache_metrics(self, workload):
        was_enabled = obs.enabled()
        obs.enable(reset=True)
        try:
            design(workload, DesignConfig(rotations=2))
            metrics = obs.snapshot()["metrics"]
            assert metrics["counters"]["cost_cache.hits"] > 0
            assert metrics["gauges"]["cost_cache.size"] > 0
        finally:
            if not was_enabled:
                obs.disable()
