"""The unified DesignConfig API: validation, registry, shims, protocol.

Exercises the four entry points that accept a config —
``repro.design()``, ``DataWarehouse.design()``, ``redesign()`` and the
CLI — plus the legacy call shapes they keep alive behind
DeprecationWarnings, the strategy registry, and the CostedResult
protocol shared by StrategyResult and DesignResult.
"""

import warnings

import pytest

import repro
from repro import DesignConfig, DesignResult, StrategyResult, design
from repro.errors import MVPPError
from repro.mvpp import (
    DEFAULT_DESIGN_CONFIG,
    CostedResult,
    MVPPCostCalculator,
    get_strategy,
    register_strategy,
    strategies,
    strategy_names,
)
from repro.mvpp.config import coerce_design_config
from repro.warehouse import DataWarehouse
from repro.workload import paper_workload


class TestDesignConfig:
    def test_defaults(self):
        config = DesignConfig()
        assert config.strategy == "heuristic"
        assert config.rotations is None
        assert config.workers == 1
        assert config.executor == "auto"
        assert config.cache is True
        assert not config.parallel

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DesignConfig().workers = 4

    def test_replace_revalidates(self):
        config = DesignConfig().replace(workers=4)
        assert config.workers == 4 and config.parallel
        with pytest.raises(MVPPError):
            config.replace(workers=-1)

    @pytest.mark.parametrize(
        "bad",
        [
            {"strategy": ""},
            {"rotations": 0},
            {"workers": -1},
            {"executor": "fibers"},
            {"maintenance_trigger": "sometimes"},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(MVPPError):
            DesignConfig(**bad)

    def test_trigger_resolution(self):
        assert DesignConfig().resolved_trigger() == "per-period"
        assert (
            DesignConfig(maintenance_trigger="per-base").resolved_trigger()
            == "per-base"
        )

    def test_workers_zero_means_auto(self):
        config = DesignConfig(workers=0)
        assert config.parallel  # auto-sized pools are parallel


class TestCoercion:
    def test_no_legacy_returns_default(self):
        assert coerce_design_config(None, {}) is DEFAULT_DESIGN_CONFIG

    def test_config_passes_through(self):
        config = DesignConfig(rotations=2)
        assert coerce_design_config(config, {}) is config

    def test_legacy_kwargs_warn_and_fold(self):
        with pytest.warns(DeprecationWarning, match="rotations"):
            config = coerce_design_config(None, {"rotations": 3})
        assert config.rotations == 3

    def test_unknown_kwargs_raise_type_error(self):
        with pytest.raises(TypeError, match="bogus"):
            coerce_design_config(None, {"bogus": 1})


class TestStrategyRegistry:
    def test_known_names(self):
        names = strategy_names()
        for expected in ("heuristic", "figure9", "greedy", "exhaustive",
                         "annealing", "genetic", "all-virtual"):
            assert expected in names

    def test_unknown_strategy_raises_with_listing(self):
        with pytest.raises(MVPPError, match="heuristic"):
            get_strategy("nope")

    def test_unknown_strategy_fails_design(self):
        with pytest.raises(MVPPError):
            design(paper_workload(), DesignConfig(strategy="nope", rotations=1))

    def test_register_and_use_custom_strategy(self, workload):
        @register_strategy("test-nothing")
        def _nothing(mvpp, calculator, config):
            return []

        try:
            result = design(
                workload, DesignConfig(strategy="test-nothing", rotations=1)
            )
            assert result.views == ()
            assert result.maintenance_cost == 0.0
        finally:
            strategies._REGISTRY.pop("test-nothing", None)


class TestResultProtocol:
    def test_design_result_is_costed(self, workload):
        result = design(workload, DesignConfig(rotations=1))
        assert isinstance(result, DesignResult)
        assert isinstance(result, CostedResult)
        assert result.total_cost == result.query_cost + result.maintenance_cost
        assert result.views == result.materialized_names

    def test_strategy_result_is_costed(self, paper_mvpp, paper_calculator):
        row = strategies.heuristic(paper_mvpp, paper_calculator)
        assert isinstance(row, StrategyResult)
        assert isinstance(row, CostedResult)
        assert row.views == row.materialized

    def test_top_level_reexports(self):
        for name in (
            "DesignConfig",
            "DesignResult",
            "StrategyResult",
            "CostCache",
            "CostedResult",
            "strategy_names",
        ):
            assert hasattr(repro, name)


class TestLegacyCallShapes:
    """All four historical call shapes still work (with warnings)."""

    def test_design_legacy_kwargs(self, workload):
        with pytest.warns(DeprecationWarning):
            result = design(workload, rotations=2, push_down=True)
        assert result.config.rotations == 2

    def test_design_positional_estimator(self, workload, estimator):
        # design(workload, estimator) predates DesignConfig.
        result = design(workload, estimator, rotations=1)
        assert result.views

    def test_design_rejects_two_estimators(self, workload, estimator):
        with pytest.raises(TypeError, match="two estimators"):
            design(workload, estimator, estimator=estimator)

    def test_warehouse_design_legacy(self):
        warehouse = DataWarehouse.from_workload(paper_workload())
        with pytest.warns(DeprecationWarning):
            result = warehouse.design(rotations=2)
        assert result.views

    def test_warehouse_redesign_legacy(self):
        warehouse = DataWarehouse.from_workload(paper_workload())
        warehouse.design(DesignConfig(rotations=2))
        with pytest.warns(DeprecationWarning):
            plan = warehouse.redesign(rotations=2)
        assert plan.is_noop

    def test_cli_flags_build_config(self):
        from repro.cli import build_parser, design_config

        args = build_parser().parse_args(
            ["design", "--workers", "4", "--parallel", "thread",
             "--no-cost-cache", "--strategy", "greedy"]
        )
        config = design_config(args)
        assert config == DesignConfig(
            strategy="greedy", workers=4, executor="thread", cache=False,
            engine="vectorized",
        )


class TestPositionalBoolShims:
    def test_explain_positional_bool_warns(self):
        warehouse = DataWarehouse.from_workload(paper_workload())
        warehouse.design(DesignConfig(rotations=1))
        with pytest.warns(DeprecationWarning, match="explain"):
            with_views = warehouse.explain("Q1", True)
        assert with_views == warehouse.explain("Q1", use_views=True)

    def test_profile_positional_bool_warns(self):
        warehouse = DataWarehouse.from_workload(paper_workload())
        warehouse.design(DesignConfig(rotations=1))
        with pytest.warns(DeprecationWarning, match="profile"):
            try:
                warehouse.profile("Q1", False)
            except Exception:
                pass  # no data loaded; only the shim warning is under test

    def test_execute_rejects_excess_positionals(self):
        warehouse = DataWarehouse.from_workload(paper_workload())
        with pytest.raises(TypeError):
            warehouse.execute("Q1", True, "any", "extra")
