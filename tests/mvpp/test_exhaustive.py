"""Unit tests for the exhaustive optimum and greedy baselines."""

import pytest

from repro.errors import MVPPError
from repro.mvpp.cost import MVPPCostCalculator
from repro.mvpp.exhaustive import exhaustive_optimal, greedy_forward
from repro.mvpp.generation import generate_mvpps
from repro.mvpp.materialization import select_views
from repro.workload import GeneratorConfig, generate_workload


@pytest.fixture(scope="module")
def small_mvpp(small_synthetic):
    return generate_mvpps(small_synthetic.workload, rotations=1)[0]


class TestExhaustive:
    def test_beats_or_ties_every_baseline(self, small_mvpp):
        calc = MVPPCostCalculator(small_mvpp)
        _, best = exhaustive_optimal(small_mvpp, calc)
        heuristic = select_views(small_mvpp, calc)
        greedy_set, greedy_cost = greedy_forward(small_mvpp, calc)
        assert best.total <= calc.breakdown(heuristic.materialized).total + 1e-9
        assert best.total <= greedy_cost.total + 1e-9
        assert best.total <= calc.breakdown(()).total + 1e-9

    def test_candidate_cap_enforced(self, small_mvpp):
        calc = MVPPCostCalculator(small_mvpp)
        if len(small_mvpp.operations) > 2:
            with pytest.raises(MVPPError):
                exhaustive_optimal(small_mvpp, calc, max_candidates=2)

    def test_explicit_candidates_respected(self, small_mvpp):
        calc = MVPPCostCalculator(small_mvpp)
        pool = small_mvpp.operations[:3]
        chosen, _ = exhaustive_optimal(small_mvpp, calc, candidates=pool)
        assert set(v.vertex_id for v in chosen) <= {v.vertex_id for v in pool}


class TestGreedy:
    def test_monotone_improvement(self, small_mvpp):
        calc = MVPPCostCalculator(small_mvpp)
        chosen, final = greedy_forward(small_mvpp, calc)
        # Removing the last-added view must not improve the cost (greedy
        # stops exactly when nothing improves).
        assert final.total <= calc.breakdown(()).total
        if chosen:
            without_last = chosen[:-1]
            assert final.total <= calc.breakdown(without_last).total + 1e-9

    def test_empty_when_nothing_helps(self):
        # A workload whose queries are so cheap that no view pays for its
        # maintenance: single-relation scans with tiny frequencies.
        from repro.catalog import Catalog, DataType, StatisticsCatalog
        from repro.workload.spec import QuerySpec, Workload

        catalog = Catalog()
        catalog.register_relation("R", [("a", DataType.INTEGER)])
        statistics = StatisticsCatalog()
        statistics.set_relation("R", 100, 10)
        workload = Workload(
            name="tiny",
            catalog=catalog,
            statistics=statistics,
            queries=(QuerySpec("Q1", "SELECT a FROM R WHERE a > 5", 0.001),),
            update_frequencies={"R": 100.0},
        )
        mvpp = generate_mvpps(workload, rotations=1)[0]
        calc = MVPPCostCalculator(mvpp)
        chosen, breakdown = greedy_forward(mvpp, calc)
        assert chosen == []
        heuristic = select_views(mvpp, calc)
        assert heuristic.materialized == []


class TestAgreementOnSmallProblems:
    @pytest.mark.parametrize("seed", range(4))
    def test_heuristic_gap_is_bounded(self, seed):
        workload = generate_workload(
            GeneratorConfig(
                num_relations=4,
                num_queries=3,
                max_query_relations=3,
                seed=seed,
            )
        ).workload
        mvpp = generate_mvpps(workload, rotations=1)[0]
        if len(mvpp.operations) > 14:
            pytest.skip("too many candidates for exhaustive comparison")
        calc = MVPPCostCalculator(mvpp)
        _, best = exhaustive_optimal(mvpp, calc)
        heuristic = select_views(mvpp, calc)
        cost = calc.breakdown(heuristic.materialized).total
        assert cost <= 2.0 * best.total + 1e-9
