"""Unit tests for multiple-MVPP generation (Figure 4) and push-down."""

import pytest

from repro.algebra.expressions import Or
from repro.algebra.operators import Relation, Select
from repro.mvpp.generation import build_mvpp, design, generate_mvpps, prepare_queries
from repro.mvpp.cost import MVPPCostCalculator


class TestPrepareQueries:
    def test_one_info_per_query(self, workload, estimator):
        infos = prepare_queries(workload, estimator)
        assert {i.spec.name for i in infos} == {"Q1", "Q2", "Q3", "Q4"}

    def test_rank_is_fq_times_ca(self, workload, estimator):
        for info in prepare_queries(workload, estimator):
            assert info.rank == pytest.approx(
                info.spec.frequency * info.access_cost
            )


class TestGenerateMVPPs:
    def test_k_rotations_for_k_queries(self, paper_mvpps):
        assert len(paper_mvpps) == 4

    def test_rotations_limited(self, workload, estimator):
        assert len(generate_mvpps(workload, estimator, rotations=2)) == 2

    def test_every_mvpp_contains_all_queries(self, paper_mvpps):
        for mvpp in paper_mvpps:
            assert set(mvpp.query_names) == {"Q1", "Q2", "Q3", "Q4"}

    def test_mvpps_are_annotated_and_named(self, paper_mvpps):
        for mvpp in paper_mvpps:
            assert mvpp.is_annotated
            assert all(v.name for v in mvpp)

    def test_rotations_differ_structurally(self, paper_mvpps):
        signatures = {m.structure_signature() for m in paper_mvpps}
        assert len(signatures) >= 2  # the paper: (a)/(b) equal, (c) differs


class TestPushDown:
    def test_order_leaf_gets_disjunction(self, paper_mvpp):
        """Q3 filters date, Q4 filters quantity: the shared Order leaf
        must carry the OR of both (Figure 8)."""
        order_leaf = paper_mvpp.vertex_by_name("Order")
        stems = [
            p
            for p in paper_mvpp.parents_of(order_leaf)
            if isinstance(p.operator, Select)
        ]
        assert stems, "no selection stem over Order"
        assert isinstance(stems[0].operator.predicate, Or)

    def test_residual_selections_reapplied(self, paper_mvpp):
        """Queries sharing the disjunctive stem re-filter their own rows:
        Q4's plan must still contain a quantity-only selection."""
        q4_plan = paper_mvpp.query_root("Q4").operator
        residuals = [
            node
            for node in q4_plan.walk()
            if isinstance(node, Select)
            and not isinstance(node.predicate, Or)
            and "Order.quantity" in node.predicate.columns()
        ]
        assert residuals

    def test_single_query_leaf_has_plain_selection(self, paper_mvpp):
        """Division is filtered identically (city='LA') by all its queries,
        so its stem keeps the plain predicate, not a disjunction."""
        division = paper_mvpp.vertex_by_name("Division")
        stems = [
            p
            for p in paper_mvpp.parents_of(division)
            if isinstance(p.operator, Select)
        ]
        assert stems
        assert not isinstance(stems[0].operator.predicate, Or)

    def test_no_push_down_keeps_selections_above(self, workload, estimator):
        infos = sorted(
            prepare_queries(workload, estimator), key=lambda i: -i.rank
        )
        mvpp = build_mvpp(
            infos, workload, estimator, name="fig7", push_down=False
        )
        # Figure-7 form: every leaf is a bare base relation (no stems).
        for leaf in mvpp.leaves:
            for parent in mvpp.parents_of(leaf):
                assert not isinstance(parent.operator, Select) or not isinstance(
                    parent.operator.child, Relation
                )

    def test_fig7_disjunctive_stem_over_division(self, fig7_workload):
        """In the Figure 5/7/8 variant, Division is filtered differently by
        Q1 (city=LA), Q2 (name=Re) and Q3 (city=SF): the stem must be the
        three-way disjunction the paper pushes down in Figure 8."""
        mvpp = generate_mvpps(fig7_workload)[0]
        division = mvpp.vertex_by_name("Division")
        stems = [
            p
            for p in mvpp.parents_of(division)
            if isinstance(p.operator, Select)
        ]
        assert stems
        predicate = stems[0].operator.predicate
        assert isinstance(predicate, Or)
        assert len(predicate.children) == 3


class TestDesign:
    def test_design_picks_minimum(self, workload, estimator):
        result = design(workload, estimator)
        from repro.mvpp.materialization import select_views

        for mvpp in result.candidates:
            calc = MVPPCostCalculator(mvpp)
            chosen = select_views(mvpp, calc)
            assert result.total_cost <= calc.breakdown(chosen.materialized).total + 1e-6

    def test_design_result_fields(self, workload, estimator):
        result = design(workload, estimator)
        assert result.materialized_names
        assert result.breakdown.total > 0
        assert result.mvpp in result.candidates

    def test_empty_workload_rejected(self, workload, estimator):
        from dataclasses import replace
        from repro.errors import MVPPError

        empty = replace(workload, queries=())
        with pytest.raises(MVPPError):
            generate_mvpps(empty, estimator)


class TestIncludeNaive:
    def test_naive_candidate_considered(self, workload, estimator):
        from repro.mvpp.builder import build_from_workload
        from repro.mvpp.cost import MVPPCostCalculator
        from repro.mvpp.materialization import select_views

        combined = design(workload, estimator, include_naive=True)
        merged_only = design(workload, estimator, include_naive=False)
        naive = build_from_workload(workload, estimator)
        calc = MVPPCostCalculator(naive)
        naive_chosen = select_views(naive, calc, refine=True)
        naive_total = calc.breakdown(naive_chosen.materialized).total
        assert combined.total_cost <= min(
            merged_only.total_cost, naive_total
        ) + 1e-6

    def test_candidate_list_grows(self, workload, estimator):
        combined = design(workload, estimator, include_naive=True)
        merged_only = design(workload, estimator, include_naive=False)
        assert len(combined.candidates) == len(merged_only.candidates) + 1
