"""Edge-case tests for MVPP generation plus the graph validator."""

import pytest

from repro.catalog import Catalog, DataType, StatisticsCatalog
from repro.errors import MVPPError
from repro.mvpp import MVPPCostCalculator, generate_mvpps, select_views
from repro.workload.spec import QuerySpec, Workload


def tiny_catalog():
    catalog = Catalog()
    catalog.register_relation(
        "A", [("id", DataType.INTEGER), ("v", DataType.INTEGER)]
    )
    catalog.register_relation(
        "B", [("id", DataType.INTEGER), ("a_fk", DataType.INTEGER)]
    )
    statistics = StatisticsCatalog()
    statistics.set_relation("A", 1_000)
    statistics.set_relation("B", 5_000)
    statistics.set_column("A.id", 1_000)
    statistics.set_column("B.a_fk", 1_000)
    statistics.set_join_selectivity("B.a_fk", "A.id", 1 / 1_000)
    return catalog, statistics


def workload_of(queries):
    catalog, statistics = tiny_catalog()
    return Workload(
        name="edge",
        catalog=catalog,
        statistics=statistics,
        queries=tuple(queries),
        update_frequencies={"A": 1.0, "B": 1.0},
    )


class TestEdgeWorkloads:
    def test_single_query_workload(self):
        workload = workload_of(
            [QuerySpec("Q1", "SELECT v FROM A WHERE v > 5", 3.0)]
        )
        mvpps = generate_mvpps(workload)
        assert len(mvpps) == 1
        mvpps[0].validate()
        calc = MVPPCostCalculator(mvpps[0])
        result = select_views(mvpps[0], calc)
        assert calc.breakdown(result.materialized).total <= calc.breakdown(()).total

    def test_single_relation_queries_share_leaf(self):
        workload = workload_of(
            [
                QuerySpec("Q1", "SELECT v FROM A WHERE v > 5", 3.0),
                QuerySpec("Q2", "SELECT v FROM A WHERE v < 2", 1.0),
            ]
        )
        mvpp = generate_mvpps(workload, rotations=1)[0]
        mvpp.validate()
        assert len(mvpp.leaves) == 1

    def test_identical_queries_share_everything(self):
        sql = "SELECT B.id FROM A, B WHERE B.a_fk = A.id AND A.v > 7"
        workload = workload_of(
            [QuerySpec("Q1", sql, 2.0), QuerySpec("Q2", sql, 5.0)]
        )
        mvpp = generate_mvpps(workload, rotations=1)[0]
        mvpp.validate()
        # One shared plan: result vertex used by both query roots.
        result_vertices = {
            mvpp.children_of(root)[0].vertex_id for root in mvpp.roots
        }
        assert len(result_vertices) == 1

    def test_cross_product_query(self):
        workload = workload_of(
            [QuerySpec("Q1", "SELECT A.v FROM A, B", 1.0)]
        )
        mvpp = generate_mvpps(workload, rotations=1)[0]
        mvpp.validate()
        assert {l.name for l in mvpp.leaves} == {"A", "B"}

    def test_aggregate_query_through_generation(self):
        workload = workload_of(
            [
                QuerySpec(
                    "Q1",
                    "SELECT A.v, COUNT(*) AS n FROM A, B "
                    "WHERE B.a_fk = A.id GROUP BY A.v",
                    2.0,
                ),
                QuerySpec(
                    "Q2",
                    "SELECT B.id FROM A, B WHERE B.a_fk = A.id AND A.v > 3",
                    4.0,
                ),
            ]
        )
        mvpp = generate_mvpps(workload, rotations=1)[0]
        mvpp.validate()
        from repro.algebra.operators import Aggregate

        assert any(
            isinstance(v.operator, Aggregate) for v in mvpp.operations
        )
        # The A⋈B join is still shared below the aggregate.
        shared = [
            v for v in mvpp.operations if len(mvpp.queries_using(v)) == 2
        ]
        assert shared

    def test_zero_frequency_query_allowed(self):
        workload = workload_of(
            [QuerySpec("Q1", "SELECT v FROM A", 0.0)]
        )
        mvpp = generate_mvpps(workload)[0]
        calc = MVPPCostCalculator(mvpp)
        result = select_views(mvpp, calc)
        assert result.materialized == []  # nothing worth materializing


class TestValidator:
    def test_paper_mvpps_validate(self, paper_mvpps):
        for mvpp in paper_mvpps:
            mvpp.validate()

    def test_detects_broken_backlink(self, workload):
        mvpp = generate_mvpps(workload, rotations=1)[0]
        vertex = mvpp.operations[0]
        child = mvpp.children_of(vertex)[0]
        child.parents.discard(vertex.vertex_id)
        with pytest.raises(MVPPError):
            mvpp.validate()
        child.parents.add(vertex.vertex_id)  # restore for other tests

    def test_detects_root_with_parent(self, workload):
        mvpp = generate_mvpps(workload, rotations=1)[0]
        root = mvpp.roots[0]
        root.parents.add(mvpp.operations[0].vertex_id)
        with pytest.raises(MVPPError):
            mvpp.validate()
        root.parents.clear()
