"""Unit tests for the genetic-algorithm baseline."""

import pytest

from repro.errors import MVPPError
from repro.mvpp.cost import MVPPCostCalculator
from repro.mvpp.exhaustive import exhaustive_optimal
from repro.mvpp.generation import generate_mvpps
from repro.mvpp.genetic import GeneticConfig, genetic_search
from repro.workload import GeneratorConfig, generate_workload


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"generations": 0},
            {"tournament_size": 1},
            {"crossover_rate": 1.5},
            {"mutation_rate": -0.1},
            {"elitism": 24},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(MVPPError):
            GeneticConfig(**kwargs)


class TestSearch:
    def test_never_worse_than_all_virtual(self, paper_mvpp, paper_calculator):
        _, breakdown = genetic_search(paper_mvpp, paper_calculator)
        assert breakdown.total <= paper_calculator.breakdown(()).total

    def test_deterministic_for_seed(self, paper_mvpp, paper_calculator):
        a = genetic_search(paper_mvpp, paper_calculator)
        b = genetic_search(paper_mvpp, paper_calculator)
        assert [v.vertex_id for v in a[0]] == [v.vertex_id for v in b[0]]

    def test_reaches_optimum_on_example(self, paper_mvpp, paper_calculator):
        _, breakdown = genetic_search(paper_mvpp, paper_calculator)
        _, optimum = exhaustive_optimal(
            paper_mvpp, paper_calculator, max_candidates=16
        )
        assert breakdown.total <= optimum.total * 1.02

    def test_empty_pool(self, paper_mvpp, paper_calculator):
        chosen, breakdown = genetic_search(
            paper_mvpp, paper_calculator, candidates=[]
        )
        assert chosen == []

    @pytest.mark.parametrize("seed", range(2))
    def test_near_optimal_on_synthetic(self, seed):
        workload = generate_workload(
            GeneratorConfig(
                num_relations=4, num_queries=3, max_query_relations=3, seed=seed
            )
        ).workload
        mvpp = generate_mvpps(workload, rotations=1)[0]
        if len(mvpp.operations) > 14:
            pytest.skip("too large for exhaustive comparison")
        calc = MVPPCostCalculator(mvpp)
        _, breakdown = genetic_search(
            mvpp, calc, config=GeneticConfig(seed=seed)
        )
        _, optimum = exhaustive_optimal(mvpp, calc)
        assert breakdown.total <= optimum.total * 1.10
