"""Unit tests for the MVPP DAG structure."""

import pytest

from repro.errors import MVPPError
from repro.mvpp.graph import MVPP, VertexKind
from repro.mvpp.builder import build_from_workload
from repro.sql.translator import parse_query
from repro.optimizer.heuristics import optimize_query


@pytest.fixture(scope="module")
def mvpp(workload, estimator):
    """An MVPP built straight from the four optimized query plans."""
    return build_from_workload(workload, estimator)


class TestConstruction:
    def test_roots_and_leaves(self, mvpp):
        assert {r.name for r in mvpp.roots} == {"Q1", "Q2", "Q3", "Q4"}
        assert {l.name for l in mvpp.leaves} == {
            "Product",
            "Division",
            "Order",
            "Customer",
            "Part",
        }

    def test_duplicate_query_rejected(self, workload, estimator):
        mvpp = MVPP()
        plan = optimize_query(
            parse_query(workload.query("Q1").sql, workload.catalog), estimator
        )
        mvpp.add_query("Q1", plan, 10.0)
        with pytest.raises(MVPPError):
            mvpp.add_query("Q1", plan, 10.0)

    def test_negative_frequency_rejected(self, workload, estimator):
        mvpp = MVPP()
        plan = optimize_query(
            parse_query(workload.query("Q1").sql, workload.catalog), estimator
        )
        with pytest.raises(MVPPError):
            mvpp.add_query("Qx", plan, -1.0)

    def test_common_subexpressions_shared(self, workload, estimator):
        """Q1 and Q2 share Product ⋈ σ(Division): one vertex, two queries."""
        mvpp = build_from_workload(workload, estimator)
        shared = [
            v
            for v in mvpp.operations
            if len(mvpp.queries_using(v)) >= 2
        ]
        assert shared, "expected at least one shared subexpression vertex"

    def test_signature_deduplication(self, mvpp):
        signatures = [v.signature for v in mvpp.operations]
        assert len(signatures) == len(set(signatures))

    def test_operation_names_assigned(self, mvpp):
        names = [v.name for v in mvpp.operations]
        assert all(name.startswith("tmp") for name in names)
        assert len(set(names)) == len(names)


class TestTraversal:
    def test_children_parents_consistency(self, mvpp):
        for vertex in mvpp:
            for child in mvpp.children_of(vertex):
                assert vertex.vertex_id in child.parents
            for parent in mvpp.parents_of(vertex):
                assert vertex.vertex_id in parent.children

    def test_leaf_has_no_children_root_no_parents(self, mvpp):
        for leaf in mvpp.leaves:
            assert leaf.children == ()
        for root in mvpp.roots:
            assert root.parents == set()

    def test_descendants_of_root_cover_its_bases(self, mvpp):
        root = mvpp.query_root("Q3")
        bases = {v.name for v in mvpp.base_relations_of(root)}
        assert bases == {"Product", "Division", "Order", "Customer"}

    def test_ov_contains_expected_queries(self, mvpp):
        # The Product⋈σ(Division) vertex feeds Q1, Q2 and Q3.
        candidates = [
            v
            for v in mvpp.operations
            if v.operator.base_relations() == frozenset({"Product", "Division"})
        ]
        assert candidates
        queries = {
            q.name for q in mvpp.queries_using(candidates[0])
        }
        assert {"Q1", "Q2", "Q3"} <= queries

    def test_topological_order_children_first(self, mvpp):
        seen = set()
        for vertex in mvpp.topological_order():
            assert all(c in seen for c in vertex.children)
            seen.add(vertex.vertex_id)

    def test_topological_order_matches_sorted_list_reference(
        self, workload, estimator
    ):
        """The heapq Kahn rewrite must emit exactly the order the original
        sort-the-ready-list-per-iteration implementation produced, on every
        paper-workload MVPP."""
        from repro.mvpp import generate_mvpps

        def reference_order(graph):
            in_degree = {
                i: len(v.children) for i, v in graph._vertices.items()
            }
            ready = sorted(i for i, d in in_degree.items() if d == 0)
            order = []
            while ready:
                current = ready.pop(0)
                order.append(graph._vertices[current])
                for parent in graph._vertices[current].parents:
                    in_degree[parent] -= 1
                    if in_degree[parent] == 0:
                        ready.append(parent)
                ready.sort()
            return order

        for graph in generate_mvpps(workload, estimator):
            expected = [v.vertex_id for v in reference_order(graph)]
            actual = [v.vertex_id for v in graph.topological_order()]
            assert actual == expected

    def test_vertex_by_name(self, mvpp):
        assert mvpp.vertex_by_name("Q1").is_root
        with pytest.raises(MVPPError):
            mvpp.vertex_by_name("nope")

    def test_queries_using_root_is_itself(self, mvpp):
        root = mvpp.query_root("Q1")
        assert mvpp.queries_using(root) == [root]


class TestAnnotation:
    def test_leaf_costs_zero(self, mvpp):
        for leaf in mvpp.leaves:
            assert leaf.access_cost == 0.0
            assert leaf.maintenance_cost == 0.0

    def test_ca_monotone_along_arcs(self, mvpp):
        for vertex in mvpp.operations:
            for child in mvpp.children_of(vertex):
                assert vertex.access_cost >= child.access_cost

    def test_query_root_inherits_child_cost(self, mvpp):
        for root in mvpp.roots:
            child = mvpp.children_of(root)[0]
            assert root.access_cost == child.access_cost

    def test_cm_equals_ca_without_write_cost(self, mvpp):
        for vertex in mvpp.operations:
            assert vertex.maintenance_cost == vertex.access_cost

    def test_update_frequencies_applied(self, mvpp, workload):
        for leaf in mvpp.leaves:
            assert leaf.frequency == workload.update_frequency(leaf.name)

    def test_structure_signature_stable(self, workload, estimator):
        a = build_from_workload(workload, estimator)
        b = build_from_workload(workload, estimator)
        assert a.structure_signature() == b.structure_signature()

    def test_require_annotation(self, workload, estimator):
        mvpp = MVPP()
        plan = optimize_query(
            parse_query(workload.query("Q1").sql, workload.catalog), estimator
        )
        mvpp.add_query("Q1", plan, 10.0)
        with pytest.raises(MVPPError):
            mvpp.require_annotation()

    def test_describe_renders_every_vertex(self, mvpp):
        text = mvpp.describe()
        for vertex in mvpp:
            assert vertex.name in text
