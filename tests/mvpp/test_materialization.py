"""Unit tests for the Figure-9 selection heuristic."""

import pytest

from repro.mvpp.cost import MVPPCostCalculator
from repro.mvpp.materialization import select_views


class TestSelection:
    def test_selected_vertices_are_operations(self, paper_mvpp, paper_calculator):
        result = select_views(paper_mvpp, paper_calculator)
        for vertex in result.materialized:
            assert vertex.kind.value == "operation"

    def test_every_pick_had_positive_saving(self, paper_mvpp, paper_calculator):
        result = select_views(paper_mvpp, paper_calculator)
        accepted = [s for s in result.trace if s.decision == "materialize"]
        assert accepted
        assert all(s.saving > 0 for s in accepted)

    def test_rejections_prune_branches(self, paper_mvpp, paper_calculator):
        result = select_views(paper_mvpp, paper_calculator)
        rejected = [s for s in result.trace if s.decision == "reject"]
        # In the paper's run, rejecting the Q4-result node prunes its chain.
        assert any(s.pruned for s in rejected) or not rejected

    def test_better_than_all_virtual(self, paper_mvpp, paper_calculator):
        result = select_views(paper_mvpp, paper_calculator)
        chosen = paper_calculator.breakdown(result.materialized).total
        nothing = paper_calculator.breakdown(()).total
        assert chosen < nothing

    def test_trace_covers_positive_weight_nodes(self, paper_mvpp, paper_calculator):
        result = select_views(paper_mvpp, paper_calculator)
        traced = {s.vertex for s in result.trace}
        positive = {
            v.name
            for v in paper_mvpp.operations
            if paper_calculator.weight(v) > 0
        }
        # every positive-weight vertex was either decided or pruned
        pruned = {name for s in result.trace for name in s.pruned}
        assert positive <= traced | pruned

    def test_deterministic(self, paper_mvpp):
        a = select_views(paper_mvpp, MVPPCostCalculator(paper_mvpp))
        b = select_views(paper_mvpp, MVPPCostCalculator(paper_mvpp))
        assert a.names == b.names

    def test_no_vertex_fully_shadowed_by_parents(self, paper_mvpp, paper_calculator):
        """Step 9: if all parents of v are materialized, v must be dropped."""
        result = select_views(paper_mvpp, paper_calculator)
        chosen = {v.vertex_id for v in result.materialized}
        for vertex in result.materialized:
            parents = paper_mvpp.parents_of(vertex)
            assert not parents or not all(
                p.vertex_id in chosen for p in parents
            )

    def test_works_on_every_rotation(self, paper_mvpps):
        for mvpp in paper_mvpps:
            calc = MVPPCostCalculator(mvpp)
            result = select_views(mvpp, calc)
            assert calc.breakdown(result.materialized).total <= calc.breakdown(()).total


class TestSyntheticWorkloads:
    @pytest.mark.parametrize("seed", range(5))
    def test_never_worse_than_all_virtual(self, seed):
        from repro.mvpp.generation import generate_mvpps
        from repro.workload import GeneratorConfig, generate_workload

        workload = generate_workload(
            GeneratorConfig(num_relations=5, num_queries=4, seed=seed)
        ).workload
        mvpp = generate_mvpps(workload, rotations=1)[0]
        calc = MVPPCostCalculator(mvpp)
        result = select_views(mvpp, calc)
        assert (
            calc.breakdown(result.materialized).total
            <= calc.breakdown(()).total + 1e-9
        )
