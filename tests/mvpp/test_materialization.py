"""Unit tests for the Figure-9 selection heuristic."""

import pytest

from repro.mvpp.cost import MVPPCostCalculator
from repro.mvpp.materialization import select_views


class TestSelection:
    def test_selected_vertices_are_operations(self, paper_mvpp, paper_calculator):
        result = select_views(paper_mvpp, paper_calculator)
        for vertex in result.materialized:
            assert vertex.kind.value == "operation"

    def test_every_pick_had_positive_saving(self, paper_mvpp, paper_calculator):
        result = select_views(paper_mvpp, paper_calculator)
        accepted = [s for s in result.trace if s.decision == "materialize"]
        assert accepted
        assert all(s.saving > 0 for s in accepted)

    def test_rejections_prune_branches(self, paper_mvpp, paper_calculator):
        result = select_views(paper_mvpp, paper_calculator)
        rejected = [s for s in result.trace if s.decision == "reject"]
        # In the paper's run, rejecting the Q4-result node prunes its chain.
        assert any(s.pruned for s in rejected) or not rejected

    def test_better_than_all_virtual(self, paper_mvpp, paper_calculator):
        result = select_views(paper_mvpp, paper_calculator)
        chosen = paper_calculator.breakdown(result.materialized).total
        nothing = paper_calculator.breakdown(()).total
        assert chosen < nothing

    def test_trace_covers_positive_weight_nodes(self, paper_mvpp, paper_calculator):
        result = select_views(paper_mvpp, paper_calculator)
        traced = {s.vertex for s in result.trace}
        positive = {
            v.name
            for v in paper_mvpp.operations
            if paper_calculator.weight(v) > 0
        }
        # every positive-weight vertex was either decided or pruned
        pruned = {name for s in result.trace for name in s.pruned}
        assert positive <= traced | pruned

    def test_deterministic(self, paper_mvpp):
        a = select_views(paper_mvpp, MVPPCostCalculator(paper_mvpp))
        b = select_views(paper_mvpp, MVPPCostCalculator(paper_mvpp))
        assert a.names == b.names

    def test_no_vertex_fully_shadowed_by_parents(self, paper_mvpp, paper_calculator):
        """Step 9: if all parents of v are materialized, v must be dropped."""
        result = select_views(paper_mvpp, paper_calculator)
        chosen = {v.vertex_id for v in result.materialized}
        for vertex in result.materialized:
            parents = paper_mvpp.parents_of(vertex)
            assert not parents or not all(
                p.vertex_id in chosen for p in parents
            )

    def test_works_on_every_rotation(self, paper_mvpps):
        for mvpp in paper_mvpps:
            calc = MVPPCostCalculator(mvpp)
            result = select_views(mvpp, calc)
            assert calc.breakdown(result.materialized).total <= calc.breakdown(()).total

    def test_pruned_steps_record_real_weights(self, paper_mvpps):
        """Step-9 / refinement trace entries must carry the vertex's
        actual weight, not a 0.0 placeholder (regression: ``repro
        trace`` lost the weight of pruned vertices)."""
        seen_pruned = 0
        for mvpp in paper_mvpps:
            calc = MVPPCostCalculator(mvpp)
            result = select_views(mvpp, calc, refine=True)
            by_name = {v.name: v for v in mvpp.operations}
            for step in result.trace:
                if step.decision != "pruned":
                    continue
                seen_pruned += 1
                assert step.weight == pytest.approx(
                    calc.weight(by_name[step.vertex])
                )
                # A pruned vertex made it into M, so its weight was > 0.
                assert step.weight > 0
        assert seen_pruned > 0, "no pruned step exercised on any rotation"


class TestRefinementEquivalence:
    def test_refined_trace_matches_full_breakdown_reference(self, paper_mvpps):
        """The incremental ``removal_delta`` refinement must make the
        exact decisions (same drops, same order, same final set) as the
        original full-``breakdown``-per-candidate implementation, on
        every paper-workload rotation."""
        from repro.mvpp.materialization import (
            SelectionStep,
            _drop_net_losses,
            select_views,
        )

        def reference_drop_net_losses(chosen, calculator, trace):
            # The pre-optimization O(candidates · roots) implementation.
            current = list(chosen)
            total = calculator.breakdown(current).total
            improved = True
            while improved and current:
                improved = False
                for vertex in sorted(current, key=lambda v: v.access_cost):
                    without = [
                        v for v in current if v.vertex_id != vertex.vertex_id
                    ]
                    candidate_total = calculator.breakdown(without).total
                    if candidate_total < total:
                        current = without
                        total = candidate_total
                        improved = True
                        trace.append(
                            SelectionStep(
                                vertex.name,
                                calculator.weight(vertex),
                                None,
                                "pruned",
                                (vertex.name,),
                            )
                        )
                        break
            return current

        for mvpp in paper_mvpps:
            calc = MVPPCostCalculator(mvpp)
            base = select_views(mvpp, calc)
            fast_trace, slow_trace = [], []
            fast = _drop_net_losses(list(base.materialized), calc, fast_trace)
            slow = reference_drop_net_losses(
                list(base.materialized), calc, slow_trace
            )
            assert [v.name for v in fast] == [v.name for v in slow]
            assert fast_trace == slow_trace

    def test_full_selection_trace_is_stable(self, paper_mvpps):
        """End-to-end: refine=True traces are bit-identical across runs."""
        for mvpp in paper_mvpps:
            a = select_views(mvpp, MVPPCostCalculator(mvpp), refine=True)
            b = select_views(mvpp, MVPPCostCalculator(mvpp), refine=True)
            assert a.trace == b.trace
            assert a.names == b.names


class TestSyntheticWorkloads:
    @pytest.mark.parametrize("seed", range(5))
    def test_never_worse_than_all_virtual(self, seed):
        from repro.mvpp.generation import generate_mvpps
        from repro.workload import GeneratorConfig, generate_workload

        workload = generate_workload(
            GeneratorConfig(num_relations=5, num_queries=4, seed=seed)
        ).workload
        mvpp = generate_mvpps(workload, rotations=1)[0]
        calc = MVPPCostCalculator(mvpp)
        result = select_views(mvpp, calc)
        assert (
            calc.breakdown(result.materialized).total
            <= calc.breakdown(()).total + 1e-9
        )
