"""Unit tests for skeleton merging (Figure 4, step 4.3)."""

import pytest

from repro.algebra.operators import Join, Relation
from repro.algebra.rewrite import pull_up
from repro.algebra.tree import find, leaves, subtree_signatures
from repro.mvpp.generation import prepare_queries
from repro.mvpp.merge import (
    SkeletonPool,
    merge_skeletons,
    skeleton_join_conjuncts,
)


@pytest.fixture(scope="module")
def skeletons(workload, estimator):
    infos = sorted(prepare_queries(workload, estimator), key=lambda i: -i.rank)
    return {info.spec.name: info.pulled.skeleton for info in infos}, [
        info.spec.name for info in infos
    ]


class TestSkeletonJoinConjuncts:
    def test_counts(self, skeletons):
        by_name, _ = skeletons
        assert len(skeleton_join_conjuncts(by_name["Q3"])) == 3
        assert len(skeleton_join_conjuncts(by_name["Q1"])) == 1


class TestMergeOrder:
    def test_paper_order_is_q4_first(self, skeletons):
        _, order = skeletons
        # fq*Ca ranking: Q4 (5 × ~6m) dominates, as in the paper.
        assert order[0] == "Q4"

    def test_seed_skeleton_unchanged(self, skeletons):
        by_name, order = skeletons
        merged = merge_skeletons([(n, by_name[n]) for n in order])
        assert merged[order[0]].signature == by_name[order[0]].signature


class TestSharing:
    def test_q3_reuses_q4_join_pattern(self, skeletons):
        """After Q4 is merged, Q3 must reuse the Order⋈Customer node."""
        by_name, order = skeletons
        merged = merge_skeletons([(n, by_name[n]) for n in order])
        q4_joins = {
            node.signature
            for node in merged["Q4"].walk()
            if isinstance(node, Join)
        }
        q3_joins = {
            node.signature
            for node in merged["Q3"].walk()
            if isinstance(node, Join)
        }
        assert q4_joins & q3_joins, "Q3 and Q4 share no join vertex"

    def test_q1_reuses_q2_product_division(self, skeletons):
        by_name, order = skeletons
        merged = merge_skeletons([(n, by_name[n]) for n in order])
        q2_signatures = set(subtree_signatures(merged["Q2"]))
        assert merged["Q1"].signature in q2_signatures

    def test_merged_plans_cover_original_relations(self, skeletons):
        by_name, order = skeletons
        merged = merge_skeletons([(n, by_name[n]) for n in order])
        for name, skeleton in by_name.items():
            assert merged[name].base_relations() == skeleton.base_relations()

    def test_merged_plans_keep_all_join_predicates(self, skeletons):
        by_name, order = skeletons
        merged = merge_skeletons([(n, by_name[n]) for n in order])
        for name, skeleton in by_name.items():
            original = {p.signature for p in skeleton_join_conjuncts(skeleton)}
            rebuilt = {p.signature for p in skeleton_join_conjuncts(merged[name])}
            assert original == rebuilt, name


class TestPool:
    def test_reuse_requires_matching_conditions(self, workload, estimator):
        """A pooled join with a different predicate must not be reused."""
        from repro.algebra.expressions import column, compare

        def leaf(name):
            return Relation(name, workload.catalog.schema(name).qualify())

        pool = SkeletonPool()
        weird = Join(
            leaf("Order"),
            leaf("Customer"),
            compare("Order.Pid", "=", column("Customer.Cid")),  # wrong key!
        )
        pool.add_tree(weird)
        normal_predicates = [
            compare("Order.Cid", "=", column("Customer.Cid"))
        ]
        pieces = pool.reusable_pieces({"Order", "Customer"}, normal_predicates)
        assert pieces == []

    def test_reuse_prefers_larger_cover(self, skeletons):
        by_name, order = skeletons
        pool = SkeletonPool()
        pool.add_tree(by_name["Q3"])  # contains both PD and PDOC joins
        predicates = skeleton_join_conjuncts(by_name["Q3"])
        pieces = pool.reusable_pieces(
            {"Product", "Division", "Order", "Customer"}, predicates
        )
        covered = {leaf.name for piece in pieces for leaf in leaves(piece)}
        assert covered == {"Product", "Division", "Order", "Customer"}
        assert len(pieces) == 1  # the whole four-way join is reused
