"""Unit tests for the MQO baseline (paper Section 3.2)."""

import pytest

from repro.mvpp.cost import MVPPCostCalculator
from repro.mvpp.materialization import select_views
from repro.mvpp.mqo import batch_execution, mqo_as_design


class TestBatchExecution:
    def test_sharing_never_hurts_batch_cost(self, paper_mvpp):
        result = batch_execution(paper_mvpp)
        assert result.shared_cost <= result.serial_cost
        assert result.saving >= 0

    def test_example_has_real_sharing(self, paper_mvpp):
        result = batch_execution(paper_mvpp)
        assert result.shared_vertices  # tmp2/tmp4 analogs at least
        assert result.speedup > 1.0

    def test_serial_is_sum_of_ca(self, paper_mvpp):
        result = batch_execution(paper_mvpp)
        assert result.serial_cost == pytest.approx(
            sum(root.access_cost for root in paper_mvpp.roots)
        )

    def test_requires_annotation(self, workload, estimator):
        from repro.errors import MVPPError
        from repro.mvpp.graph import MVPP
        from repro.optimizer.heuristics import optimize_query
        from repro.sql.translator import parse_query

        mvpp = MVPP()
        mvpp.add_query(
            "Q1",
            optimize_query(
                parse_query(workload.query("Q1").sql, workload.catalog), estimator
            ),
            10.0,
        )
        with pytest.raises(MVPPError):
            batch_execution(mvpp)


class TestMQOAsDesign:
    def test_returns_topmost_shared_nodes(self, paper_mvpp, paper_calculator):
        chosen, _ = mqo_as_design(paper_mvpp, paper_calculator)
        assert chosen
        ids = {v.vertex_id for v in chosen}
        for vertex in chosen:
            assert len(paper_mvpp.queries_using(vertex)) >= 2
            assert not any(p in ids for p in vertex.parents)

    def test_mvpp_heuristic_beats_or_ties_mqo_choice(
        self, paper_mvpp, paper_calculator
    ):
        """The paper's argument: MQO's sharing objective ignores
        maintenance, so its choice cannot beat the MVPP-aware design."""
        _, mqo_breakdown = mqo_as_design(paper_mvpp, paper_calculator)
        heuristic = select_views(paper_mvpp, paper_calculator, refine=True)
        heuristic_total = paper_calculator.breakdown(
            heuristic.materialized
        ).total
        assert heuristic_total <= mqo_breakdown.total + 1e-9

    def test_divergence_on_skewed_frequencies(self, paper_mvpp, paper_calculator):
        """With cold queries (fq ≪ fu) MQO still shares, but persisting
        the temporaries is a net loss versus staying virtual — the
        objectives measurably diverge."""
        base = {root.name: root.frequency for root in paper_mvpp.roots}
        try:
            for root in paper_mvpp.roots:
                root.frequency = 0.001
            calc = MVPPCostCalculator(paper_mvpp)
            _, mqo_breakdown = mqo_as_design(paper_mvpp, calc)
            virtual_total = calc.breakdown(()).total
            assert mqo_breakdown.total > virtual_total
        finally:
            for root in paper_mvpp.roots:
                root.frequency = base[root.name]
