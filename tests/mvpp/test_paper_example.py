"""Reproduction assertions for the paper's worked example.

These tests pin the qualitative claims of Table 2 and Section 4.3 on the
paper-seeded MVPP (first rotation, Q4's plan merged first — the paper's
list order):

* the Figure-9 heuristic materializes exactly the two shared
  intermediates — the Product⋈σ(Division) node ("tmp2") and the
  Order⋈Customer node ("tmp4");
* that strategy beats every other Table-2 row;
* materializing all queries minimizes query cost but maximizes
  maintenance; keeping everything virtual does the reverse;
* the Section-4.3 trace accepts the Order⋈Customer node first.
"""

import pytest

from repro.algebra.operators import Join
from repro.mvpp import strategies
from repro.mvpp.cost import MVPPCostCalculator
from repro.mvpp.exhaustive import exhaustive_optimal
from repro.mvpp.materialization import select_views


def join_over(mvpp, bases):
    for vertex in mvpp.operations:
        if isinstance(vertex.operator, Join) and vertex.operator.base_relations() == frozenset(bases):
            return vertex
    raise AssertionError(f"no join vertex over {bases}")


@pytest.fixture(scope="module")
def tmp2(paper_mvpp):
    """The paper's tmp2: Product ⋈ σ(Division)."""
    return join_over(paper_mvpp, {"Product", "Division"})


@pytest.fixture(scope="module")
def tmp4(paper_mvpp):
    """The paper's tmp4 (Section 4.3 numbering): Order ⋈ Customer."""
    return join_over(paper_mvpp, {"Order", "Customer"})


@pytest.fixture(scope="module")
def tmp6(paper_mvpp):
    """The paper's tmp6: the four-way join feeding Q3."""
    return join_over(paper_mvpp, {"Product", "Division", "Order", "Customer"})


class TestSharedStructure:
    def test_tmp2_shared_by_q1_q2_q3(self, paper_mvpp, tmp2):
        queries = {q.name for q in paper_mvpp.queries_using(tmp2)}
        assert queries == {"Q1", "Q2", "Q3"}

    def test_tmp4_shared_by_q3_q4(self, paper_mvpp, tmp4):
        queries = {q.name for q in paper_mvpp.queries_using(tmp4)}
        assert queries == {"Q3", "Q4"}

    def test_tmp6_only_q3(self, paper_mvpp, tmp6):
        assert {q.name for q in paper_mvpp.queries_using(tmp6)} == {"Q3"}


class TestSection43Trace:
    def test_heuristic_selects_exactly_tmp2_and_tmp4(
        self, paper_mvpp, tmp2, tmp4
    ):
        calc = MVPPCostCalculator(paper_mvpp)
        result = select_views(paper_mvpp, calc)
        assert {v.vertex_id for v in result.materialized} == {
            tmp2.vertex_id,
            tmp4.vertex_id,
        }

    def test_tmp4_analog_accepted_first(self, paper_mvpp, tmp4):
        """Section 4.3 starts with tmp4 — the highest-weight node."""
        calc = MVPPCostCalculator(paper_mvpp)
        result = select_views(paper_mvpp, calc)
        first = result.trace[0]
        assert first.decision == "materialize"
        assert first.vertex == tmp4.name

    def test_query_result_nodes_rejected(self, paper_mvpp):
        """The paper rejects result4 (materializing Q4's own result)."""
        calc = MVPPCostCalculator(paper_mvpp)
        result = select_views(paper_mvpp, calc)
        chosen = {v.vertex_id for v in result.materialized}
        for root in paper_mvpp.roots:
            assert paper_mvpp.children_of(root)[0].vertex_id not in chosen


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self, paper_mvpp, tmp2, tmp4, tmp6):
        calc = MVPPCostCalculator(paper_mvpp)
        return {
            "virtual": strategies.materialize_nothing(paper_mvpp, calc),
            "tmp2_tmp4_tmp6": strategies.custom(
                paper_mvpp, calc, "x", [tmp2.name, tmp4.name, tmp6.name]
            ),
            "tmp2_tmp6": strategies.custom(
                paper_mvpp, calc, "x", [tmp2.name, tmp6.name]
            ),
            "tmp2_tmp4": strategies.custom(
                paper_mvpp, calc, "x", [tmp2.name, tmp4.name]
            ),
            "queries": strategies.materialize_all_queries(paper_mvpp, calc),
        }

    def test_tmp2_tmp4_is_best_listed_strategy(self, rows):
        best = min(rows.values(), key=lambda r: r.total_cost)
        assert best is rows["tmp2_tmp4"]

    def test_all_virtual_zero_maintenance_worst_queries(self, rows):
        virtual = rows["virtual"]
        assert virtual.maintenance_cost == 0.0
        assert virtual.query_cost == max(r.query_cost for r in rows.values())

    def test_materialize_queries_min_query_max_maintenance(self, rows):
        queries = rows["queries"]
        assert queries.query_cost == min(r.query_cost for r in rows.values())
        assert queries.maintenance_cost == max(
            r.maintenance_cost for r in rows.values()
        )

    def test_shared_pair_beats_naive_extremes_substantially(self, rows):
        assert rows["tmp2_tmp4"].total_cost < 0.5 * rows["virtual"].total_cost
        assert rows["tmp2_tmp4"].total_cost < rows["queries"].total_cost


class TestOptimality:
    def test_heuristic_matches_exhaustive_on_example(self, paper_mvpp):
        calc = MVPPCostCalculator(paper_mvpp)
        heuristic = select_views(paper_mvpp, calc)
        heuristic_cost = calc.breakdown(heuristic.materialized).total
        _, best = exhaustive_optimal(paper_mvpp, calc, max_candidates=16)
        assert heuristic_cost <= 1.05 * best.total
