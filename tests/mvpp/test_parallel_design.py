"""Serial-vs-parallel equivalence: determinism is the contract.

``design()`` must pick the same views and report the same costs (bit
identical, not approximately) for every worker count and backend; the
same holds for ``generate_mvpps``, ``strategies.compare`` and the
chunked exhaustive sweep.
"""

import pytest

from repro.mvpp import (
    DesignConfig,
    MVPPCostCalculator,
    design,
    exhaustive_optimal,
    generate_mvpps,
    strategies,
)
from repro.parallel import ThreadExecutor, resolve_executor
from repro.workload import GeneratorConfig, generate_workload, paper_workload

WORKERS = [1, 2, 4]


@pytest.fixture(scope="module")
def synthetic_workload():
    """A synthetic sweep-sized workload (8 queries)."""
    return generate_workload(
        GeneratorConfig(num_relations=6, num_queries=8, seed=3)
    ).workload


def _design_key(result):
    """Everything that must be bit-identical across backends."""
    return (
        result.mvpp.name,
        result.views,
        result.breakdown.query_processing,
        result.breakdown.maintenance,
        [m.name for m in result.candidates],
    )


class TestDesignEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("workers", WORKERS)
    def test_paper_workload(self, workers, backend):
        serial = design(paper_workload(), DesignConfig(workers=1))
        parallel = design(
            paper_workload(),
            DesignConfig(workers=workers, executor=backend),
        )
        assert _design_key(parallel) == _design_key(serial)

    @pytest.mark.parametrize("workers", WORKERS)
    def test_synthetic_workload(self, synthetic_workload, workers):
        serial = design(
            synthetic_workload, DesignConfig(rotations=4, workers=1)
        )
        parallel = design(
            synthetic_workload,
            DesignConfig(rotations=4, workers=workers, executor="thread"),
        )
        assert _design_key(parallel) == _design_key(serial)

    def test_cache_on_off_equivalent_in_parallel(self, synthetic_workload):
        cached = design(
            synthetic_workload,
            DesignConfig(rotations=4, workers=4, executor="thread"),
        )
        uncached = design(
            synthetic_workload,
            DesignConfig(rotations=4, workers=4, executor="thread", cache=False),
        )
        assert _design_key(cached) == _design_key(uncached)

    @pytest.mark.parametrize("strategy", ["greedy", "figure9", "annealing"])
    def test_alternate_strategies_equivalent(self, strategy):
        serial = design(paper_workload(), DesignConfig(strategy=strategy))
        parallel = design(
            paper_workload(),
            DesignConfig(strategy=strategy, workers=4, executor="thread"),
        )
        assert _design_key(parallel) == _design_key(serial)


class TestGenerationEquivalence:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_rotations_identical(self, workload, workers):
        serial = generate_mvpps(workload)
        parallel = generate_mvpps(
            workload, config=DesignConfig(workers=workers, executor="thread")
        )
        assert [m.name for m in parallel] == [m.name for m in serial]
        assert [len(m) for m in parallel] == [len(m) for m in serial]
        for a, b in zip(serial, parallel):
            assert [v.signature for v in a.operations] == [
                v.signature for v in b.operations
            ]


class TestCompareEquivalence:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_table2_rows_identical(self, paper_mvpp, workers):
        serial_rows = strategies.compare(
            paper_mvpp, MVPPCostCalculator(paper_mvpp)
        )
        parallel_rows = strategies.compare(
            paper_mvpp,
            MVPPCostCalculator(paper_mvpp),
            config=DesignConfig(workers=workers, executor="thread"),
        )
        assert [
            (r.name, r.materialized, r.total_cost) for r in parallel_rows
        ] == [(r.name, r.materialized, r.total_cost) for r in serial_rows]


class TestExhaustiveEquivalence:
    def test_chunked_sweep_matches_serial(self, paper_mvpp):
        calculator = MVPPCostCalculator(paper_mvpp)
        pool = paper_mvpp.operations[:8]
        serial_set, serial_best = exhaustive_optimal(
            paper_mvpp, calculator, candidates=pool
        )
        for workers in (2, 4):
            chosen, best = exhaustive_optimal(
                paper_mvpp,
                calculator,
                candidates=pool,
                executor=ThreadExecutor(workers),
            )
            assert [v.name for v in chosen] == [v.name for v in serial_set]
            assert best.total == serial_best.total


class TestSelectionFanout:
    def test_select_views_with_executor(self, paper_mvpp):
        from repro.mvpp import select_views

        serial = select_views(paper_mvpp, MVPPCostCalculator(paper_mvpp))
        parallel = select_views(
            paper_mvpp,
            MVPPCostCalculator(paper_mvpp),
            executor=resolve_executor("thread", 4, closures=True),
        )
        assert parallel.names == serial.names
