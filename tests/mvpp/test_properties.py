"""Property-based tests for the MVPP design pipeline on random workloads.

Invariants:

* the cost calculator is monotone in the sense that materializing a
  vertex never *increases* pure query-processing cost;
* the Figure-9 heuristic never produces a design worse than all-virtual;
* every generated MVPP preserves each query's base relations and output
  schema;
* total cost decomposes exactly into query + maintenance parts.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mvpp.cost import MVPPCostCalculator, PER_BASE, PER_PERIOD
from repro.mvpp.generation import generate_mvpps, prepare_queries
from repro.mvpp.materialization import select_views
from repro.optimizer.cardinality import CardinalityEstimator
from repro.sql.translator import parse_query
from repro.workload.generator import GeneratorConfig, generate_workload

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build(seed):
    workload = generate_workload(
        GeneratorConfig(
            num_relations=5,
            num_queries=4,
            max_query_relations=3,
            seed=seed,
        )
    ).workload
    mvpp = generate_mvpps(workload, rotations=1)[0]
    return workload, mvpp


@SLOW
@given(st.integers(min_value=0, max_value=10_000))
def test_materializing_never_increases_query_cost(seed):
    _, mvpp = build(seed)
    calc = MVPPCostCalculator(mvpp)
    baseline = calc.query_processing_cost(frozenset())
    for vertex in mvpp.operations:
        assert (
            calc.query_processing_cost(frozenset({vertex.vertex_id}))
            <= baseline + 1e-6
        )


@SLOW
@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from([PER_PERIOD, PER_BASE]),
)
def test_refined_heuristic_never_worse_than_all_virtual(seed, trigger):
    _, mvpp = build(seed)
    calc = MVPPCostCalculator(mvpp, trigger)
    result = select_views(mvpp, calc, refine=True)
    assert (
        calc.breakdown(result.materialized).total
        <= calc.breakdown(()).total + 1e-6
    )


@SLOW
@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from([PER_PERIOD, PER_BASE]),
)
def test_faithful_heuristic_within_tolerance_of_all_virtual(seed, trigger):
    """The paper's Cs formula ignores the B(v) scan cost of a stored view,
    so the faithful heuristic may overshoot all-virtual — but only by the
    scan costs of the chosen views, never catastrophically."""
    _, mvpp = build(seed)
    calc = MVPPCostCalculator(mvpp, trigger)
    result = select_views(mvpp, calc)
    chosen = calc.breakdown(result.materialized).total
    virtual = calc.breakdown(()).total
    assert chosen <= 1.05 * virtual + 1e-6


@SLOW
@given(st.integers(min_value=0, max_value=10_000))
def test_generated_mvpp_preserves_query_semantics_statically(seed):
    workload, mvpp = build(seed)
    for spec in workload.queries:
        original = parse_query(spec.sql, workload.catalog)
        in_mvpp = mvpp.query_root(spec.name).operator
        assert in_mvpp.base_relations() == original.base_relations()
        assert set(in_mvpp.schema.attribute_names) == set(
            original.schema.attribute_names
        )


@SLOW
@given(st.integers(min_value=0, max_value=10_000))
def test_breakdown_decomposition(seed):
    _, mvpp = build(seed)
    calc = MVPPCostCalculator(mvpp)
    chosen = mvpp.operations[: max(1, len(mvpp.operations) // 2)]
    breakdown = calc.breakdown(chosen)
    ids = frozenset(v.vertex_id for v in chosen)
    assert breakdown.query_processing == calc.query_processing_cost(ids)
    assert breakdown.maintenance == calc.maintenance_cost(ids)
    assert breakdown.total == breakdown.query_processing + breakdown.maintenance


@SLOW
@given(st.integers(min_value=0, max_value=10_000))
def test_weights_match_incremental_saving_on_empty_set(seed):
    _, mvpp = build(seed)
    calc = MVPPCostCalculator(mvpp)
    for vertex in mvpp.operations:
        assert abs(
            calc.weight(vertex) - calc.incremental_saving(vertex, frozenset())
        ) <= 1e-6 * max(1.0, abs(calc.weight(vertex)))


@SLOW
@given(st.integers(min_value=0, max_value=10_000))
def test_rank_ordering_is_stable_under_preparation(seed):
    workload, _ = build(seed)
    estimator = CardinalityEstimator(workload.statistics)
    a = [i.spec.name for i in sorted(prepare_queries(workload, estimator), key=lambda i: -i.rank)]
    b = [i.spec.name for i in sorted(prepare_queries(workload, estimator), key=lambda i: -i.rank)]
    assert a == b
