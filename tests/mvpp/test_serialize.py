"""Unit tests for JSON serialization of plans, MVPPs, and designs."""

import datetime
import json

import pytest

from repro.algebra.expressions import And, Not, Or, column, compare, literal
from repro.errors import MVPPError
from repro.mvpp.serialize import (
    design_to_dict,
    expression_from_dict,
    expression_to_dict,
    mvpp_from_dict,
    mvpp_to_dict,
    operator_from_dict,
    operator_to_dict,
    schema_from_dict,
    schema_to_dict,
)


class TestExpressionRoundTrip:
    @pytest.mark.parametrize(
        "expression",
        [
            compare("Division.city", "=", literal("LA")),
            compare("Order.quantity", ">", 100),
            compare("Order.date", ">", literal(datetime.date(1996, 7, 1))),
            compare("A.x", "=", column("B.y")),
            And([compare("a", ">", 1), compare("b", "<", 2)]),
            Or([compare("a", ">", 1), compare("b", "<", 2)]),
            Not(compare("a", "=", 1)),
        ],
    )
    def test_round_trip_preserves_signature(self, expression):
        data = expression_to_dict(expression)
        json.dumps(data)  # must be JSON-safe
        rebuilt = expression_from_dict(data)
        assert rebuilt.signature == expression.signature

    def test_date_round_trip_preserves_type(self):
        expression = compare(
            "Order.date", ">", literal(datetime.date(1996, 7, 1))
        )
        rebuilt = expression_from_dict(expression_to_dict(expression))
        assert rebuilt.right.value == datetime.date(1996, 7, 1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(MVPPError):
            expression_from_dict({"kind": "magic"})


class TestOperatorRoundTrip:
    def test_full_query_plans(self, paper_mvpp):
        for name in paper_mvpp.query_names:
            plan = paper_mvpp.query_root(name).operator
            data = operator_to_dict(plan)
            json.dumps(data)
            rebuilt = operator_from_dict(data)
            assert rebuilt.signature == plan.signature
            assert rebuilt.schema == plan.schema

    def test_schema_round_trip(self, workload):
        schema = workload.catalog.schema("Order").qualify()
        rebuilt = schema_from_dict(schema_to_dict(schema))
        assert rebuilt == schema

    def test_aggregate_plan_round_trip(self, workload, estimator):
        from repro.optimizer.heuristics import optimize_query
        from repro.sql.translator import parse_query

        plan = optimize_query(
            parse_query(
                "SELECT Division.city, COUNT(*) AS n, SUM(Division.Did) AS s "
                "FROM Division GROUP BY Division.city",
                workload.catalog,
            ),
            estimator,
        )
        rebuilt = operator_from_dict(operator_to_dict(plan))
        assert rebuilt.signature == plan.signature


class TestMVPPRoundTrip:
    def test_structure_preserved(self, paper_mvpp, estimator):
        data = mvpp_to_dict(paper_mvpp)
        json.dumps(data)
        rebuilt = mvpp_from_dict(data, estimator)
        assert rebuilt.structure_signature() == paper_mvpp.structure_signature()
        assert set(rebuilt.query_names) == set(paper_mvpp.query_names)

    def test_frequencies_preserved(self, paper_mvpp, estimator):
        rebuilt = mvpp_from_dict(mvpp_to_dict(paper_mvpp), estimator)
        for root in paper_mvpp.roots:
            assert rebuilt.query_root(root.name).frequency == root.frequency
        for leaf in paper_mvpp.leaves:
            assert rebuilt.vertex_by_name(leaf.name).frequency == leaf.frequency

    def test_names_are_deterministic(self, paper_mvpp, estimator):
        rebuilt = mvpp_from_dict(mvpp_to_dict(paper_mvpp), estimator)
        original = {v.signature: v.name for v in paper_mvpp.operations}
        for vertex in rebuilt.operations:
            assert original[vertex.signature] == vertex.name

    def test_costs_recomputed_identically(self, paper_mvpp, estimator):
        rebuilt = mvpp_from_dict(mvpp_to_dict(paper_mvpp), estimator)
        for vertex in paper_mvpp.operations:
            twin = rebuilt.vertex_by_signature(vertex.signature)
            assert twin is not None
            assert twin.access_cost == pytest.approx(vertex.access_cost)

    def test_unannotated_without_estimator(self, paper_mvpp):
        rebuilt = mvpp_from_dict(mvpp_to_dict(paper_mvpp))
        assert not rebuilt.is_annotated


class TestDesignSerialization:
    def test_design_to_dict(self, workload, estimator):
        from repro.mvpp.generation import design

        result = design(workload, estimator, rotations=1)
        data = design_to_dict(result)
        json.dumps(data)
        assert data["materialized_names"] == list(result.materialized_names)
        assert data["cost"]["total"] == pytest.approx(result.total_cost)
        # Materialized view plans rebuild losslessly.
        for serialized, vertex in zip(data["materialized"], result.materialized):
            assert (
                operator_from_dict(serialized).signature
                == vertex.operator.signature
            )


class TestSerializationProperties:
    """Random plans round-trip losslessly (hypothesis)."""

    def test_random_plans_round_trip(self):
        from hypothesis import HealthCheck, given, settings, strategies as st

        from tests.executor.test_reference_equivalence import make_plan

        @settings(
            max_examples=40,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(st.integers(0, 10_000))
        def check(seed):
            plan = make_plan(seed)
            rebuilt = operator_from_dict(operator_to_dict(plan))
            assert rebuilt.signature == plan.signature
            assert rebuilt.schema == plan.schema

        check()
