"""Unit tests for space-constrained view selection."""

import pytest

from repro.mvpp.cost import MVPPCostCalculator
from repro.mvpp.exhaustive import exhaustive_optimal, greedy_forward
from repro.mvpp.materialization import select_views


def total_blocks(vertices):
    return sum(v.stats.blocks for v in vertices)


class TestHeuristicBudget:
    def test_unbounded_equals_default(self, paper_mvpp, paper_calculator):
        bounded = select_views(
            paper_mvpp, paper_calculator, space_budget=float("inf")
        )
        default = select_views(paper_mvpp, paper_calculator)
        assert bounded.names == default.names

    def test_budget_respected(self, paper_mvpp, paper_calculator):
        unbounded = select_views(paper_mvpp, paper_calculator)
        full_size = total_blocks(unbounded.materialized)
        budget = full_size / 2
        bounded = select_views(
            paper_mvpp, paper_calculator, space_budget=budget
        )
        assert total_blocks(bounded.materialized) <= budget

    def test_zero_budget_selects_nothing(self, paper_mvpp, paper_calculator):
        bounded = select_views(paper_mvpp, paper_calculator, space_budget=0)
        assert bounded.materialized == []
        assert any(s.decision == "skip-budget" for s in bounded.trace)

    def test_negative_budget_rejected(self, paper_mvpp, paper_calculator):
        with pytest.raises(ValueError):
            select_views(paper_mvpp, paper_calculator, space_budget=-1)

    def test_skipping_does_not_prune_branch(self, paper_mvpp, paper_calculator):
        """A vertex skipped for size must not drag its (smaller) relatives
        out of consideration: with a tight budget the heuristic still
        materializes *something* profitable if anything fits."""
        unbounded = select_views(paper_mvpp, paper_calculator)
        smallest = min(
            (v for v in paper_mvpp.operations if paper_calculator.weight(v) > 0),
            key=lambda v: v.stats.blocks,
        )
        bounded = select_views(
            paper_mvpp, paper_calculator, space_budget=smallest.stats.blocks
        )
        # The smallest positive-weight vertex fits, so if it alone is
        # profitable the result is non-empty; in any case nothing exceeds
        # the budget.
        assert total_blocks(bounded.materialized) <= smallest.stats.blocks

    def test_cost_degrades_gracefully(self, paper_mvpp, paper_calculator):
        """Tighter budgets can only increase the achieved total cost."""
        unbounded = select_views(paper_mvpp, paper_calculator, refine=True)
        full_cost = paper_calculator.breakdown(unbounded.materialized).total
        full_size = total_blocks(unbounded.materialized)
        previous = full_cost
        for fraction in (1.0, 0.5, 0.1, 0.0):
            bounded = select_views(
                paper_mvpp,
                paper_calculator,
                refine=True,
                space_budget=full_size * fraction,
            )
            cost = paper_calculator.breakdown(bounded.materialized).total
            assert cost + 1e-6 >= previous or fraction == 1.0
            previous = cost


class TestBaselineBudgets:
    def test_greedy_budget_respected(self, paper_mvpp, paper_calculator):
        unbounded, _ = greedy_forward(paper_mvpp, paper_calculator)
        budget = total_blocks(unbounded) / 2 if unbounded else 0
        bounded, _ = greedy_forward(
            paper_mvpp, paper_calculator, space_budget=budget
        )
        assert total_blocks(bounded) <= budget

    def test_exhaustive_budget_respected(self, paper_mvpp, paper_calculator):
        chosen, _ = exhaustive_optimal(
            paper_mvpp, paper_calculator, max_candidates=16, space_budget=500
        )
        assert total_blocks(chosen) <= 500

    def test_exhaustive_budget_optimal_dominates_heuristic(
        self, paper_mvpp, paper_calculator
    ):
        budget = 5_000
        _, best = exhaustive_optimal(
            paper_mvpp, paper_calculator, max_candidates=16, space_budget=budget
        )
        heuristic = select_views(
            paper_mvpp, paper_calculator, refine=True, space_budget=budget
        )
        assert (
            best.total
            <= paper_calculator.breakdown(heuristic.materialized).total + 1e-9
        )
