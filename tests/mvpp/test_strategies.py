"""Unit tests for the named strategy suite (the Table-2 rows)."""

import pytest

from repro.errors import MVPPError
from repro.mvpp import strategies


class TestBasicStrategies:
    def test_nothing_has_zero_maintenance(self, paper_mvpp, paper_calculator):
        row = strategies.materialize_nothing(paper_mvpp, paper_calculator)
        assert row.maintenance_cost == 0.0
        assert row.materialized == ()

    def test_all_queries_has_minimal_query_cost(self, paper_mvpp, paper_calculator):
        row = strategies.materialize_all_queries(paper_mvpp, paper_calculator)
        expected = sum(
            root.frequency * paper_mvpp.children_of(root)[0].stats.blocks
            for root in paper_mvpp.roots
        )
        assert row.query_cost == pytest.approx(expected)
        assert len(row.materialized) == 4

    def test_everything_materializes_all_operations(
        self, paper_mvpp, paper_calculator
    ):
        row = strategies.materialize_everything(paper_mvpp, paper_calculator)
        assert len(row.materialized) == len(paper_mvpp.operations)

    def test_heuristic_row(self, paper_mvpp, paper_calculator):
        row = strategies.heuristic(paper_mvpp, paper_calculator)
        assert row.materialized  # the example has profitable views

    def test_custom_by_name(self, paper_mvpp, paper_calculator):
        vertex = paper_mvpp.operations[0]
        row = strategies.custom(
            paper_mvpp, paper_calculator, "just-one", [vertex.name]
        )
        assert row.materialized == (vertex.name,)

    def test_custom_rejects_query_roots(self, paper_mvpp, paper_calculator):
        with pytest.raises(MVPPError):
            strategies.custom(paper_mvpp, paper_calculator, "bad", ["Q1"])


class TestCompare:
    def test_standard_suite(self, paper_mvpp, paper_calculator):
        rows = strategies.compare(paper_mvpp, paper_calculator)
        names = [r.name for r in rows]
        assert "all-virtual" in names
        assert "materialize-queries" in names
        assert "heuristic (Fig.9)" in names

    def test_extra_strategies_appended(self, paper_mvpp, paper_calculator):
        vertex = paper_mvpp.operations[0]
        rows = strategies.compare(
            paper_mvpp, paper_calculator, extra={"mine": [vertex.name]}
        )
        assert rows[-1].name == "mine"

    def test_heuristic_at_least_ties_naive_rows(
        self, paper_mvpp, paper_calculator
    ):
        rows = {r.name: r for r in strategies.compare(paper_mvpp, paper_calculator)}
        heuristic = rows["heuristic (Fig.9)"].total_cost
        assert heuristic <= rows["all-virtual"].total_cost
        assert heuristic <= rows["materialize-queries"].total_cost
        assert heuristic <= rows["materialize-everything"].total_cost
