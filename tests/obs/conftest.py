"""Observability tests toggle the global obs state; always restore it."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _restore_obs_state():
    yield
    obs.disable()


@pytest.fixture()
def enabled_obs():
    """Fresh live tracer + registry for one test."""
    obs.enable(reset=True)
    yield obs
