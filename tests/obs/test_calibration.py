"""Unit tests for the cost-model calibration log and report."""

import json

import pytest

from repro import obs
from repro.obs.calibration import (
    PHASE_ACCESS,
    PHASE_MAINTENANCE,
    CalibrationLog,
    CalibrationSample,
    NoopCalibrationLog,
    calibration_report,
)


class TestSampleMath:
    def test_ratio_and_relative_error(self):
        sample = CalibrationSample(
            PHASE_ACCESS, "Q1", "aggregate", estimated=120.0, measured=100.0
        )
        assert sample.ratio == pytest.approx(1.2)
        assert sample.relative_error == pytest.approx(0.2)

    def test_measured_is_floored_at_one_block(self):
        sample = CalibrationSample(
            PHASE_ACCESS, "Q1", "select", estimated=3.0, measured=0.0
        )
        assert sample.ratio == 3.0
        assert sample.relative_error == 3.0

    def test_to_dict_is_json_safe(self):
        sample = CalibrationSample(
            PHASE_MAINTENANCE, "mv_tmp3", "join", 50.0, 40.0
        )
        data = json.loads(json.dumps(sample.to_dict()))
        assert data["phase"] == PHASE_MAINTENANCE
        assert data["ratio"] == pytest.approx(1.25)
        assert data["relative_error"] == pytest.approx(0.25)


class TestCalibrationLog:
    def test_record_keeps_bounded_samples(self):
        log = CalibrationLog(capacity=2)
        for n in range(3):
            log.record(PHASE_ACCESS, f"Q{n}", "select", n, n)
        assert len(log) == 2
        assert [s.name for s in log.samples] == ["Q1", "Q2"]

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            CalibrationLog().record("guess", "Q1", "select", 1.0, 1.0)

    def test_record_coerces_to_float(self):
        log = CalibrationLog()
        sample = log.record(PHASE_ACCESS, "Q1", "select", 5, 4)
        assert sample.estimated == 5.0
        assert isinstance(sample.measured, float)

    def test_record_feeds_error_histogram(self, enabled_obs):
        obs.calibration().record(PHASE_ACCESS, "Q1", "aggregate", 150.0, 100.0)
        histogram = obs.metrics().histogram(
            "calibration.error", phase=PHASE_ACCESS, operator="aggregate"
        )
        assert histogram.count == 1
        assert histogram.summary()["max"] == pytest.approx(0.5)

    def test_reset_clears_samples(self):
        log = CalibrationLog()
        log.record(PHASE_ACCESS, "Q1", "select", 1.0, 1.0)
        log.reset()
        assert log.samples == []


class TestNoopCalibrationLog:
    def test_record_does_nothing(self):
        log = NoopCalibrationLog()
        assert log.record(PHASE_ACCESS, "Q1", "select", 1.0, 2.0) is None
        assert len(log) == 0

    def test_disabled_facade_stays_empty(self):
        obs.disable()
        obs.calibration().record(PHASE_ACCESS, "Q1", "select", 1.0, 2.0)
        assert obs.calibration().samples == []


class TestCalibrationReport:
    def _samples(self):
        return [
            CalibrationSample(PHASE_ACCESS, "Q1", "aggregate", 100.0, 100.0),
            CalibrationSample(PHASE_ACCESS, "Q2", "aggregate", 150.0, 100.0),
            CalibrationSample(PHASE_ACCESS, "Q2", "aggregate", 250.0, 100.0),
            CalibrationSample(PHASE_MAINTENANCE, "mv_a", "join", 80.0, 40.0),
        ]

    def test_ranks_worst_calibrated_first(self):
        report = calibration_report(self._samples())
        assert report.samples == 4
        assert [(e.phase, e.name) for e in report.entries] == [
            (PHASE_ACCESS, "Q2"),  # mean err 1.0
            (PHASE_MAINTENANCE, "mv_a"),  # err 1.0, ties break on phase
            (PHASE_ACCESS, "Q1"),  # err 0.0
        ]
        q2 = report.entries[0]
        assert q2.count == 2
        assert q2.estimated == 400.0
        assert q2.measured == 200.0
        assert q2.mean_relative_error == pytest.approx(1.0)
        assert q2.worst_relative_error == pytest.approx(1.5)

    def test_mean_weights_entries_by_sample_count(self):
        report = calibration_report(self._samples())
        # (0.0·1 + 1.0·2 + 1.0·1) / 4
        assert report.mean_relative_error == pytest.approx(0.75)

    def test_worst_limits_entries(self):
        report = calibration_report(self._samples())
        assert [e.name for e in report.worst(1)] == ["Q2"]

    def test_empty_report(self):
        report = calibration_report([])
        assert report.samples == 0
        assert report.mean_relative_error == 0.0
        assert "no calibration samples" in report.render_text()

    def test_render_text_lists_every_entry(self):
        text = calibration_report(self._samples()).render_text()
        lines = text.splitlines()
        assert "mean relative error 0.750" in lines[0]
        for name in ("Q1", "Q2", "mv_a"):
            assert any(line.startswith(name) for line in lines)

    def test_to_dict_round_trips(self):
        document = json.loads(
            json.dumps(calibration_report(self._samples()).to_dict())
        )
        assert document["samples"] == 4
        assert document["entries"][0]["name"] == "Q2"
        assert document["entries"][0]["worst_relative_error"] == 1.5


class TestWarehouseCalibration:
    """The warehouse records access + maintenance samples end to end."""

    def test_lifecycle_produces_both_phases(self, enabled_obs):
        import datetime

        from repro.warehouse import DataWarehouse
        from repro.workload import paper_rows, paper_workload

        warehouse = DataWarehouse.from_workload(paper_workload())
        warehouse.design()
        for relation, rows in paper_rows(scale=0.02, seed=7).items():
            warehouse.load(relation, rows)
        warehouse.materialize()
        for spec in warehouse.workload.queries:
            warehouse.execute(spec.name)
        delta = [
            {"Pid": 1, "Cid": 2, "quantity": 5,
             "date": datetime.date(1996, 7, 7)}
        ]
        warehouse.apply_update("Order", delta, policy="defer")
        warehouse.refresh()

        samples = obs.calibration().samples
        phases = {s.phase for s in samples}
        assert phases == {PHASE_ACCESS, PHASE_MAINTENANCE}
        access = [s for s in samples if s.phase == PHASE_ACCESS]
        assert {s.name for s in access} == {
            spec.name for spec in warehouse.workload.queries
        }
        maintenance = [s for s in samples if s.phase == PHASE_MAINTENANCE]
        # every maintenance sample compares the design-time Cm annotation
        assert all(s.name.startswith("mv_") for s in maintenance)
        assert all(s.estimated > 0 for s in maintenance)
