"""Tests for the shared JSON serializers (spans, metrics, traces)."""

import datetime
import json

from repro import obs
from repro.mvpp import MVPPCostCalculator, select_views
from repro.obs.export import (
    PHASES,
    PROFILE_SCHEMA_VERSION,
    events_to_list,
    jsonable,
    phase_summary,
    profile_to_dict,
    selection_step_to_dict,
    selection_trace_to_dict,
    span_to_dict,
    validate_profile,
)
from repro.obs.journal import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


class TestJsonable:
    def test_primitives_pass_through(self):
        assert jsonable({"a": 1, "b": [True, None, 2.5]}) == {
            "a": 1,
            "b": [True, None, 2.5],
        }

    def test_dates_become_isoformat(self):
        assert jsonable(datetime.date(1996, 1, 1)) == "1996-01-01"

    def test_sets_become_lists_and_objects_repr(self):
        out = jsonable({"s": {1}, "o": object()})
        assert out["s"] == [1]
        assert out["o"].startswith("<object")


class TestSpanSerialization:
    def test_span_tree_shape(self):
        tracer = Tracer()
        with tracer.span("generation.design", workload="paper") as span:
            span.event("note", detail="x")
            with tracer.span("selection.figure9"):
                pass
        data = span_to_dict(tracer.finished()[0])
        assert data["name"] == "generation.design"
        assert data["attributes"] == {"workload": "paper"}
        assert data["duration_ms"] >= 0
        assert data["events"][0]["name"] == "note"
        assert data["events"][0]["offset_ms"] >= 0
        assert data["children"][0]["name"] == "selection.figure9"
        json.dumps(data)  # must be JSON-safe

    def test_phase_summary_does_not_double_count(self):
        tracer = Tracer()
        with tracer.span("generation.outer"):
            with tracer.span("generation.inner"):
                pass
            with tracer.span("selection.figure9"):
                pass
        summary = phase_summary(tracer)
        assert summary["generation"]["spans"] == 2
        assert summary["selection"]["spans"] == 1
        # inner generation span is nested in an outer generation span, so
        # generation wall time is just the outer span's duration
        outer = tracer.finished()[0]
        assert summary["generation"]["wall_ms"] == round(
            outer.duration * 1000, 6
        )


class TestSelectionTraceSerializer:
    def test_shared_with_span_events(self, paper_mvpp, paper_calculator):
        """CLI ``trace --format json`` and Figure-9 span events emit the
        same per-step fields, via the same serializer."""
        obs.enable(reset=True)
        result = select_views(paper_mvpp, paper_calculator)
        (figure9,) = obs.tracer().find("selection.figure9")
        decision_events = [
            e for e in figure9.events if e["name"] == "decision"
        ]
        assert len(decision_events) == len(result.trace)
        for event, step in zip(decision_events, result.trace):
            serialized = selection_step_to_dict(step)
            assert {k: event[k] for k in serialized} == serialized

    def test_document_shape(self, paper_mvpp, paper_calculator):
        result = select_views(paper_mvpp, paper_calculator)
        breakdown = paper_calculator.breakdown(result.materialized)
        document = selection_trace_to_dict(
            paper_mvpp.name, result.trace, result.names, breakdown.total
        )
        json.dumps(document)
        assert document["mvpp"] == paper_mvpp.name
        assert document["materialized"] == list(result.names)
        assert all(
            set(step) == {"vertex", "weight", "saving", "decision", "pruned"}
            for step in document["steps"]
        )


class TestProfileValidation:
    def _document_with_all_phases(self):
        tracer = Tracer()
        for phase in PHASES:
            with tracer.span(f"{phase}.step"):
                pass
        return profile_to_dict(tracer, MetricsRegistry(), workload="w")

    def test_valid_document_passes(self):
        assert validate_profile(self._document_with_all_phases()) == []

    def test_missing_phase_reported(self):
        tracer = Tracer()
        with tracer.span("generation.only"):
            pass
        document = profile_to_dict(tracer, MetricsRegistry())
        problems = validate_profile(document)
        assert any("execution" in p for p in problems)
        assert any("maintenance" in p for p in problems)

    def test_wrong_schema_version_reported(self):
        document = self._document_with_all_phases()
        document["schema"] = 99
        assert any(
            "schema" in p for p in validate_profile(document)
        )

    def test_malformed_span_reported(self):
        document = self._document_with_all_phases()
        del document["spans"][0]["duration_ms"]
        assert any(
            "duration_ms" in p for p in validate_profile(document)
        )


class TestProfileSchemaV2:
    """Schema 2 added the resilience/adaptive phases and the event
    journal to the profile document."""

    def test_version_and_phase_roster(self):
        assert PROFILE_SCHEMA_VERSION == 2
        assert "resilience" in PHASES
        assert "adaptive" in PHASES

    def test_profile_embeds_journal_events(self):
        journal = EventJournal()
        with journal.correlation("refresh") as cid:
            journal.record("resilience.refresh.begin", tick=1.0, view="mv_a")
        document = profile_to_dict(
            Tracer(), MetricsRegistry(), workload="w", journal=journal
        )
        json.dumps(document)
        (event,) = document["events"]
        assert event["kind"] == "resilience.refresh.begin"
        assert event["correlation_id"] == cid
        assert event["tick"] == 1.0
        assert event["attributes"] == {"view": "mv_a"}

    def test_events_to_list_without_journal(self):
        assert events_to_list(None) == []
        document = profile_to_dict(Tracer(), MetricsRegistry())
        assert document["events"] == []

    def test_missing_events_key_reported(self):
        tracer = Tracer()
        for phase in PHASES:
            with tracer.span(f"{phase}.step"):
                pass
        document = profile_to_dict(tracer, MetricsRegistry())
        del document["events"]
        assert any("events" in p for p in validate_profile(document))

    def test_malformed_event_reported(self):
        tracer = Tracer()
        for phase in PHASES:
            with tracer.span(f"{phase}.step"):
                pass
        journal = EventJournal()
        journal.record("obs.test")
        document = profile_to_dict(tracer, MetricsRegistry(), journal=journal)
        assert validate_profile(document) == []
        del document["events"][0]["correlation_id"]
        assert any(
            "correlation_id" in p for p in validate_profile(document)
        )
        document["events"] = "not-a-list"
        assert any("list" in p for p in validate_profile(document))
