"""Unit + end-to-end tests for the flight-recorder event journal."""

import json

import pytest

from repro import obs
from repro.obs.journal import EventJournal, NoopJournal


@pytest.fixture()
def journal():
    return EventJournal()


class TestRecording:
    def test_sequence_is_monotonic(self, journal):
        first = journal.record("executor.start")
        second = journal.record("executor.stop")
        assert (first.seq, second.seq) == (1, 2)
        assert [e.kind for e in journal.events] == [
            "executor.start",
            "executor.stop",
        ]

    def test_attributes_are_copied(self, journal):
        attributes = {"view": "mv_tmp3"}
        event = journal.record("resilience.refresh.begin", **attributes)
        attributes["view"] = "mutated"
        assert event.attributes == {"view": "mv_tmp3"}

    def test_tick_defaults_to_none(self, journal):
        assert journal.record("adaptive.decision").tick is None
        assert journal.record("adaptive.decision", tick=3.5).tick == 3.5

    def test_len_counts_retained_events(self, journal):
        assert len(journal) == 0
        journal.record("obs.test")
        assert len(journal) == 1


class TestRingBuffer:
    def test_capacity_evicts_oldest_and_counts_drops(self):
        journal = EventJournal(capacity=3)
        for n in range(5):
            journal.record("obs.test", n=n)
        assert len(journal) == 3
        assert journal.dropped == 2
        assert [e.attributes["n"] for e in journal.events] == [2, 3, 4]
        # seq keeps the total order even after eviction
        assert [e.seq for e in journal.events] == [3, 4, 5]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventJournal(capacity=0)


class TestFind:
    def test_exact_kind(self, journal):
        journal.record("resilience.refresh.begin")
        journal.record("resilience.refresh.end")
        found = journal.find(kind="resilience.refresh.begin")
        assert [e.kind for e in found] == ["resilience.refresh.begin"]

    def test_prefix_kind_matches_subsystem(self, journal):
        journal.record("resilience.refresh.begin")
        journal.record("resilience.epoch.advance")
        journal.record("adaptive.decision")
        assert len(journal.find(kind="resilience.")) == 2
        # a prefix must end in "." to be treated as one
        assert journal.find(kind="resilience") == []

    def test_attribute_filters(self, journal):
        journal.record("resilience.refresh.begin", view="mv_a")
        journal.record("resilience.refresh.begin", view="mv_b")
        found = journal.find(view="mv_b")
        assert [e.attributes["view"] for e in found] == ["mv_b"]


class TestCorrelation:
    def test_events_inherit_scope_id(self, journal):
        with journal.correlation("refresh") as cid:
            journal.record("resilience.refresh.begin")
            journal.record("resilience.refresh.end")
        journal.record("obs.outside")
        story = journal.find(correlation_id=cid)
        assert [e.kind for e in story] == [
            "resilience.refresh.begin",
            "resilience.refresh.end",
        ]
        assert journal.find(kind="obs.outside")[0].correlation_id == ""

    def test_ids_are_deterministic_per_scope(self, journal):
        ids = []
        for _ in range(2):
            with journal.correlation("refresh") as cid:
                ids.append(cid)
        with journal.correlation("adapt") as cid:
            ids.append(cid)
        assert ids == ["refresh-1", "refresh-2", "adapt-3"]

    def test_nested_scopes_innermost_wins(self, journal):
        with journal.correlation("outer") as outer:
            journal.record("obs.a")
            with journal.correlation("inner") as inner:
                journal.record("obs.b")
            journal.record("obs.c")
        by_kind = {e.kind: e.correlation_id for e in journal.events}
        assert by_kind == {"obs.a": outer, "obs.b": inner, "obs.c": outer}

    def test_caller_supplied_id_joins_existing_story(self, journal):
        with journal.correlation("migrate") as cid:
            pass
        with journal.correlation("refresh", correlation_id=cid):
            journal.record("resilience.refresh.begin")
        assert journal.events[0].correlation_id == cid
        # joining does not burn a fresh counter value
        with journal.correlation("refresh") as next_cid:
            pass
        assert next_cid == "refresh-2"

    def test_correlation_ids_in_first_seen_order(self, journal):
        with journal.correlation("a") as a:
            journal.record("obs.x")
        with journal.correlation("b") as b:
            journal.record("obs.y")
            journal.record("obs.z")
        journal.record("obs.w")  # empty id is excluded
        assert journal.correlation_ids() == [a, b]


class TestExports:
    def test_to_jsonl_one_compact_object_per_line(self, journal):
        with journal.correlation("refresh"):
            journal.record("resilience.refresh.begin", view="mv_a", tick=2.0)
        journal.record("adaptive.decision")
        lines = journal.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "seq": 1,
            "kind": "resilience.refresh.begin",
            "correlation_id": "refresh-1",
            "tick": 2.0,
            "attributes": {"view": "mv_a"},
        }
        assert ": " not in lines[0]  # compact separators

    def test_empty_journal_exports_empty_string(self, journal):
        assert journal.to_jsonl() == ""
        assert journal.to_list() == []

    def test_dump_jsonl_to_path(self, journal, tmp_path):
        journal.record("obs.test")
        target = tmp_path / "events.jsonl"
        journal.dump_jsonl(str(target))
        assert json.loads(target.read_text())["kind"] == "obs.test"

    def test_reset_keeps_counters_counting(self, journal):
        with journal.correlation("refresh"):
            journal.record("obs.a")
        journal.reset()
        assert len(journal) == 0
        assert journal.dropped == 0
        event = journal.record("obs.b")
        assert event.seq == 2  # sequence never repeats in one session
        with journal.correlation("refresh") as cid:
            pass
        assert cid == "refresh-2"


class TestNoopJournal:
    def test_record_returns_none_and_stores_nothing(self):
        journal = NoopJournal()
        assert journal.record("obs.test", view="mv_a") is None
        assert len(journal) == 0
        assert journal.find() == []
        assert journal.to_jsonl() == ""

    def test_correlation_yields_empty_id(self):
        journal = NoopJournal()
        with journal.correlation("refresh") as cid:
            assert cid == ""
        assert journal.current_correlation() == ""


class TestObsFacade:
    def test_disabled_journal_event_is_dropped(self):
        obs.disable()
        obs.journal_event("obs.test")
        assert obs.journal().find() == []

    def test_enabled_journal_event_inherits_facade_correlation(
        self, enabled_obs
    ):
        with obs.correlation("refresh") as cid:
            obs.journal_event("resilience.refresh.begin", view="mv_a")
        (event,) = obs.journal().find(kind="resilience.refresh.begin")
        assert event.correlation_id == cid

    def test_enable_reset_swaps_in_fresh_journal(self):
        obs.enable(reset=True)
        obs.journal_event("obs.test")
        assert len(obs.journal()) == 1
        obs.enable(reset=True)
        assert len(obs.journal()) == 0


class TestEndToEndRefreshStory:
    """One scheduler refresh is traceable through a single correlation id:
    begin -> attempts/retries -> breaker transition -> end (and the epoch
    advance on the success path)."""

    @staticmethod
    def _stale_warehouse():
        import datetime

        from repro.warehouse import DataWarehouse
        from repro.workload import paper_rows, paper_workload

        warehouse = DataWarehouse.from_workload(paper_workload())
        warehouse.design()
        for relation, rows in paper_rows(scale=0.02, seed=7).items():
            warehouse.load(relation, rows)
        warehouse.materialize()
        delta = [
            {"Pid": 1, "Cid": 2, "quantity": 5,
             "date": datetime.date(1996, 7, 7)}
        ]
        warehouse.apply_update("Order", delta, policy="defer")
        stale = warehouse.stale_views()
        assert stale
        return warehouse, stale

    def test_successful_refresh_threads_one_correlation(self, enabled_obs):
        warehouse, stale = self._stale_warehouse()
        scheduler = warehouse.scheduler()
        outcome = scheduler.refresh_view(stale[0])
        assert outcome.ok

        begins = obs.journal().find(kind="resilience.refresh.begin")
        assert len(begins) == 1
        cid = begins[0].correlation_id
        assert cid.startswith("refresh-")
        story = obs.journal().find(correlation_id=cid)
        kinds = [e.kind for e in story]
        assert kinds[0] == "resilience.refresh.begin"
        assert "resilience.refresh.attempt" in kinds
        assert "resilience.epoch.advance" in kinds
        assert kinds[-1] == "resilience.refresh.end"
        assert story[-1].attributes["status"] == "refreshed"
        # events carry the scheduler's logical clock, never wall time
        ticks = [e.tick for e in story]
        assert all(t is not None for t in ticks)
        assert ticks == sorted(ticks)

    def test_failing_refresh_journals_retries_and_breaker(self, enabled_obs):
        from repro.resilience import (
            BreakerPolicy,
            FaultPolicy,
            ResilienceConfig,
            RetryPolicy,
        )

        warehouse, stale = self._stale_warehouse()
        warehouse.attach_faults(FaultPolicy(storage_failure_rate=1.0, seed=0))
        scheduler = warehouse.scheduler(
            ResilienceConfig(
                retry=RetryPolicy(max_attempts=3),
                breaker=BreakerPolicy(
                    failure_threshold=1, reset_ticks=50.0
                ),
                seed=0,
            )
        )
        outcome = scheduler.refresh_view(stale[0])
        assert outcome.status == "failed"

        (begin,) = obs.journal().find(kind="resilience.refresh.begin")
        story = obs.journal().find(correlation_id=begin.correlation_id)
        kinds = [e.kind for e in story]
        assert kinds.count("resilience.refresh.attempt") == 3
        assert kinds.count("resilience.refresh.retry") == 2
        assert "resilience.epoch.advance" not in kinds
        (transition,) = [
            e for e in story
            if e.kind == "resilience.breaker.transition"
        ]
        assert transition.attributes["to_state"] == "open"
        assert story[-1].attributes["status"] == "failed"

    def test_refresh_all_opens_one_scope_per_view(self, enabled_obs):
        warehouse, _ = self._stale_warehouse()
        outcomes = warehouse.refresh_resilient()
        assert len(outcomes) >= 2
        ids = obs.journal().correlation_ids()
        assert len(ids) == len(outcomes)
        for cid, outcome in zip(ids, outcomes):
            story = obs.journal().find(correlation_id=cid)
            assert story[0].attributes["view"] == outcome.view
