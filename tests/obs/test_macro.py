"""Tests for the macro-benchmark harness and its regression gate."""

import copy
import json

import pytest

from repro import obs
from repro.obs.macro import (
    BENCH_SCHEMA_VERSION,
    MACRO_PHASES,
    MacroConfig,
    compare_bench,
    run_macro,
    smoke_mode,
    validate_bench,
)

SMOKE_CONFIG = MacroConfig(scale=0.01, repeats=1, windows=2, smoke=True)


@pytest.fixture(scope="module")
def smoke_document():
    document = run_macro(SMOKE_CONFIG)
    obs.disable()
    return document


class TestMacroConfig:
    def test_defaults_validate(self):
        MacroConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [{"scale": 0.0}, {"repeats": 0}, {"windows": 1}],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MacroConfig(**kwargs).validate()

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            run_macro(MacroConfig(workload="nope", smoke=True))


class TestSmokeMode:
    def test_env_toggle(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SMOKE", raising=False)
        assert not smoke_mode()
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "0")
        assert not smoke_mode()
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
        assert smoke_mode()


class TestRunMacro:
    def test_document_shape(self, smoke_document):
        assert validate_bench(smoke_document) == []
        assert smoke_document["schema"] == BENCH_SCHEMA_VERSION
        assert smoke_document["suite"] == "macro"
        assert smoke_document["smoke"] is True
        assert set(smoke_document["phases"]) == set(MACRO_PHASES)
        json.dumps(smoke_document)  # must be JSON-safe

    def test_smoke_zeroes_wall_time_but_not_io(self, smoke_document):
        for name, bucket in smoke_document["phases"].items():
            assert bucket["wall_ms"] == 0.0, name
        assert smoke_document["phases"]["load"]["io_blocks"] > 0
        assert smoke_document["phases"]["queries"]["io_blocks"] > 0

    def test_phases_carry_counts(self, smoke_document):
        phases = smoke_document["phases"]
        assert phases["design"]["views"] >= 1
        assert phases["load"]["rows"] > 0
        assert phases["queries"]["executed"] >= SMOKE_CONFIG.repeats
        assert phases["refresh"]["refreshed"] >= 1
        assert phases["drift"]["decisions"] == SMOKE_CONFIG.windows

    def test_calibration_and_journal_sections(self, smoke_document):
        calibration = smoke_document["calibration"]
        assert calibration["samples"] > 0
        assert calibration["worst"]
        assert smoke_document["journal"]["events"] > 0
        assert smoke_document["journal"]["correlations"] > 0
        assert smoke_document["journal"]["dropped"] == 0

    def test_latency_section_limits_to_known_histograms(self, smoke_document):
        assert smoke_document["latency"]
        for name in smoke_document["latency"]:
            assert name.startswith(
                ("executor.query_io", "resilience.refresh.ticks",
                 "maintenance.io")
            )

    def test_smoke_runs_are_bit_compatible(self, smoke_document):
        again = run_macro(SMOKE_CONFIG)
        assert json.dumps(smoke_document, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

    def test_restores_disabled_obs(self, smoke_document):
        assert not obs.enabled()


class TestValidateBench:
    def test_missing_keys_reported(self, smoke_document):
        document = copy.deepcopy(smoke_document)
        del document["calibration"]
        del document["phases"]["refresh"]
        problems = validate_bench(document)
        assert any("calibration" in p for p in problems)
        assert any("refresh" in p for p in problems)

    def test_wrong_schema_reported(self, smoke_document):
        document = dict(smoke_document, schema=99)
        assert any("schema" in p for p in validate_bench(document))


class TestCompareBench:
    def test_identical_documents_pass(self, smoke_document):
        assert compare_bench(smoke_document, smoke_document) == []

    def test_io_regression_detected(self, smoke_document):
        current = copy.deepcopy(smoke_document)
        current["phases"]["queries"]["io_blocks"] *= 2.0
        regressions = compare_bench(smoke_document, current)
        assert len(regressions) == 1
        assert "queries" in regressions[0]
        assert "io_blocks" in regressions[0]

    def test_io_within_tolerance_passes(self, smoke_document):
        current = copy.deepcopy(smoke_document)
        current["phases"]["queries"]["io_blocks"] *= 1.2
        assert compare_bench(smoke_document, current, tolerance=0.25) == []

    def test_missing_phase_reported(self, smoke_document):
        current = copy.deepcopy(smoke_document)
        del current["phases"]["drift"]
        assert any(
            "drift" in r for r in compare_bench(smoke_document, current)
        )

    def test_wall_time_ignored_when_either_side_is_smoke(
        self, smoke_document
    ):
        current = copy.deepcopy(smoke_document)
        current["phases"]["queries"]["wall_ms"] = 1e9
        assert compare_bench(smoke_document, current) == []

    def test_wall_time_compared_between_timed_runs(self):
        baseline = {
            "schema": BENCH_SCHEMA_VERSION,
            "smoke": False,
            "phases": {"queries": {"wall_ms": 100.0, "io_blocks": 10.0}},
        }
        current = copy.deepcopy(baseline)
        current["phases"]["queries"]["wall_ms"] = 200.0
        regressions = compare_bench(baseline, current)
        assert len(regressions) == 1
        assert "wall_ms" in regressions[0]

    def test_schema_mismatch_short_circuits(self, smoke_document):
        current = dict(copy.deepcopy(smoke_document), schema=99)
        current["phases"]["queries"]["io_blocks"] *= 10
        regressions = compare_bench(smoke_document, current)
        assert len(regressions) == 1
        assert "schema" in regressions[0]

    def test_negative_tolerance_rejected(self, smoke_document):
        with pytest.raises(ValueError):
            compare_bench(smoke_document, smoke_document, tolerance=-0.1)
