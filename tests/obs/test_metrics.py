"""Unit tests for counters, gauges, histograms, and their exports."""

import json

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    NoopMetricsRegistry,
    _escape_label_value,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_increments_accumulate(self, registry):
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_same_name_returns_same_instrument(self, registry):
        assert registry.counter("hits") is registry.counter("hits")

    def test_labels_create_distinct_series(self, registry):
        registry.counter("rows", operator="join").inc(10)
        registry.counter("rows", operator="select").inc(3)
        assert registry.counter("rows", operator="join").value == 10
        assert registry.counter("rows", operator="select").value == 3

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("hits").inc(-1)


class TestGauge:
    def test_set_and_add(self, registry):
        gauge = registry.gauge("drift", query="Q1")
        gauge.set(1.5)
        assert gauge.value == 1.5
        gauge.add(0.5)
        assert gauge.value == 2.0

    def test_unset_gauge_is_none(self, registry):
        assert registry.gauge("empty").value is None


class TestHistogramPercentiles:
    def test_uniform_1_to_100(self, registry):
        histogram = registry.histogram("latency")
        for value in range(1, 101):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["sum"] == 5050
        assert summary["min"] == 1
        assert summary["max"] == 100
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["p99"] == pytest.approx(99.01)

    def test_single_observation(self, registry):
        histogram = registry.histogram("one")
        histogram.observe(7.0)
        summary = histogram.summary()
        assert summary["p50"] == summary["p95"] == summary["p99"] == 7.0

    def test_empty_histogram(self, registry):
        assert registry.histogram("none").summary() == {"count": 0, "sum": 0.0}
        assert registry.histogram("none").percentile(0.5) == 0.0

    def test_percentile_interpolates(self, registry):
        histogram = registry.histogram("h")
        for value in (10, 20):
            histogram.observe(value)
        assert histogram.percentile(0.5) == pytest.approx(15.0)

    def test_percentile_bounds_checked(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h").percentile(1.5)


class TestExports:
    def test_json_dump_round_trips(self, registry):
        registry.counter("executor.blocks_read").inc(12)
        registry.gauge("warehouse.cost_drift_ratio", query="Q1").set(1.25)
        registry.histogram("maintenance.io", policy="incremental").observe(5)
        snapshot = json.loads(json.dumps(registry.to_dict()))
        assert snapshot["counters"]["executor.blocks_read"] == 12
        assert (
            snapshot["gauges"]["warehouse.cost_drift_ratio{query=Q1}"] == 1.25
        )
        histogram = snapshot["histograms"]["maintenance.io{policy=incremental}"]
        assert histogram["count"] == 1
        assert histogram["p99"] == 5

    def test_prometheus_exposition(self, registry):
        registry.counter("executor.blocks_read").inc(12)
        registry.counter("rows", operator="join").inc(3)
        registry.gauge("drift").set(0.5)
        registry.histogram("io").observe(4)
        text = registry.to_prometheus()
        assert "# TYPE executor_blocks_read counter" in text
        assert "executor_blocks_read 12" in text
        assert 'rows{operator="join"} 3' in text
        assert "# TYPE drift gauge" in text
        assert 'io{quantile="0.5"} 4' in text
        assert "io_count 1" in text
        assert "io_sum 4" in text

    def test_prometheus_escapes_hostile_label_values(self, registry):
        """Backslash, quote, and newline in a label value must follow the
        text-exposition escaping rules, not corrupt the line format."""
        registry.counter("rows", query='he said "hi"').inc(1)
        registry.gauge("drift", path="C:\\tmp").set(0.5)
        registry.counter("hits", note="line1\nline2").inc(2)
        text = registry.to_prometheus()
        assert 'rows{query="he said \\"hi\\""} 1' in text
        assert 'drift{path="C:\\\\tmp"} 0.5' in text
        assert 'hits{note="line1\\nline2"} 2' in text
        # the raw newline never splits an exposition line
        assert not any(
            line.startswith("line2") for line in text.splitlines()
        )

    def test_escape_label_value_helper(self):
        assert _escape_label_value("plain") == "plain"
        assert _escape_label_value("\\") == "\\\\"
        assert _escape_label_value('"') == '\\"'
        assert _escape_label_value("a\nb") == "a\\nb"
        # backslash first: an already-escaped quote is not double-mangled
        assert _escape_label_value('\\"') == '\\\\\\"'

    def test_empty_registry_exports(self, registry):
        assert registry.to_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert registry.to_prometheus() == ""

    def test_reset_clears_all_series(self, registry):
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        registry.histogram("c").observe(1)
        registry.reset()
        assert registry.to_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestNoopRegistry:
    def test_mutators_do_nothing(self):
        registry = NoopMetricsRegistry()
        registry.counter("a", x="y").inc(5)
        registry.gauge("b").set(2)
        registry.histogram("c").observe(3)
        assert registry.counter("a").value == 0
        assert registry.gauge("b").value is None
        assert registry.histogram("c").count == 0

    def test_shared_singletons(self):
        registry = NoopMetricsRegistry()
        assert registry.counter("a") is registry.counter("b", any="label")

    def test_snapshots_stay_zeroed_after_mutation(self):
        registry = NoopMetricsRegistry()
        registry.counter("a", x="y").inc(5)
        registry.gauge("b").set(2)
        registry.histogram("c").observe(3)
        assert registry.to_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert registry.to_prometheus() == ""
        assert registry.histogram("c").summary() == {"count": 0, "sum": 0.0}


class TestSummaryStability:
    def test_summary_is_pure(self, registry):
        histogram = registry.histogram("io")
        for value in (4, 2, 8):
            histogram.observe(value)
        first = histogram.summary()
        second = histogram.summary()
        assert first == second
        # summarizing must not reorder or consume the samples
        histogram.observe(1)
        assert histogram.summary()["count"] == 4
        assert histogram.summary()["min"] == 1
