"""Disabled-mode overhead budget: instrumentation must stay under 5%.

The executor micro-benchmark runs a paper query through the (always
instrumented) engine with observability disabled.  The test counts how
many instrumentation calls that run makes, measures the per-call cost of
the disabled-mode primitives in a tight loop, and asserts the product is
below 5% of the measured query runtime — the acceptance bound for
keeping obs in the tier-1 hot paths.
"""

import time

import pytest

from repro import obs
from repro.executor.engine import ExecutionEngine, load_database
from repro.obs.tracing import NOOP_SPAN
from repro.sql.translator import parse_query
from repro.workload.datagen import paper_rows

OVERHEAD_BUDGET = 0.05


@pytest.fixture(scope="module")
def engine_and_plan(workload):
    database = load_database(
        paper_rows(scale=0.02, seed=3),
        workload.catalog,
        blocking_factors={
            name: workload.statistics.relation(name).blocking_factor
            for name in workload.catalog.relation_names
        },
    )
    engine = ExecutionEngine(database)
    plan = parse_query(workload.query("Q2").sql, workload.catalog)
    return engine, plan


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_overhead_under_budget(engine_and_plan, monkeypatch):
    assert not obs.enabled()
    engine, plan = engine_and_plan

    def run():
        engine.run(plan)

    run()  # warm-up (index/table caches, bytecode specialization)
    runtime = _best_of(run)
    assert runtime > 0

    # Count the instrumentation calls one run performs, through the same
    # module attributes the hot paths use.
    calls = {"enabled": 0, "span": 0}

    def counting_enabled():
        calls["enabled"] += 1
        return False

    def counting_span(name, **attributes):
        calls["span"] += 1
        return NOOP_SPAN

    monkeypatch.setattr(obs, "enabled", counting_enabled)
    monkeypatch.setattr(obs, "span", counting_span)
    run()
    monkeypatch.undo()
    assert calls["enabled"] > 0  # the run is actually instrumented
    assert calls["span"] > 0

    # Per-call cost of the disabled-mode primitives.
    iterations = 50_000
    start = time.perf_counter()
    for _ in range(iterations):
        obs.enabled()
    per_enabled = (time.perf_counter() - start) / iterations

    start = time.perf_counter()
    for _ in range(iterations):
        with obs.span("x", a=1) as span:
            span.set(b=2)
    per_span = (time.perf_counter() - start) / iterations

    overhead = calls["enabled"] * per_enabled + calls["span"] * per_span
    assert overhead < OVERHEAD_BUDGET * runtime, (
        f"disabled-mode instrumentation overhead {overhead * 1e6:.1f}µs "
        f"exceeds {OVERHEAD_BUDGET:.0%} of the {runtime * 1e3:.2f}ms "
        f"micro-benchmark ({calls['enabled']} enabled() checks, "
        f"{calls['span']} span() calls)"
    )


def test_noop_primitives_are_cheap():
    """Each disabled-mode call must stay well under a microsecond."""
    iterations = 50_000
    start = time.perf_counter()
    for _ in range(iterations):
        if obs.enabled():  # pragma: no cover - disabled in this test
            obs.metrics().counter("x").inc()
    per_call = (time.perf_counter() - start) / iterations
    assert per_call < 5e-6


def test_noop_journal_and_calibration_are_cheap():
    """The flight-recorder and calibration entry points follow the same
    disabled-mode budget as the rest of ``repro.obs``."""
    assert not obs.enabled()
    iterations = 50_000

    start = time.perf_counter()
    for _ in range(iterations):
        obs.journal_event("resilience.refresh.begin", view="mv_a")
    per_event = (time.perf_counter() - start) / iterations
    assert per_event < 5e-6
    assert len(obs.journal()) == 0

    start = time.perf_counter()
    for _ in range(iterations):
        with obs.correlation("refresh"):
            pass
    per_scope = (time.perf_counter() - start) / iterations
    assert per_scope < 5e-6

    start = time.perf_counter()
    for _ in range(iterations):
        obs.calibration().record("access", "Q1", "select", 1.0, 1.0)
    per_sample = (time.perf_counter() - start) / iterations
    assert per_sample < 5e-6
    assert obs.calibration().samples == []
