"""Unit tests for the span tracer: nesting, timing, events, threading."""

import threading
import time

import pytest

from repro import obs
from repro.obs.tracing import NOOP_SPAN, NoopTracer, Tracer


class TestSpanBasics:
    def test_span_records_wall_time(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            time.sleep(0.005)
        assert span.duration >= 0.005
        assert span.end is not None

    def test_attributes_at_creation_and_via_set(self):
        tracer = Tracer()
        with tracer.span("work", query="Q1") as span:
            span.set(rows=42)
        assert span.attributes == {"query": "Q1", "rows": 42}

    def test_events_carry_attributes(self):
        tracer = Tracer()
        with tracer.span("selection") as span:
            span.event("decision", vertex="tmp2", decision="materialize")
        assert len(span.events) == 1
        assert span.events[0]["vertex"] == "tmp2"
        assert span.events[0]["time"] >= span.start

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        (root,) = tracer.finished()
        assert root.attributes["error"] == "ValueError"
        assert root.end is not None


class TestNesting:
    def test_children_attach_to_open_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert all(c.parent_id == outer.span_id for c in outer.children)
        # only the outer span is a root
        assert [s.name for s in tracer.finished()] == ["outer"]

    def test_deep_nesting_and_find(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
                with tracer.span("c"):
                    pass
        assert len(tracer.find("c")) == 2
        assert len(tracer.find("a")) == 1
        assert tracer.find("nope") == []

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_tracer_event_targets_current_span(self):
        tracer = Tracer()
        tracer.event("dropped")  # outside any span: silently ignored
        with tracer.span("s") as span:
            tracer.event("kept", value=1)
        assert [e["name"] for e in span.events] == ["kept"]


class TestThreadSafety:
    def test_threads_build_independent_trees(self):
        tracer = Tracer()

        def work(name):
            with tracer.span(name):
                with tracer.span(f"{name}.child"):
                    time.sleep(0.001)

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        roots = tracer.finished()
        assert len(roots) == 8
        for root in roots:
            assert len(root.children) == 1
            assert root.children[0].name == f"{root.name}.child"


class TestReset:
    def test_reset_clears_finished_roots(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.finished() == []


class TestNoopMode:
    def test_disabled_module_returns_noop_singletons(self):
        assert not obs.enabled()
        assert obs.span("anything") is NOOP_SPAN
        assert isinstance(obs.tracer(), NoopTracer)

    def test_noop_span_is_inert(self):
        with obs.span("x", a=1) as span:
            span.set(b=2).event("e", c=3)
        assert obs.tracer().finished() == []

    def test_enable_swaps_in_live_tracer(self):
        obs.enable()
        with obs.span("live") as span:
            span.set(ok=True)
        assert [s.name for s in obs.tracer().finished()] == ["live"]
        obs.disable()
        assert obs.span("again") is NOOP_SPAN

    def test_enable_reset_discards_history(self):
        obs.enable()
        with obs.span("old"):
            pass
        obs.enable(reset=True)
        assert obs.tracer().finished() == []

    def test_module_event_targets_current_span(self, enabled_obs):
        with obs.span("s") as span:
            obs.event("decision", vertex="tmp2")
        assert span.events[0]["vertex"] == "tmp2"
