"""Unit tests for cardinality/selectivity estimation against Table 1."""

import pytest

from repro.algebra.expressions import column, compare, literal
from repro.algebra.operators import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
    Join,
    Project,
    Relation,
    Select,
)
from repro.algebra.predicates import conjunction, disjunction, negate
from repro.optimizer.cardinality import CardinalityEstimator
from repro.workload.example import Q3_DATE


@pytest.fixture
def relations(workload):
    def leaf(name):
        return Relation(name, workload.catalog.schema(name).qualify())

    return {name: leaf(name) for name in workload.catalog.relation_names}


class TestBaseRelations:
    def test_table1_sizes(self, estimator, relations):
        stats = estimator.estimate(relations["Product"])
        assert stats.cardinality == 30_000 and stats.blocks == 3_000
        stats = estimator.estimate(relations["Part"])
        assert stats.cardinality == 80_000 and stats.blocks == 10_000


class TestSelection:
    def test_pinned_selectivity(self, estimator, relations):
        sigma = Select(relations["Division"], compare("Division.city", "=", literal("LA")))
        stats = estimator.estimate(sigma)
        assert stats.cardinality == 100  # 5k * 0.02
        assert stats.blocks == 10

    def test_derived_equality_from_distinct(self, estimator, relations):
        # Customer.city has 50 distinct values -> 1/50.
        sigma = Select(relations["Customer"], compare("Customer.city", "=", literal("NY")))
        assert estimator.estimate(sigma).cardinality == 400

    def test_range_from_min_max(self, estimator, relations):
        sigma = Select(relations["Order"], compare("Order.quantity", "<", 51))
        stats = estimator.estimate(sigma)
        assert 0.2 <= stats.cardinality / 50_000 <= 0.3

    def test_conjunction_multiplies(self, estimator, relations):
        predicate = conjunction(
            [
                compare("Order.quantity", ">", 100),
                compare("Order.date", ">", Q3_DATE),
            ]
        )
        sigma = Select(relations["Order"], predicate)
        assert estimator.estimate(sigma).cardinality == 12_500  # 50k * .5 * .5

    def test_disjunction_inclusion_exclusion(self, estimator, relations):
        predicate = disjunction(
            [
                compare("Order.quantity", ">", 100),
                compare("Order.date", ">", Q3_DATE),
            ]
        )
        sigma = Select(relations["Order"], predicate)
        assert estimator.estimate(sigma).cardinality == 37_500  # 1-(0.5*0.5)

    def test_negation(self, estimator, relations):
        sigma = Select(
            relations["Order"], negate(compare("Order.quantity", ">", 100))
        )
        assert estimator.estimate(sigma).cardinality == 25_000

    def test_not_equal(self, estimator, relations):
        sigma = Select(relations["Division"], compare("Division.city", "!=", literal("LA")))
        assert estimator.estimate(sigma).cardinality == 4_900


class TestProjection:
    def test_cardinality_unchanged_blocks_shrink(self, estimator, relations):
        project = Project(relations["Product"], ["Product.Pid"])
        stats = estimator.estimate(project)
        assert stats.cardinality == 30_000
        assert stats.blocks == 1_000  # 1 of 3 attributes kept


class TestJoins:
    def test_product_division(self, estimator, relations):
        join = Join(
            relations["Product"],
            relations["Division"],
            compare("Product.Did", "=", column("Division.Did")),
        )
        stats = estimator.estimate(join)
        assert stats.cardinality == 30_000  # Table 1's ProductJoinDivision

    def test_three_way(self, estimator, relations):
        pd = Join(
            relations["Product"],
            relations["Division"],
            compare("Product.Did", "=", column("Division.Did")),
        )
        pdp = Join(pd, relations["Part"], compare("Part.Pid", "=", column("Product.Pid")))
        assert estimator.estimate(pdp).cardinality == 80_000  # Table 1

    def test_order_customer(self, estimator, relations):
        join = Join(
            relations["Order"],
            relations["Customer"],
            compare("Order.Cid", "=", column("Customer.Cid")),
        )
        assert estimator.estimate(join).cardinality == 50_000

    def test_cross_product(self, estimator, relations):
        join = Join(relations["Division"], relations["Customer"])
        assert estimator.estimate(join).cardinality == 5_000 * 20_000

    def test_join_blocks_wider_tuples(self, estimator, relations):
        join = Join(
            relations["Product"],
            relations["Division"],
            compare("Product.Did", "=", column("Division.Did")),
        )
        stats = estimator.estimate(join)
        # bf(Product)=10, bf(Division)=10 -> joined bf = 5 -> 6000 blocks.
        assert stats.blocks == 6_000

    def test_memoization_consistency(self, estimator, relations):
        join = Join(
            relations["Product"],
            relations["Division"],
            compare("Product.Did", "=", column("Division.Did")),
        )
        first = estimator.estimate(join)
        second = estimator.estimate(
            Join(
                relations["Product"],
                relations["Division"],
                compare("Product.Did", "=", column("Division.Did")),
            )
        )
        assert first == second


class TestAggregateEstimation:
    def test_group_by_known_distinct(self, estimator, relations):
        agg = Aggregate(
            relations["Division"],
            ["Division.city"],
            [AggregateSpec(AggregateFunction.COUNT, None, "n")],
        )
        assert estimator.estimate(agg).cardinality == 50

    def test_global_aggregate_single_row(self, estimator, relations):
        agg = Aggregate(
            relations["Order"],
            [],
            [AggregateSpec(AggregateFunction.SUM, "Order.quantity", "s")],
        )
        assert estimator.estimate(agg).cardinality == 1

    def test_groups_capped_by_input(self, estimator, relations):
        agg = Aggregate(
            relations["Division"],
            ["Division.Did"],
            [AggregateSpec(AggregateFunction.COUNT, None, "n")],
        )
        assert estimator.estimate(agg).cardinality == 5_000
