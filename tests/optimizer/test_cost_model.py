"""Unit tests for the block-access cost models."""

import pytest

from repro.algebra.expressions import column, compare, literal
from repro.algebra.operators import Join, Project, Relation, Select
from repro.optimizer.cost_model import (
    HashJoinCostModel,
    NestedLoopCostModel,
    SortMergeCostModel,
)


@pytest.fixture
def nodes(workload):
    def leaf(name):
        return Relation(name, workload.catalog.schema(name).qualify())

    product, division = leaf("Product"), leaf("Division")
    sigma = Select(division, compare("Division.city", "=", literal("LA")))
    join = Join(product, sigma, compare("Product.Did", "=", column("Division.Did")))
    return product, division, sigma, join


class TestNestedLoop:
    def test_leaf_is_free(self, nodes, estimator):
        product, *_ = nodes
        assert NestedLoopCostModel().local_cost(product, estimator) == 0.0

    def test_select_costs_one_pass(self, nodes, estimator):
        _, division, sigma, _ = nodes
        assert NestedLoopCostModel().local_cost(sigma, estimator) == 500.0

    def test_join_formula(self, nodes, estimator):
        *_, join = nodes
        # B(outer)=3000, B(inner)=B(sigma)=10: 3000 + 3000*10
        assert NestedLoopCostModel().local_cost(join, estimator) == 33_000.0

    def test_join_asymmetry(self, nodes, estimator):
        product, _, sigma, _ = nodes
        flipped = Join(
            sigma, product, compare("Product.Did", "=", column("Division.Did"))
        )
        # outer=10 blocks: 10 + 10*3000 — much cheaper than the other order.
        assert NestedLoopCostModel().local_cost(flipped, estimator) == 30_010.0

    def test_project_costs_one_pass(self, nodes, estimator):
        product, *_ = nodes
        project = Project(product, ["Product.Pid"])
        assert NestedLoopCostModel().local_cost(project, estimator) == 3_000.0

    def test_scan_cost(self, nodes, estimator):
        product, *_ = nodes
        stats = estimator.estimate(product)
        assert NestedLoopCostModel().scan_cost(stats) == 3_000.0


class TestHashJoin:
    def test_join_linear_in_inputs(self, nodes, estimator):
        *_, join = nodes
        assert HashJoinCostModel().local_cost(join, estimator) == 3 * (3_000 + 10)

    def test_non_join_same_as_nested(self, nodes, estimator):
        _, _, sigma, _ = nodes
        assert HashJoinCostModel().local_cost(sigma, estimator) == 500.0


class TestSortMerge:
    def test_join_matches_formula(self, nodes, estimator):
        import math

        *_, join = nodes
        cost = SortMergeCostModel().local_cost(join, estimator)
        expected = 3_000 * math.log2(3_000) + 10 * math.log2(10) + 3_000 + 10
        assert cost == pytest.approx(expected)
