"""Unit tests for join enumeration and the single-query pipeline."""

import pytest

from repro.algebra.expressions import column, compare, literal
from repro.algebra.operators import Join, Relation, Select
from repro.algebra.tree import find, leaves
from repro.errors import OptimizerError
from repro.optimizer.cost_model import NestedLoopCostModel
from repro.optimizer.heuristics import optimize_query
from repro.optimizer.join_order import best_join_tree
from repro.optimizer.plans import AnnotatedPlan
from repro.sql.translator import parse_query


@pytest.fixture
def leafs(workload):
    def leaf(name):
        return Relation(name, workload.catalog.schema(name).qualify())

    return leaf


class TestBestJoinTree:
    def test_single_input_passthrough(self, leafs, estimator):
        product = leafs("Product")
        assert best_join_tree([product], [], estimator) is product

    def test_empty_rejected(self, estimator):
        with pytest.raises(OptimizerError):
            best_join_tree([], [], estimator)

    def test_two_way_picks_cheap_outer(self, leafs, estimator):
        product = leafs("Product")
        sigma = Select(leafs("Division"), compare("Division.city", "=", literal("LA")))
        predicate = compare("Product.Did", "=", column("Division.Did"))
        plan = best_join_tree([product, sigma], [predicate], estimator)
        assert isinstance(plan, Join)
        # Optimal nested-loop order puts the tiny filtered Division outer.
        assert plan.left.signature == sigma.signature

    def test_connected_order_avoids_cross_products(self, leafs, estimator):
        product, division, part = (
            leafs("Product"),
            leafs("Division"),
            leafs("Part"),
        )
        predicates = [
            compare("Product.Did", "=", column("Division.Did")),
            compare("Part.Pid", "=", column("Product.Pid")),
        ]
        plan = best_join_tree([product, division, part], predicates, estimator)
        for join in find(plan, lambda n: isinstance(n, Join)):
            assert join.condition is not None

    def test_cross_product_when_unavoidable(self, leafs, estimator):
        plan = best_join_tree(
            [leafs("Division"), leafs("Customer")], [], estimator
        )
        assert isinstance(plan, Join)
        assert plan.condition is None

    def test_greedy_agrees_on_small_inputs(self, leafs, estimator):
        inputs = [leafs("Product"), leafs("Division"), leafs("Part")]
        predicates = [
            compare("Product.Did", "=", column("Division.Did")),
            compare("Part.Pid", "=", column("Product.Pid")),
        ]
        exact = best_join_tree(list(inputs), list(predicates), estimator)
        greedy = best_join_tree(
            list(inputs), list(predicates), estimator, max_dp_relations=1
        )
        cost = lambda p: AnnotatedPlan(p, estimator).total_cost  # noqa: E731
        assert cost(greedy) <= 2 * cost(exact)
        assert greedy.base_relations() == exact.base_relations()

    def test_dp_never_worse_than_left_deep_in_given_order(
        self, workload, leafs, estimator
    ):
        product, division, part = (
            leafs("Product"),
            leafs("Division"),
            leafs("Part"),
        )
        predicates = [
            compare("Product.Did", "=", column("Division.Did")),
            compare("Part.Pid", "=", column("Product.Pid")),
        ]
        optimal = best_join_tree(
            [part, product, division], list(predicates), estimator
        )
        naive = Join(
            Join(part, product, predicates[1]), division, predicates[0]
        )
        cost = lambda p: AnnotatedPlan(p, estimator).total_cost  # noqa: E731
        assert cost(optimal) <= cost(naive)


class TestOptimizeQuery:
    def test_selections_pushed_to_leaves(self, workload, estimator):
        plan = parse_query(workload.query("Q1").sql, workload.catalog)
        optimized = optimize_query(plan, estimator)
        selects = find(optimized, lambda n: isinstance(n, Select))
        assert selects and all(
            isinstance(s.child, Relation) for s in selects
        )

    def test_output_schema_preserved(self, workload, estimator):
        for spec in workload.queries:
            plan = parse_query(spec.sql, workload.catalog)
            optimized = optimize_query(plan, estimator)
            assert (
                optimized.schema.attribute_names == plan.schema.attribute_names
            ), spec.name

    def test_optimized_cost_not_worse(self, workload, estimator):
        for spec in workload.queries:
            plan = parse_query(spec.sql, workload.catalog)
            optimized = optimize_query(plan, estimator)
            assert (
                AnnotatedPlan(optimized, estimator).total_cost
                <= AnnotatedPlan(plan, estimator).total_cost + 1e-9
            ), spec.name

    def test_q3_keeps_all_relations(self, workload, estimator):
        plan = parse_query(workload.query("Q3").sql, workload.catalog)
        optimized = optimize_query(plan, estimator)
        assert len(leaves(optimized)) == 4

    def test_push_projections_flag(self, workload, estimator):
        from repro.algebra.operators import Project

        plan = parse_query(workload.query("Q1").sql, workload.catalog)
        with_proj = optimize_query(plan, estimator, push_projections=True)
        without = optimize_query(plan, estimator, push_projections=False)
        count = lambda p: len(find(p, lambda n: isinstance(n, Project)))  # noqa: E731
        assert count(with_proj) > count(without)

    def test_aggregate_query_survives(self, workload, estimator):
        plan = parse_query(
            "SELECT Division.city, COUNT(*) AS n FROM Division GROUP BY Division.city",
            workload.catalog,
        )
        optimized = optimize_query(plan, estimator)
        assert optimized.schema.attribute_names == ("Division.city", "n")
