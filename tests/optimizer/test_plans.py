"""Unit tests for cost-annotated plans."""

import pytest

from repro.algebra.expressions import column, compare, literal
from repro.algebra.operators import Join, Project, Relation, Select
from repro.optimizer.plans import AnnotatedPlan


@pytest.fixture
def annotated(workload, estimator):
    def leaf(name):
        return Relation(name, workload.catalog.schema(name).qualify())

    sigma = Select(leaf("Division"), compare("Division.city", "=", literal("LA")))
    join = Join(sigma, leaf("Product"), compare("Product.Did", "=", column("Division.Did")))
    plan = Project(join, ["Product.name"])
    return AnnotatedPlan(plan, estimator), plan, sigma, join


class TestAnnotatedPlan:
    def test_cumulative_is_sum_of_locals(self, annotated):
        plan_obj, plan, sigma, join = annotated
        total = sum(cost.local for _, cost in plan_obj.walk_costs())
        assert plan_obj.total_cost == pytest.approx(total)

    def test_leaf_cumulative_zero(self, annotated, workload):
        plan_obj, plan, *_ = annotated
        leaf = [n for n in plan.walk() if isinstance(n, Relation)][0]
        assert plan_obj.cumulative_cost(leaf) == 0.0

    def test_monotone_up_the_tree(self, annotated):
        plan_obj, plan, sigma, join = annotated
        assert (
            plan_obj.cumulative_cost(sigma)
            <= plan_obj.cumulative_cost(join)
            <= plan_obj.total_cost
        )

    def test_known_values(self, annotated):
        plan_obj, plan, sigma, join = annotated
        assert plan_obj.local_cost(sigma) == 500.0  # scan Division
        # join: outer sigma 10 blocks, inner Product 3000 blocks
        assert plan_obj.local_cost(join) == 10 + 10 * 3000

    def test_output_stats(self, annotated):
        plan_obj, *_ = annotated
        assert plan_obj.output_stats.cardinality == 600

    def test_node_cost_for_equal_subtree(self, annotated, workload):
        plan_obj, plan, sigma, _ = annotated
        # A structurally identical node (not the same object) resolves.
        clone = Select(
            Relation("Division", workload.catalog.schema("Division").qualify()),
            compare("Division.city", "=", literal("LA")),
        )
        assert plan_obj.node_cost(clone).local == 500.0

    def test_describe_contains_costs(self, annotated):
        plan_obj, *_ = annotated
        text = plan_obj.describe()
        assert "Ca=" in text and "rows=" in text
