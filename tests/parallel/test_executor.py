"""Unit tests for the repro.parallel executor abstraction."""

import pytest

from repro import obs
from repro.errors import ReproError
from repro.parallel import (
    AUTO,
    EXECUTOR_KINDS,
    MAX_AUTO_WORKERS,
    PROCESS,
    SERIAL,
    THREAD,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_workers,
    resolve_executor,
)


def _square(x):
    """Module-level so the process backend can pickle it."""
    return x * x


class TestBackends:
    @pytest.mark.parametrize(
        "executor",
        [SerialExecutor(), ThreadExecutor(4), ProcessExecutor(2)],
        ids=["serial", "thread", "process"],
    )
    def test_map_preserves_order(self, executor):
        items = list(range(20))
        assert executor.map(_square, items) == [x * x for x in items]

    def test_map_empty(self):
        assert ThreadExecutor(4).map(_square, []) == []

    def test_thread_map_supports_closures(self):
        offset = 7
        assert ThreadExecutor(2).map(lambda x: x + offset, [1, 2]) == [8, 9]

    def test_exceptions_propagate(self):
        def boom(x):
            raise ValueError(f"task {x}")

        with pytest.raises(ValueError):
            ThreadExecutor(2).map(boom, [1, 2, 3])

    def test_workers_validated(self):
        with pytest.raises(ReproError):
            ThreadExecutor(0)

    def test_serial_forces_single_worker(self):
        assert SerialExecutor(workers=9).workers == 1


class TestResolve:
    def test_kinds_constant(self):
        assert set(EXECUTOR_KINDS) == {AUTO, SERIAL, THREAD, PROCESS}

    def test_unknown_kind_raises(self):
        with pytest.raises(ReproError):
            resolve_executor("fibers", workers=2)

    def test_negative_workers_raise(self):
        with pytest.raises(ReproError):
            resolve_executor(AUTO, workers=-1)

    def test_single_worker_is_serial(self):
        for kind in EXECUTOR_KINDS:
            assert isinstance(resolve_executor(kind, workers=1), SerialExecutor)

    def test_auto_picks_threads(self):
        executor = resolve_executor(AUTO, workers=3)
        assert isinstance(executor, ThreadExecutor)
        assert executor.workers == 3

    def test_process_request_honored(self):
        assert isinstance(resolve_executor(PROCESS, workers=2), ProcessExecutor)

    def test_process_degrades_to_thread_for_closures(self):
        executor = resolve_executor(PROCESS, workers=2, closures=True)
        assert isinstance(executor, ThreadExecutor)

    def test_zero_workers_auto_sizes(self):
        executor = resolve_executor(AUTO, workers=0)
        assert executor.workers == default_workers()
        assert 1 <= executor.workers <= MAX_AUTO_WORKERS


class TestObservability:
    def test_task_counter_exported(self):
        was_enabled = obs.enabled()
        obs.enable(reset=True)
        try:
            ThreadExecutor(2).map(_square, [1, 2, 3])
            counters = obs.snapshot()["metrics"]["counters"]
            assert counters["parallel.tasks{backend=thread}"] == 3
        finally:
            if not was_enabled:
                obs.disable()
