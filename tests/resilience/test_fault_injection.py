"""End-to-end fault injection: convergence, consistency, determinism.

The acceptance contract for fault-tolerant refresh & serving:

* refreshes converge under a 30% injected storage-failure rate;
* queries served during failure windows never observe a partially
  refreshed view — they are fresh, stale-but-consistent, or degraded
  to base relations;
* the whole trajectory is bit-identical for a fixed seed.
"""

import datetime
import json

import pytest

from repro.resilience import (
    FaultPolicy,
    OPEN,
    ResilienceConfig,
    RetryPolicy,
    simulate_faults,
)
from repro.warehouse import DataWarehouse, ServedResult
from repro.workload import paper_rows, paper_workload


@pytest.fixture(scope="module")
def thirty_percent_run():
    return simulate_faults(failure_rate=0.3, seed=7, rounds=3)


def make_warehouse(seed=7):
    warehouse = DataWarehouse.from_workload(paper_workload())
    warehouse.design()
    for relation, rows in paper_rows(scale=0.02, seed=seed).items():
        warehouse.load(relation, rows)
    warehouse.materialize()
    return warehouse


ORDER_DELTA = [
    {"Pid": 1, "Cid": 2, "quantity": 5, "date": datetime.date(1996, 7, 7)}
]


class TestConvergence:
    def test_converges_under_thirty_percent_failure_rate(
        self, thirty_percent_run
    ):
        result = thirty_percent_run
        assert result.converged
        assert result.ok
        assert result.refreshes_failed == 0 or result.refreshes_succeeded > 0
        # Every view that went stale was refreshed back to fresh; views
        # not touched by the update keep epoch 0 (never needed a refresh).
        assert any(epoch > 0 for epoch in result.final_epochs.values())
        assert result.refreshes_succeeded >= result.rounds

    def test_faults_actually_fired(self, thirty_percent_run):
        stats = thirty_percent_run.faults_injected
        assert stats["storage_faults"] > 0
        assert thirty_percent_run.refreshes_attempted > (
            thirty_percent_run.refreshes_succeeded
        ), "30% failure rate should force at least one retry"

    def test_no_consistency_violations(self, thirty_percent_run):
        assert thirty_percent_run.consistency_violations == 0
        assert thirty_percent_run.queries_run == 3 * len(
            paper_workload().queries
        )


class TestDeterminism:
    def test_bit_identical_for_fixed_seed(self, thirty_percent_run):
        again = simulate_faults(failure_rate=0.3, seed=7, rounds=3)
        assert json.dumps(again.to_dict(), sort_keys=True, default=str) == (
            json.dumps(
                thirty_percent_run.to_dict(), sort_keys=True, default=str
            )
        )

    def test_different_seed_changes_trajectory(self, thirty_percent_run):
        other = simulate_faults(failure_rate=0.3, seed=8, rounds=3)
        assert other.to_dict() != thirty_percent_run.to_dict()


class TestServingUnderFailure:
    def test_stale_views_serve_previous_committed_snapshot(self):
        warehouse = make_warehouse()
        before = {
            name: warehouse.committed_cardinality(name)
            for name in (v.name for v in warehouse.views)
        }
        warehouse.apply_update("Order", ORDER_DELTA, policy="defer")

        for spec in paper_workload().queries:
            served = warehouse.serve(spec.name)
            assert isinstance(served, ServedResult)
            assert not served.degraded
            for name in served.views_used:
                # Never partial: a stale view still holds exactly the
                # rows of its last committed swap.
                assert (
                    warehouse.database.table(name).cardinality == before[name]
                )
            if served.max_staleness > 0:
                assert not served.is_fresh
                assert any(
                    lag > 0 for lag in served.staleness.values()
                )

    def test_freshness_fresh_filters_stale_views(self):
        warehouse = make_warehouse()
        warehouse.apply_update("Order", ORDER_DELTA, policy="defer")
        stale_names = {v.name for v in warehouse.stale_views()}
        for spec in paper_workload().queries:
            served = warehouse.serve(spec.name, freshness="fresh")
            assert served.max_staleness == 0
            assert not set(served.views_used) & stale_names

    def test_open_breaker_degrades_to_base_relations(self):
        warehouse = make_warehouse()
        warehouse.apply_update("Order", ORDER_DELTA, policy="defer")
        warehouse.attach_faults(FaultPolicy(storage_failure_rate=1.0, seed=0))
        scheduler = warehouse.scheduler(
            ResilienceConfig(retry=RetryPolicy(max_attempts=2), seed=0)
        )
        # Hammer the stale views until every breaker opens.
        opened = set()
        for _ in range(scheduler.config.breaker.failure_threshold):
            for outcome in scheduler.refresh_all():
                if scheduler.breaker_state(outcome.view) == OPEN:
                    opened.add(outcome.view)
        assert opened

        # Foreground faults are off (scope=maintenance), so serving works;
        # queries that would have used an opened view now degrade.
        degraded = []
        for spec in paper_workload().queries:
            served = warehouse.serve(spec.name)
            assert not set(served.views_used) & opened
            if served.degraded:
                degraded.append(spec.name)
                fresh, _ = warehouse.execute(spec.name, use_views=False)
                assert sorted(
                    tuple(sorted(r.items())) for r in served.table.rows()
                ) == sorted(
                    tuple(sorted(r.items())) for r in fresh.rows()
                )
        assert degraded, "no query degraded despite open breakers"

    def test_failed_refresh_leaves_served_contents_untouched(self):
        warehouse = make_warehouse()
        warehouse.apply_update("Order", ORDER_DELTA, policy="defer")
        stale = warehouse.stale_views()
        snapshots = {
            view.name: sorted(
                tuple(sorted(r.items()))
                for r in warehouse.database.table(view.name).rows()
            )
            for view in stale
        }
        warehouse.attach_faults(FaultPolicy(storage_failure_rate=1.0, seed=3))
        scheduler = warehouse.scheduler(
            ResilienceConfig(retry=RetryPolicy(max_attempts=3), seed=3)
        )
        for view in stale:
            assert not scheduler.refresh_view(view).ok
            stored = sorted(
                tuple(sorted(r.items()))
                for r in warehouse.database.table(view.name).rows()
            )
            assert stored == snapshots[view.name], "partial refresh leaked"

    def test_recovery_after_faults_detached(self):
        warehouse = make_warehouse()
        warehouse.apply_update("Order", ORDER_DELTA, policy="defer")
        warehouse.attach_faults(FaultPolicy(storage_failure_rate=1.0, seed=0))
        scheduler = warehouse.scheduler(
            ResilienceConfig(retry=RetryPolicy(max_attempts=2), seed=0)
        )
        assert any(not o.ok for o in scheduler.refresh_all())
        warehouse.detach_faults()
        scheduler.injector = None
        scheduler.clock.advance(scheduler.config.breaker.reset_ticks)
        outcomes = scheduler.refresh_until_converged()
        assert all(o.ok for o in outcomes)
        assert not warehouse.stale_views()
        for spec in paper_workload().queries:
            assert warehouse.serve(spec.name).is_fresh
