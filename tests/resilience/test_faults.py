"""Unit tests for the seeded fault-injection harness."""

import pytest

from repro.catalog.schema import Attribute, DataType, RelationSchema
from repro.errors import CommFault, ResilienceError, StorageFault
from repro.distributed import Topology
from repro.resilience import (
    SCOPE_ALL,
    FaultInjector,
    FaultPolicy,
    FaultyTable,
)
from repro.storage.table import Table


def make_table(rows=10):
    schema = RelationSchema("T", (Attribute("a", DataType.INTEGER),))
    table = Table(schema, blocking_factor=4)
    for i in range(rows):
        table.insert({"a": i})
    return table


class TestFaultPolicy:
    def test_rates_validated(self):
        with pytest.raises(ResilienceError):
            FaultPolicy(storage_failure_rate=1.5)
        with pytest.raises(ResilienceError):
            FaultPolicy(comm_failure_rate=-0.1)
        with pytest.raises(ResilienceError):
            FaultPolicy(relation_rates=(("Order", 2.0),))
        with pytest.raises(ResilienceError):
            FaultPolicy(scope="sometimes")

    def test_per_target_rates_override_default(self):
        policy = FaultPolicy(
            storage_failure_rate=0.1, relation_rates=(("Order", 0.9),)
        )
        assert policy.rate_for_relation("Order") == 0.9
        assert policy.rate_for_relation("Customer") == 0.1

    def test_injects_anything(self):
        assert not FaultPolicy().injects_anything
        assert FaultPolicy(storage_failure_rate=0.01).injects_anything
        assert FaultPolicy(site_rates=(("s1", 0.5),)).injects_anything


class TestFaultInjector:
    def test_deterministic_fault_sequence(self):
        def sequence(seed):
            injector = FaultInjector(
                FaultPolicy(storage_failure_rate=0.5, scope=SCOPE_ALL, seed=seed)
            )
            out = []
            for _ in range(50):
                try:
                    injector.maybe_fail_storage("T", "scan")
                    out.append(0)
                except StorageFault:
                    out.append(1)
            return out

        assert sequence(3) == sequence(3)
        assert sequence(3) != sequence(4)

    def test_scope_maintenance_gates_injection(self):
        injector = FaultInjector(
            FaultPolicy(storage_failure_rate=1.0, seed=0)
        )
        injector.maybe_fail_storage("T", "scan")  # outside maintenance: no-op
        with injector.maintenance():
            with pytest.raises(StorageFault):
                injector.maybe_fail_storage("T", "scan")
        injector.maybe_fail_storage("T", "scan")  # closed again

    def test_counters_and_stats(self):
        injector = FaultInjector(
            FaultPolicy(storage_failure_rate=1.0, scope=SCOPE_ALL, seed=0)
        )
        for _ in range(3):
            with pytest.raises(StorageFault):
                injector.maybe_fail_storage("T", "write")
        assert injector.storage_faults == 3
        assert injector.stats()["storage_faults"] == 3

    def test_delays_accumulate_and_drain(self):
        injector = FaultInjector(
            FaultPolicy(delay_rate=1.0, delay_ticks=2.5, scope=SCOPE_ALL, seed=0)
        )
        injector.maybe_fail_storage("T", "scan")
        injector.maybe_fail_storage("T", "scan")
        assert injector.delays == 2
        assert injector.drain_delay_ticks() == 5.0
        assert injector.drain_delay_ticks() == 0.0  # drained


class TestFaultyTable:
    def test_shares_rows_and_io_with_inner(self):
        inner = make_table()
        injector = FaultInjector(FaultPolicy(seed=0))
        proxy = FaultyTable(inner, "T", injector)
        assert proxy.cardinality == inner.cardinality
        proxy.insert({"a": 99})
        assert inner.cardinality == 11  # write went to the shared rows
        assert proxy.io is inner.io

    def test_failed_write_leaves_no_partial_state(self):
        inner = make_table()
        injector = FaultInjector(
            FaultPolicy(storage_failure_rate=1.0, scope=SCOPE_ALL, seed=0)
        )
        proxy = FaultyTable(inner, "T", injector)
        before = list(inner.rows())
        with pytest.raises(StorageFault):
            proxy.insert_many([{"a": 100}, {"a": 101}])
        assert inner.rows() == before  # aborted before any append

    def test_scan_fault_raises_before_iteration(self):
        inner = make_table()
        injector = FaultInjector(
            FaultPolicy(storage_failure_rate=1.0, scope=SCOPE_ALL, seed=0)
        )
        proxy = FaultyTable(inner, "T", injector)
        with pytest.raises(StorageFault):
            proxy.scan()


class TestFaultyTopology:
    def test_transfer_faults_are_seeded(self):
        topology = Topology(["hq", "site1"])
        injector = FaultInjector(
            FaultPolicy(comm_failure_rate=1.0, scope=SCOPE_ALL, seed=0)
        )
        faulty = topology.with_faults(injector)
        with pytest.raises(CommFault):
            faulty.transfer_cost("hq", "site1", 10)
        assert injector.comm_faults == 1

    def test_intra_site_transfers_never_fail(self):
        topology = Topology(["hq"])
        injector = FaultInjector(
            FaultPolicy(comm_failure_rate=1.0, scope=SCOPE_ALL, seed=0)
        )
        faulty = topology.with_faults(injector)
        assert faulty.transfer_cost("hq", "hq", 10) == 0.0

    def test_delegates_everything_else(self):
        topology = Topology(["hq", "site1"])
        topology.set_link("hq", "site1", 3.0)
        injector = FaultInjector(FaultPolicy(seed=0))
        faulty = topology.with_faults(injector)
        assert faulty.link_cost("hq", "site1") == 3.0
        assert "site1" in faulty
        assert faulty.transfer_cost("hq", "site1", 2) == 6.0

    def test_per_site_rate_uses_worst_endpoint(self):
        topology = Topology(["hq", "flaky"])
        injector = FaultInjector(
            FaultPolicy(site_rates=(("flaky", 1.0),), scope=SCOPE_ALL, seed=0)
        )
        faulty = topology.with_faults(injector)
        with pytest.raises(CommFault):
            faulty.transfer_cost("hq", "flaky", 1)


class TestDatabaseIntegration:
    def test_database_wraps_tables_when_injector_attached(self):
        from repro.executor.engine import Database

        database = Database()
        schema = RelationSchema("T", (Attribute("a", DataType.INTEGER),))
        database.register("T", Table(schema))
        injector = FaultInjector(
            FaultPolicy(storage_failure_rate=1.0, scope=SCOPE_ALL, seed=0)
        )
        database.fault_injector = injector
        table = database.table("T")
        assert isinstance(table, FaultyTable)
        with pytest.raises(StorageFault):
            table.scan()
        database.fault_injector = None
        assert not isinstance(database.table("T"), FaultyTable)
