"""Unit tests for the retry/backoff/breaker refresh scheduler."""

import datetime

import pytest

from repro.errors import ResilienceError
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
    FaultPolicy,
    LogicalClock,
    ResilienceConfig,
    RetryPolicy,
)
from repro.warehouse import DataWarehouse
from repro.workload import paper_rows, paper_workload


def make_warehouse(seed=7):
    warehouse = DataWarehouse.from_workload(paper_workload())
    warehouse.design()
    for relation, rows in paper_rows(scale=0.02, seed=seed).items():
        warehouse.load(relation, rows)
    warehouse.materialize()
    return warehouse


def make_stale(warehouse):
    """Defer-update Order so every Order-based view goes stale."""
    delta = [
        {"Pid": 1, "Cid": 2, "quantity": 5, "date": datetime.date(1996, 7, 7)}
    ]
    warehouse.apply_update("Order", delta, policy="defer")
    stale = warehouse.stale_views()
    assert stale
    return stale


class TestPolicies:
    def test_backoff_doubles_and_caps(self):
        retry = RetryPolicy(base_backoff=4.0, max_backoff=10.0, jitter=0.0)
        assert retry.backoff_ticks(1, 0.0) == 4.0
        assert retry.backoff_ticks(2, 0.0) == 8.0
        assert retry.backoff_ticks(3, 0.0) == 10.0  # capped
        assert retry.backoff_ticks(9, 0.0) == 10.0

    def test_jitter_scales_with_draw(self):
        retry = RetryPolicy(base_backoff=4.0, jitter=0.5)
        assert retry.backoff_ticks(1, 0.0) == 4.0
        assert retry.backoff_ticks(1, 1.0) == 6.0  # 4 · (1 + 0.5)

    def test_invalid_policies_rejected(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ResilienceError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ResilienceError):
            ResilienceConfig(retry=object())


class TestLogicalClock:
    def test_advances_monotonically(self):
        clock = LogicalClock()
        assert clock.now == 0.0
        clock.advance(3.0)
        clock.advance(0.5)
        assert clock.now == 3.5

    def test_rejects_negative_ticks(self):
        with pytest.raises(ResilienceError):
            LogicalClock().advance(-1.0)


class TestCircuitBreaker:
    def make(self, threshold=2, reset=10.0):
        clock = LogicalClock()
        return CircuitBreaker(BreakerPolicy(threshold, reset), clock), clock

    def test_opens_after_threshold_failures(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allows()

    def test_half_opens_after_reset_ticks(self):
        breaker, clock = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.1)
        assert breaker.state == HALF_OPEN
        assert breaker.allows()

    def test_half_open_admits_one_probe(self):
        breaker, clock = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        breaker.begin_probe()
        assert not breaker.allows()  # probe in flight

    def test_probe_success_closes(self):
        breaker, clock = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        breaker.begin_probe()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failures == 0

    def test_probe_failure_reopens_from_now(self):
        breaker, clock = self.make(threshold=2, reset=10.0)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        breaker.begin_probe()
        breaker.record_failure()
        assert breaker.state == OPEN  # full reset window restarts
        clock.advance(9.0)
        assert breaker.state == OPEN
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN


class TestRefreshScheduler:
    def test_clean_refresh_bumps_epoch(self):
        warehouse = make_warehouse()
        stale = make_stale(warehouse)
        scheduler = warehouse.scheduler()
        view = stale[0]
        assert scheduler.epoch(view.name) == 0
        outcome = scheduler.refresh_view(view)
        assert outcome.ok and outcome.status == "refreshed"
        assert outcome.attempts == 1
        assert scheduler.epoch(view.name) == 1
        assert warehouse.is_fresh(view)
        assert outcome.ticks > 0  # I/O advanced the logical clock

    def test_refresh_all_covers_views_in_name_order(self):
        warehouse = make_warehouse()
        make_stale(warehouse)
        outcomes = warehouse.refresh_resilient()
        assert [o.view for o in outcomes] == sorted(o.view for o in outcomes)
        assert all(o.ok for o in outcomes)
        assert not warehouse.stale_views()

    def test_certain_failure_exhausts_attempts_and_opens_breaker(self):
        warehouse = make_warehouse()
        stale = make_stale(warehouse)
        warehouse.attach_faults(FaultPolicy(storage_failure_rate=1.0, seed=0))
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=3),
            breaker=BreakerPolicy(failure_threshold=1, reset_ticks=50.0),
            seed=0,
        )
        scheduler = warehouse.scheduler(config)
        view = stale[0]

        outcome = scheduler.refresh_view(view)
        assert outcome.status == "failed"
        assert outcome.attempts == 3
        assert outcome.error
        assert scheduler.breaker_state(view.name) == OPEN
        assert scheduler.epoch(view.name) == 0
        assert not warehouse.is_fresh(view)

        skipped = scheduler.refresh_view(view)
        assert skipped.status == "skipped"
        assert skipped.attempts == 0
        assert "breaker" in skipped.error

    def test_timeout_budget_cuts_retries_short(self):
        warehouse = make_warehouse()
        stale = make_stale(warehouse)
        warehouse.attach_faults(FaultPolicy(storage_failure_rate=1.0, seed=0))
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=10, timeout_ticks=1.0),
            seed=0,
        )
        scheduler = warehouse.scheduler(config)
        outcome = scheduler.refresh_view(stale[0])
        assert outcome.status == "failed"
        assert outcome.attempts < 10
        assert "timeout" in outcome.error

    def test_open_breaker_recovers_after_reset_window(self):
        warehouse = make_warehouse()
        stale = make_stale(warehouse)
        injector = warehouse.attach_faults(
            FaultPolicy(storage_failure_rate=1.0, seed=0)
        )
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2),
            breaker=BreakerPolicy(failure_threshold=1, reset_ticks=10.0),
            seed=0,
        )
        scheduler = warehouse.scheduler(config)
        view = stale[0]
        assert scheduler.refresh_view(view).status == "failed"
        assert scheduler.breaker_state(view.name) == OPEN

        # Heal the fault and let the breaker age into its probe window.
        warehouse.detach_faults()
        scheduler.injector = None
        scheduler.clock.advance(10.0)
        assert scheduler.breaker_state(view.name) == HALF_OPEN
        outcome = scheduler.refresh_view(view)
        assert outcome.ok
        assert scheduler.breaker_state(view.name) == CLOSED
        assert injector.storage_faults > 0  # the faults really fired

    def test_converges_under_thirty_percent_failures(self):
        warehouse = make_warehouse()
        make_stale(warehouse)
        warehouse.attach_faults(FaultPolicy(storage_failure_rate=0.3, seed=11))
        scheduler = warehouse.scheduler(
            ResilienceConfig(retry=RetryPolicy(max_attempts=5), seed=11)
        )
        outcomes = scheduler.refresh_until_converged()
        assert all(o.ok for o in outcomes)
        assert not warehouse.stale_views()

    def test_trajectory_is_deterministic_for_fixed_seed(self):
        def run(seed):
            warehouse = make_warehouse()
            make_stale(warehouse)
            warehouse.attach_faults(
                FaultPolicy(storage_failure_rate=0.4, seed=seed)
            )
            scheduler = warehouse.scheduler(
                ResilienceConfig(retry=RetryPolicy(max_attempts=6), seed=seed)
            )
            outcomes = scheduler.refresh_until_converged()
            return [
                (o.view, o.status, o.attempts, o.ticks, o.epoch)
                for o in outcomes
            ] + [round(scheduler.clock.now, 9)]

        assert run(5) == run(5)
