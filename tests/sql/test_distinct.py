"""Unit tests for SELECT DISTINCT, from parsing to execution."""

from repro.algebra.operators import Project
from repro.executor.engine import ExecutionEngine, load_database
from repro.mvpp.serialize import operator_from_dict, operator_to_dict
from repro.sql.parser import parse
from repro.sql.translator import parse_query
from repro.workload.datagen import paper_rows


class TestParsing:
    def test_distinct_flag_set(self):
        assert parse("SELECT DISTINCT a FROM R").distinct
        assert not parse("SELECT a FROM R").distinct

    def test_distinct_is_soft_keyword(self):
        # A column (or table) may be named "distinct" without quoting.
        statement = parse("SELECT distinct FROM R")
        assert not statement.distinct
        assert [str(c.expression) for c in statement.select_items] == [
            "distinct"
        ]

    def test_round_trip(self):
        sql = "SELECT DISTINCT a, b FROM R WHERE a > 1"
        assert "DISTINCT" in str(parse(sql))
        assert parse(str(parse(sql))) == parse(sql)


class TestTranslation:
    def test_distinct_projection_on_top(self, workload, estimator):
        from repro.optimizer.heuristics import optimize_query

        plan = parse_query(
            "SELECT DISTINCT Customer.city FROM Customer", workload.catalog
        )
        assert isinstance(plan, Project) and plan.distinct
        optimized = optimize_query(plan, estimator)
        assert isinstance(optimized, Project) and optimized.distinct

    def test_signature_distinguishes_distinct(self, workload):
        plain = parse_query("SELECT Customer.city FROM Customer", workload.catalog)
        distinct = parse_query(
            "SELECT DISTINCT Customer.city FROM Customer", workload.catalog
        )
        assert plain.signature != distinct.signature

    def test_serializer_round_trips_distinct(self, workload):
        plan = parse_query(
            "SELECT DISTINCT Customer.city FROM Customer", workload.catalog
        )
        restored = operator_from_dict(operator_to_dict(plan))
        assert isinstance(restored, Project) and restored.distinct
        assert restored.signature == plan.signature


class TestExecution:
    def test_distinct_eliminates_duplicates(self, workload):
        database = load_database(paper_rows(scale=0.02, seed=3), workload.catalog)
        engine = ExecutionEngine(database)
        plan = parse_query(
            "SELECT DISTINCT Customer.city FROM Customer", workload.catalog
        )
        result = engine.execute(plan)
        cities = [r["Customer.city"] for r in result.rows()]
        assert len(cities) == len(set(cities))

        plain = engine.execute(
            parse_query("SELECT Customer.city FROM Customer", workload.catalog)
        )
        assert set(cities) == {r["Customer.city"] for r in plain.rows()}
        assert len(cities) < plain.cardinality

    def test_first_occurrence_order_preserved(self, workload):
        database = load_database(paper_rows(scale=0.02, seed=3), workload.catalog)
        engine = ExecutionEngine(database)
        plain = engine.execute(
            parse_query("SELECT Customer.city FROM Customer", workload.catalog)
        )
        expected = list(
            dict.fromkeys(r["Customer.city"] for r in plain.rows())
        )
        distinct = engine.execute(
            parse_query(
                "SELECT DISTINCT Customer.city FROM Customer", workload.catalog
            )
        )
        assert [r["Customer.city"] for r in distinct.rows()] == expected
