"""Unit tests for the SQL dialect extensions: JOIN..ON, BETWEEN, IN."""

import pytest

from repro.errors import ParseError
from repro.sql.ast_nodes import BooleanCondition, ComparisonCondition, NotCondition
from repro.sql.parser import parse
from repro.sql.translator import parse_query


class TestJoinOn:
    def test_single_join(self):
        statement = parse(
            "SELECT * FROM Product JOIN Division ON Product.Did = Division.Did"
        )
        assert [t.name for t in statement.tables] == ["Product", "Division"]
        assert isinstance(statement.where, ComparisonCondition)

    def test_join_chain(self):
        statement = parse(
            "SELECT * FROM A JOIN B ON A.x = B.x JOIN C ON B.y = C.y"
        )
        assert len(statement.tables) == 3
        assert isinstance(statement.where, BooleanCondition)
        assert len(statement.where.parts) == 2

    def test_join_mixed_with_where(self):
        statement = parse(
            "SELECT * FROM A JOIN B ON A.x = B.x WHERE A.v > 3"
        )
        assert isinstance(statement.where, BooleanCondition)
        assert len(statement.where.parts) == 2

    def test_join_with_comma_chains(self):
        statement = parse("SELECT * FROM A JOIN B ON A.x = B.x, C")
        assert [t.name for t in statement.tables] == ["A", "B", "C"]

    def test_join_with_aliases(self):
        statement = parse("SELECT * FROM Product Pd JOIN Division Dv ON Pd.Did = Dv.Did")
        assert statement.tables[0].binding == "Pd"
        assert statement.tables[1].binding == "Dv"

    def test_missing_on_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM A JOIN B WHERE A.x = B.x")

    def test_translates_like_comma_form(self, workload):
        comma = parse_query(
            "SELECT Product.name FROM Product, Division "
            "WHERE Product.Did = Division.Did AND Division.city = 'LA'",
            workload.catalog,
        )
        join_on = parse_query(
            "SELECT Product.name FROM Product JOIN Division "
            "ON Product.Did = Division.Did WHERE Division.city = 'LA'",
            workload.catalog,
        )
        assert comma.signature == join_on.signature


class TestBetween:
    def test_desugars_to_range(self):
        statement = parse("SELECT * FROM R WHERE a BETWEEN 3 AND 9")
        condition = statement.where
        assert isinstance(condition, BooleanCondition)
        assert condition.op == "and"
        ops = {c.op for c in condition.parts}
        assert ops == {">=", "<="}

    def test_not_between(self):
        statement = parse("SELECT * FROM R WHERE a NOT BETWEEN 3 AND 9")
        assert isinstance(statement.where, NotCondition)

    def test_between_combines_with_and(self):
        statement = parse(
            "SELECT * FROM R WHERE a BETWEEN 3 AND 9 AND b = 1"
        )
        assert isinstance(statement.where, BooleanCondition)
        assert len(statement.where.parts) == 2

    def test_between_evaluates_correctly(self, workload):
        plan = parse_query(
            "SELECT Pid FROM Order WHERE quantity BETWEEN 50 AND 150",
            workload.catalog,
        )
        from repro.algebra.operators import Select
        from repro.algebra.tree import find

        select = find(plan, lambda n: isinstance(n, Select))[0]
        assert select.predicate.evaluate({"Order.quantity": 100}) is True
        assert select.predicate.evaluate({"Order.quantity": 200}) is False
        assert select.predicate.evaluate({"Order.quantity": 50}) is True


class TestIn:
    def test_desugars_to_disjunction(self):
        statement = parse("SELECT * FROM R WHERE city IN ('LA', 'SF', 'NY')")
        condition = statement.where
        assert isinstance(condition, BooleanCondition)
        assert condition.op == "or"
        assert len(condition.parts) == 3

    def test_single_member_is_equality(self):
        statement = parse("SELECT * FROM R WHERE city IN ('LA')")
        assert isinstance(statement.where, ComparisonCondition)

    def test_not_in(self):
        statement = parse("SELECT * FROM R WHERE a NOT IN (1, 2)")
        assert isinstance(statement.where, NotCondition)

    def test_in_evaluates(self, workload):
        plan = parse_query(
            "SELECT name FROM Division WHERE city IN ('LA', 'SF')",
            workload.catalog,
        )
        from repro.algebra.operators import Select
        from repro.algebra.tree import find

        predicate = find(plan, lambda n: isinstance(n, Select))[0].predicate
        assert predicate.evaluate({"Division.city": "SF"}) is True
        assert predicate.evaluate({"Division.city": "NY"}) is False

    def test_dangling_not_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM R WHERE a NOT = 3")


class TestEndToEnd:
    def test_designable_with_extended_syntax(self, workload):
        """A workload written with JOIN..ON / BETWEEN / IN flows through
        the whole design pipeline."""
        from repro.mvpp.generation import design
        from repro.workload.spec import QuerySpec, Workload

        queries = (
            QuerySpec(
                "J1",
                "SELECT Product.name FROM Product JOIN Division "
                "ON Product.Did = Division.Did "
                "WHERE Division.city IN ('LA', 'SF')",
                5.0,
            ),
            QuerySpec(
                "J2",
                "SELECT Customer.city FROM Order JOIN Customer "
                "ON Order.Cid = Customer.Cid "
                "WHERE quantity BETWEEN 50 AND 150",
                2.0,
            ),
        )
        extended = Workload(
            name="extended-sql",
            catalog=workload.catalog,
            statistics=workload.statistics,
            queries=queries,
        )
        result = design(extended, rotations=1)
        assert result.breakdown.total > 0
