"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import TokenType, tokenize


def kinds(sql):
    return [t.type for t in tokenize(sql)]


def values(sql):
    return [t.value for t in tokenize(sql)][:-1]  # drop EOF


class TestBasics:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.value for t in tokens[:3]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:3])

    def test_identifiers_preserve_case(self):
        assert values("Product pId _x")[0:3] == ["Product", "pId", "_x"]

    def test_eof_is_last(self):
        assert kinds("SELECT")[-1] is TokenType.EOF

    def test_empty_input(self):
        assert kinds("") == [TokenType.EOF]

    def test_whitespace_ignored(self):
        assert values("  a ,\n\t b ") == ["a", ",", "b"]


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.NUMBER and token.value == 42

    def test_float(self):
        token = tokenize("4.25")[0]
        assert token.value == 4.25

    def test_qualified_name_not_float(self):
        # "R1.x" must lex as IDENT DOT IDENT, not a float.
        types = kinds("R1.x")[:-1]
        assert types == [TokenType.IDENT, TokenType.DOT, TokenType.IDENT]

    def test_number_then_dot_ident(self):
        # "1.x" lexes 1, DOT, x rather than failing.
        types = kinds("1.x")[:-1]
        assert types == [TokenType.NUMBER, TokenType.DOT, TokenType.IDENT]


class TestStrings:
    def test_single_quoted(self):
        token = tokenize("'LA'")[0]
        assert token.type is TokenType.STRING and token.value == "LA"

    def test_double_quoted(self):
        assert tokenize('"SF"')[0].value == "SF"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated(self):
        with pytest.raises(LexerError):
            tokenize("'oops")


class TestOperators:
    @pytest.mark.parametrize(
        "text,expected",
        [("=", "="), ("<", "<"), ("<=", "<="), (">", ">"), (">=", ">="), ("!=", "!="), ("<>", "!=")],
    )
    def test_each_operator(self, text, expected):
        token = tokenize(text)[0]
        assert token.type is TokenType.OPERATOR and token.value == expected

    def test_no_space_needed(self):
        assert values("a<=3") == ["a", "<=", 3]


class TestPunctuation:
    def test_parens_comma_star_dot(self):
        types = kinds("(a, b.*)")[:-1]
        assert types == [
            TokenType.LPAREN,
            TokenType.IDENT,
            TokenType.COMMA,
            TokenType.IDENT,
            TokenType.DOT,
            TokenType.STAR,
            TokenType.RPAREN,
        ]

    def test_invalid_character(self):
        with pytest.raises(LexerError) as info:
            tokenize("a @ b")
        assert info.value.position == 2

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3
