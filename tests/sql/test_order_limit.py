"""Unit tests for ORDER BY / LIMIT, from parsing to execution."""

import pytest

from repro.algebra.operators import Limit, Sort
from repro.errors import AlgebraError, ParseError, TranslationError
from repro.executor.engine import ExecutionEngine, load_database
from repro.sql.parser import parse
from repro.sql.translator import parse_query
from repro.workload.datagen import paper_rows


class TestParsing:
    def test_order_by_directions(self):
        statement = parse("SELECT a FROM R ORDER BY a DESC, b, c ASC")
        assert [(str(o.column), o.ascending) for o in statement.order_by] == [
            ("a", False),
            ("b", True),
            ("c", True),
        ]

    def test_limit(self):
        assert parse("SELECT a FROM R LIMIT 7").limit == 7

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM R LIMIT 2.5")

    def test_order_is_soft_keyword(self):
        """The paper's relation is literally named Order."""
        statement = parse("SELECT date FROM Order WHERE quantity > 100")
        assert statement.tables[0].name == "Order"

    def test_order_table_with_order_by(self):
        statement = parse("SELECT date FROM Order ORDER BY date")
        assert statement.tables[0].name == "Order"
        assert len(statement.order_by) == 1

    def test_round_trip(self):
        sql = "SELECT a FROM R WHERE a > 1 ORDER BY a DESC LIMIT 3"
        assert parse(str(parse(sql))) == parse(sql)


class TestTranslation:
    def test_sort_and_limit_on_top(self, workload):
        plan = parse_query(
            "SELECT Customer.city, date FROM Order, Customer "
            "WHERE Order.Cid = Customer.Cid ORDER BY date DESC LIMIT 5",
            workload.catalog,
        )
        assert isinstance(plan, Limit)
        assert isinstance(plan.child, Sort)
        assert plan.count == 5
        assert plan.child.keys == (("Order.date", False),)

    def test_order_by_aggregate_alias(self, workload):
        plan = parse_query(
            "SELECT Division.city, COUNT(*) AS n FROM Division "
            "GROUP BY Division.city ORDER BY n DESC LIMIT 3",
            workload.catalog,
        )
        assert isinstance(plan, Limit)
        assert plan.child.keys == (("n", False),)

    def test_order_by_must_be_in_output(self, workload):
        with pytest.raises(TranslationError):
            parse_query(
                "SELECT name FROM Product ORDER BY Division.city",
                workload.catalog,
            )

    def test_negative_limit_rejected(self, workload):
        with pytest.raises(AlgebraError):
            Limit(
                parse_query("SELECT name FROM Product", workload.catalog), -1
            )


class TestOptimizerAndGeneration:
    def test_optimizer_keeps_decorations_on_top(self, workload, estimator):
        from repro.optimizer.heuristics import optimize_query

        plan = parse_query(
            "SELECT Customer.city, date FROM Order, Customer "
            "WHERE Order.Cid = Customer.Cid ORDER BY date LIMIT 10",
            workload.catalog,
        )
        optimized = optimize_query(plan, estimator)
        assert isinstance(optimized, Limit)
        assert isinstance(optimized.child, Sort)

    def test_design_pipeline_with_order_limit(self, workload):
        from dataclasses import replace

        from repro.mvpp import design
        from repro.workload.spec import QuerySpec

        queries = tuple(
            list(workload.queries[:3])
            + [
                QuerySpec(
                    "Q4",
                    "SELECT Customer.city, date FROM Order, Customer "
                    "WHERE quantity > 100 AND Order.Cid = Customer.Cid "
                    "ORDER BY date DESC LIMIT 100",
                    5.0,
                )
            ]
        )
        result = design(replace(workload, queries=queries), rotations=1)
        result.mvpp.validate()
        q4_plan = result.mvpp.query_root("Q4").operator
        assert isinstance(q4_plan, Limit)

    def test_estimation_and_cost(self, workload, estimator):
        plan = parse_query(
            "SELECT name FROM Product ORDER BY name LIMIT 10",
            workload.catalog,
        )
        stats = estimator.estimate(plan)
        assert stats.cardinality == 10
        from repro.optimizer.plans import AnnotatedPlan

        annotated = AnnotatedPlan(plan, estimator)
        assert annotated.total_cost > 0


class TestExecution:
    @pytest.fixture(scope="class")
    def database(self, workload):
        return load_database(paper_rows(scale=0.02, seed=31), workload.catalog)

    def test_sorted_output(self, workload, database):
        plan = parse_query(
            "SELECT date FROM Order ORDER BY date", workload.catalog
        )
        result = ExecutionEngine(database).execute(plan)
        dates = [r["Order.date"] for r in result.rows()]
        assert dates == sorted(dates)

    def test_descending(self, workload, database):
        plan = parse_query(
            "SELECT quantity FROM Order ORDER BY quantity DESC LIMIT 5",
            workload.catalog,
        )
        result = ExecutionEngine(database).execute(plan)
        quantities = [r["Order.quantity"] for r in result.rows()]
        assert quantities == sorted(quantities, reverse=True)
        assert len(quantities) == 5

    def test_limit_truncates(self, workload, database):
        plan = parse_query(
            "SELECT name FROM Product LIMIT 3", workload.catalog
        )
        result = ExecutionEngine(database).execute(plan)
        assert result.cardinality == 3

    def test_limit_beyond_input(self, workload, database):
        plan = parse_query(
            "SELECT name FROM Division LIMIT 10000000", workload.catalog
        )
        result = ExecutionEngine(database).execute(plan)
        assert result.cardinality == database.table("Division").cardinality

    def test_matches_reference_evaluator(self, workload, database):
        from repro.executor.reference import evaluate

        plan = parse_query(
            "SELECT quantity FROM Order ORDER BY quantity LIMIT 20",
            workload.catalog,
        )
        engine_rows = [
            r["Order.quantity"]
            for r in ExecutionEngine(database).execute(plan).rows()
        ]
        tables = {
            "Order": database.table("Order").rows(),
        }
        reference_rows = [r["Order.quantity"] for r in evaluate(plan, tables)]
        assert engine_rows == reference_rows

    def test_serialization_round_trip(self, workload):
        from repro.mvpp.serialize import operator_from_dict, operator_to_dict

        plan = parse_query(
            "SELECT date FROM Order ORDER BY date DESC LIMIT 9",
            workload.catalog,
        )
        rebuilt = operator_from_dict(operator_to_dict(plan))
        assert rebuilt.signature == plan.signature
