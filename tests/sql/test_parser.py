"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql.ast_nodes import (
    AggregateCall,
    BooleanCondition,
    ColumnName,
    ComparisonCondition,
    LiteralValue,
    NotCondition,
)
from repro.sql.parser import parse


class TestSelectList:
    def test_star(self):
        statement = parse("SELECT * FROM R")
        assert statement.is_star

    def test_columns(self):
        statement = parse("SELECT a, R.b FROM R")
        assert statement.select_items[0].expression == ColumnName(None, "a")
        assert statement.select_items[1].expression == ColumnName("R", "b")

    def test_aggregate_calls(self):
        statement = parse("SELECT COUNT(*), SUM(R.x) AS total FROM R")
        count, total = statement.select_items
        assert count.expression == AggregateCall("count", None)
        assert total.expression == AggregateCall("sum", ColumnName("R", "x"))
        assert total.alias == "total"

    def test_sum_star_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT SUM(*) FROM R")

    def test_has_aggregates_flag(self):
        assert parse("SELECT COUNT(*) FROM R").has_aggregates
        assert not parse("SELECT a FROM R").has_aggregates


class TestFrom:
    def test_multiple_tables(self):
        statement = parse("SELECT * FROM A, B, C")
        assert [t.name for t in statement.tables] == ["A", "B", "C"]

    def test_alias(self):
        statement = parse("SELECT * FROM Product Pd")
        assert statement.tables[0].name == "Product"
        assert statement.tables[0].binding == "Pd"

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse("SELECT a")


class TestWhere:
    def test_simple_comparison(self):
        statement = parse("SELECT * FROM R WHERE R.a > 5")
        condition = statement.where
        assert isinstance(condition, ComparisonCondition)
        assert condition.op == ">"
        assert condition.right == LiteralValue(5)

    def test_and_chain(self):
        statement = parse("SELECT * FROM R WHERE a > 1 AND b < 2 AND c = 3")
        assert isinstance(statement.where, BooleanCondition)
        assert statement.where.op == "and"
        assert len(statement.where.parts) == 3

    def test_or_binds_weaker_than_and(self):
        statement = parse("SELECT * FROM R WHERE a = 1 AND b = 2 OR c = 3")
        top = statement.where
        assert isinstance(top, BooleanCondition) and top.op == "or"
        assert isinstance(top.parts[0], BooleanCondition)
        assert top.parts[0].op == "and"

    def test_parentheses_override(self):
        statement = parse("SELECT * FROM R WHERE a = 1 AND (b = 2 OR c = 3)")
        top = statement.where
        assert top.op == "and"
        assert isinstance(top.parts[1], BooleanCondition)
        assert top.parts[1].op == "or"

    def test_not(self):
        statement = parse("SELECT * FROM R WHERE NOT a = 1")
        assert isinstance(statement.where, NotCondition)

    def test_string_literal(self):
        statement = parse("SELECT * FROM R WHERE city = 'LA'")
        assert statement.where.right == LiteralValue("LA")

    def test_literal_on_left(self):
        statement = parse("SELECT * FROM R WHERE 5 < a")
        assert statement.where.left == LiteralValue(5)

    def test_column_to_column(self):
        statement = parse("SELECT * FROM A, B WHERE A.x = B.y")
        assert statement.where.left == ColumnName("A", "x")
        assert statement.where.right == ColumnName("B", "y")

    def test_missing_operand(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM R WHERE a >")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM R WHERE (a = 1")


class TestGroupBy:
    def test_group_by_columns(self):
        statement = parse(
            "SELECT R.a, COUNT(*) FROM R GROUP BY R.a"
        )
        assert statement.group_by == (ColumnName("R", "a"),)

    def test_group_by_multiple(self):
        statement = parse("SELECT a, b, COUNT(*) FROM R GROUP BY a, b")
        assert len(statement.group_by) == 2

    def test_group_without_by(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM R GROUP a")


class TestWholeStatement:
    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM R extra ,")

    def test_paper_query3_parses(self):
        sql = (
            "SELECT Customer.name, Product.name, quantity "
            "FROM Product, Division, Order, Customer "
            "WHERE Division.city = 'LA' AND Product.Did = Division.Did "
            "AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid "
            "AND date > '1996-07-01'"
        )
        statement = parse(sql)
        assert len(statement.tables) == 4
        assert len(statement.where.parts) == 5

    def test_str_round_trip_reparses(self):
        sql = "SELECT a, COUNT(*) AS n FROM R, S WHERE R.x = S.y AND a > 3 GROUP BY a"
        statement = parse(sql)
        assert parse(str(statement)) == statement
