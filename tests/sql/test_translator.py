"""Unit tests for SQL → algebra translation."""

import datetime

import pytest

from repro.algebra.expressions import Comparison, Literal, Or
from repro.algebra.operators import Aggregate, Join, Project, Relation, Select
from repro.algebra.tree import find, leaves
from repro.catalog.datatypes import DataType
from repro.errors import TranslationError, UnknownRelationError
from repro.sql.translator import parse_query


@pytest.fixture
def catalog(workload):
    return workload.catalog


class TestResolution:
    def test_unknown_table(self, catalog):
        with pytest.raises(UnknownRelationError):
            parse_query("SELECT a FROM Nope", catalog)

    def test_unknown_column(self, catalog):
        with pytest.raises(TranslationError):
            parse_query("SELECT missing FROM Product", catalog)

    def test_unqualified_unique_column_qualified(self, catalog):
        plan = parse_query("SELECT Pid FROM Product", catalog)
        assert plan.schema.attribute_names == ("Product.Pid",)

    def test_ambiguous_column_rejected(self, catalog):
        # 'name' exists in both Product and Division.
        with pytest.raises(TranslationError):
            parse_query("SELECT name FROM Product, Division", catalog)

    def test_alias_binding(self, catalog):
        plan = parse_query("SELECT Pd.name FROM Product Pd", catalog)
        assert plan.schema.attribute_names == ("Product.name",)

    def test_self_join_rejected(self, catalog):
        with pytest.raises(TranslationError):
            parse_query("SELECT * FROM Product, Product", catalog)

    def test_unknown_table_binding_in_column(self, catalog):
        with pytest.raises(TranslationError):
            parse_query("SELECT Zz.name FROM Product", catalog)


class TestLiteralTyping:
    def test_date_literal_coerced(self, catalog):
        plan = parse_query(
            "SELECT Pid FROM Order WHERE date > '1996-07-01'", catalog
        )
        select = find(plan, lambda n: isinstance(n, Select))[0]
        assert isinstance(select.predicate, Comparison)
        literal = select.predicate.right
        assert isinstance(literal, Literal)
        assert literal.value == datetime.date(1996, 7, 1)
        assert literal.datatype is DataType.DATE

    def test_bad_date_rejected(self, catalog):
        with pytest.raises(TranslationError):
            parse_query("SELECT Pid FROM Order WHERE date > 'soon'", catalog)

    def test_string_against_int_rejected(self, catalog):
        with pytest.raises(TranslationError):
            parse_query("SELECT Pid FROM Order WHERE quantity > 'many'", catalog)

    def test_int_against_int(self, catalog):
        plan = parse_query("SELECT Pid FROM Order WHERE quantity > 100", catalog)
        assert find(plan, lambda n: isinstance(n, Select))


class TestPlanShape:
    def test_single_table_no_join(self, catalog):
        plan = parse_query("SELECT name FROM Product", catalog)
        assert not find(plan, lambda n: isinstance(n, Join))

    def test_join_tree_connected_by_predicates(self, catalog):
        plan = parse_query(
            "SELECT Product.name FROM Product, Division "
            "WHERE Product.Did = Division.Did",
            catalog,
        )
        joins = find(plan, lambda n: isinstance(n, Join))
        assert len(joins) == 1
        assert joins[0].condition is not None

    def test_three_way_join_no_cross_product(self, catalog):
        plan = parse_query(
            "SELECT Part.name FROM Product, Part, Division "
            "WHERE Division.city = 'LA' AND Product.Did = Division.Did "
            "AND Part.Pid = Product.Pid",
            catalog,
        )
        joins = find(plan, lambda n: isinstance(n, Join))
        assert len(joins) == 2
        assert all(j.condition is not None for j in joins)

    def test_unconnected_tables_cross_product(self, catalog):
        plan = parse_query("SELECT Product.name FROM Product, Customer", catalog)
        joins = find(plan, lambda n: isinstance(n, Join))
        assert len(joins) == 1
        assert joins[0].condition is None

    def test_selection_above_joins(self, catalog):
        plan = parse_query(
            "SELECT Product.name FROM Product, Division "
            "WHERE Product.Did = Division.Did AND Division.city = 'LA'",
            catalog,
        )
        # Canonical initial form: Project(Select(Join(...)))
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Select)

    def test_disjunctive_where(self, catalog):
        plan = parse_query(
            "SELECT Pid FROM Order WHERE quantity > 100 OR date > '1996-07-01'",
            catalog,
        )
        select = find(plan, lambda n: isinstance(n, Select))[0]
        assert isinstance(select.predicate, Or)

    def test_leaves_are_qualified(self, catalog):
        plan = parse_query("SELECT name FROM Product", catalog)
        leaf = leaves(plan)[0]
        assert leaf.schema.attribute_names[0].startswith("Product.")


class TestAggregation:
    def test_group_by_plan(self, catalog):
        plan = parse_query(
            "SELECT Division.city, COUNT(*) AS n FROM Division GROUP BY Division.city",
            catalog,
        )
        aggregates = find(plan, lambda n: isinstance(n, Aggregate))
        assert len(aggregates) == 1
        assert plan.schema.attribute_names == ("Division.city", "n")

    def test_non_grouped_column_rejected(self, catalog):
        with pytest.raises(TranslationError):
            parse_query(
                "SELECT Division.name, COUNT(*) FROM Division GROUP BY Division.city",
                catalog,
            )

    def test_global_aggregate(self, catalog):
        plan = parse_query("SELECT COUNT(*) AS n FROM Product", catalog)
        assert plan.schema.attribute_names == ("n",)

    def test_plain_column_alias_rejected(self, catalog):
        with pytest.raises(TranslationError):
            parse_query("SELECT name AS product_name FROM Product", catalog)


class TestPaperQueries:
    def test_all_four_translate(self, workload):
        for spec in workload.queries:
            plan = parse_query(spec.sql, workload.catalog)
            assert plan.schema.arity >= 1

    def test_q3_has_four_relations(self, workload):
        plan = parse_query(workload.query("Q3").sql, workload.catalog)
        assert plan.base_relations() == frozenset(
            {"Product", "Division", "Order", "Customer"}
        )
