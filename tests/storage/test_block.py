"""Unit tests for block I/O accounting."""

import pytest

from repro.storage.block import IOCounter, block_count


class TestIOCounter:
    def test_counts_accumulate(self):
        io = IOCounter()
        io.read_blocks(3)
        io.read_blocks(2)
        io.write_blocks(1)
        assert io.reads == 5 and io.writes == 1

    def test_negative_rejected(self):
        io = IOCounter()
        with pytest.raises(ValueError):
            io.read_blocks(-1)
        with pytest.raises(ValueError):
            io.write_blocks(-1)

    def test_snapshot_is_immutable_copy(self):
        io = IOCounter()
        io.read_blocks(2)
        snap = io.snapshot()
        io.read_blocks(5)
        assert snap.reads == 2
        assert io.reads == 7

    def test_since(self):
        io = IOCounter()
        io.read_blocks(2)
        snap = io.snapshot()
        io.read_blocks(3)
        io.write_blocks(4)
        delta = io.since(snap)
        assert delta.reads == 3 and delta.writes == 4
        assert delta.total == 7

    def test_reset(self):
        io = IOCounter()
        io.read_blocks(9)
        io.reset()
        assert io.reads == 0 and io.writes == 0


class TestBlockCount:
    def test_zero_rows(self):
        assert block_count(0, 10) == 0

    def test_exact_fit(self):
        assert block_count(20, 10) == 2

    def test_partial_block_rounds_up(self):
        assert block_count(21, 10) == 3

    def test_fractional_blocking_factor(self):
        assert block_count(10, 2.5) == 4
