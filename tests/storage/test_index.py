"""Unit tests for hash and sorted indexes."""

import pytest

from repro.catalog.datatypes import DataType
from repro.catalog.schema import Attribute, RelationSchema
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.table import table_from_rows


@pytest.fixture
def table():
    schema = RelationSchema(
        "R",
        [Attribute("id", DataType.INTEGER), Attribute("v", DataType.INTEGER)],
    )
    rows = [{"id": i, "v": i % 5} for i in range(50)]
    return table_from_rows(schema, rows, blocking_factor=10)


class TestHashIndex:
    def test_lookup_matches(self, table):
        index = HashIndex(table, "v")
        matches = index.lookup(3)
        assert len(matches) == 10
        assert all(r["v"] == 3 for r in matches)

    def test_lookup_missing_value(self, table):
        index = HashIndex(table, "v")
        assert index.lookup(99) == []

    def test_lookup_charges_io(self, table):
        index = HashIndex(table, "v")
        table.io.reset()
        index.lookup(3)
        # 1 probe + ceil(10 matches / bf 10) = 2 blocks
        assert table.io.reads == 2

    def test_len(self, table):
        assert len(HashIndex(table, "id")) == 50

    def test_rebuild_after_insert(self, table):
        index = HashIndex(table, "v")
        table.insert({"id": 100, "v": 3})
        index.rebuild()
        assert len(index.lookup(3, count_io=False)) == 11


class TestSortedIndex:
    def test_range_inclusive(self, table):
        index = SortedIndex(table, "id")
        rows = index.range(low=10, high=14)
        assert sorted(r["id"] for r in rows) == [10, 11, 12, 13, 14]

    def test_range_exclusive_bounds(self, table):
        index = SortedIndex(table, "id")
        rows = index.range(low=10, high=14, include_low=False, include_high=False)
        assert sorted(r["id"] for r in rows) == [11, 12, 13]

    def test_unbounded_low(self, table):
        index = SortedIndex(table, "id")
        assert len(index.range(high=4)) == 5

    def test_unbounded_high(self, table):
        index = SortedIndex(table, "id")
        assert len(index.range(low=45)) == 5

    def test_empty_range(self, table):
        index = SortedIndex(table, "id")
        assert index.range(low=30, high=20) == []

    def test_charges_io(self, table):
        index = SortedIndex(table, "id")
        table.io.reset()
        index.range(low=0, high=9)
        assert table.io.reads == 2  # probe + 1 block of matches

    def test_none_values_excluded(self):
        schema = RelationSchema(
            "R", [Attribute("id", DataType.INTEGER)]
        )
        t = table_from_rows(schema, [{"id": None}, {"id": 1}, {"id": 2}])
        index = SortedIndex(t, "id")
        assert len(index) == 2
