"""Unit tests for block-structured heap tables."""

import pytest

from repro.catalog.datatypes import DataType
from repro.catalog.schema import Attribute, RelationSchema
from repro.errors import StorageError
from repro.storage.table import Table, table_from_rows


@pytest.fixture
def schema():
    return RelationSchema(
        "Product",
        [
            Attribute("Pid", DataType.INTEGER),
            Attribute("name", DataType.STRING),
        ],
    )


class TestInsert:
    def test_insert_and_cardinality(self, schema):
        table = Table(schema, blocking_factor=2)
        table.insert({"Pid": 1, "name": "a"})
        assert table.cardinality == 1
        assert table.num_blocks == 1

    def test_blocks_grow_with_blocking_factor(self, schema):
        table = Table(schema, blocking_factor=2)
        for i in range(5):
            table.insert({"Pid": i, "name": str(i)})
        assert table.num_blocks == 3

    def test_missing_attribute_rejected(self, schema):
        table = Table(schema)
        with pytest.raises(StorageError):
            table.insert({"Pid": 1})

    def test_type_validated(self, schema):
        table = Table(schema)
        with pytest.raises(Exception):
            table.insert({"Pid": "not-an-int", "name": "x"})

    def test_qualified_schema_accepts_short_names(self, schema):
        table = Table(schema.qualify())
        table.insert({"Pid": 1, "name": "a"})
        assert table.rows()[0] == {"Product.Pid": 1, "Product.name": "a"}

    def test_insert_many_charges_block_writes(self, schema):
        table = Table(schema, blocking_factor=10)
        added = table.insert_many(
            ({"Pid": i, "name": str(i)} for i in range(25))
        )
        assert added == 25
        assert table.io.writes == 3  # ceil(25/10)

    def test_invalid_blocking_factor(self, schema):
        with pytest.raises(StorageError):
            Table(schema, blocking_factor=0)


class TestScan:
    def test_scan_counts_blocks(self, schema):
        table = table_from_rows(
            schema, [{"Pid": i, "name": str(i)} for i in range(30)], blocking_factor=10
        )
        rows = list(table.scan())
        assert len(rows) == 30
        assert table.io.reads == 3

    def test_scan_without_accounting(self, schema):
        table = table_from_rows(schema, [{"Pid": 1, "name": "a"}])
        list(table.scan(count_io=False))
        assert table.io.reads == 0

    def test_table_from_rows_charges_nothing(self, schema):
        table = table_from_rows(schema, [{"Pid": 1, "name": "a"}] * 100)
        assert table.io.writes == 0


class TestQualified:
    def test_qualified_renames_columns(self, schema):
        table = table_from_rows(schema, [{"Pid": 1, "name": "a"}])
        qualified = table.qualified()
        assert qualified.schema.attribute_names == ("Product.Pid", "Product.name")
        assert qualified.rows()[0]["Product.Pid"] == 1

    def test_qualified_shares_io_counter(self, schema):
        table = table_from_rows(schema, [{"Pid": 1, "name": "a"}])
        qualified = table.qualified()
        list(qualified.scan())
        assert table.io.reads == qualified.io.reads > 0

    def test_clear(self, schema):
        table = table_from_rows(schema, [{"Pid": 1, "name": "a"}])
        table.clear()
        assert table.cardinality == 0 and table.num_blocks == 0
