"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestWorkloadsCommand:
    def test_lists_builtins(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("paper", "paper-fig7", "star", "synthetic"):
            assert name in out


class TestDesignCommand:
    def test_paper_design(self, capsys):
        assert main(["design", "--workload", "paper"]) == 0
        out = capsys.readouterr().out
        assert "materialize:" in out
        assert "total=" in out

    def test_json_output(self, tmp_path, capsys):
        target = tmp_path / "design.json"
        assert main(["design", "--workload", "paper", "--json", str(target)]) == 0
        data = json.loads(target.read_text())
        assert data["materialized_names"]
        assert data["cost"]["total"] > 0

    def test_synthetic_design(self, capsys):
        assert (
            main(
                [
                    "design",
                    "--workload",
                    "synthetic",
                    "--seed",
                    "3",
                    "--relations",
                    "4",
                    "--queries",
                    "3",
                    "--rotations",
                    "1",
                ]
            )
            == 0
        )
        assert "chosen MVPP" in capsys.readouterr().out

    def test_star_design(self, capsys):
        assert main(["design", "--workload", "star", "--queries", "3"]) == 0


class TestCompareCommand:
    def test_table(self, capsys):
        assert main(["compare", "--workload", "paper"]) == 0
        out = capsys.readouterr().out
        assert "all-virtual" in out
        assert "heuristic (Fig.9)" in out
        assert "simulated-annealing" in out

    def test_with_exhaustive(self, capsys):
        assert main(["compare", "--workload", "paper", "--exhaustive"]) == 0
        assert "exhaustive-optimal" in capsys.readouterr().out


class TestTraceCommand:
    def test_trace_output(self, capsys):
        assert main(["trace", "--workload", "paper"]) == 0
        out = capsys.readouterr().out
        assert "materialize" in out
        assert "M = {" in out

    def test_trace_json_format(self, capsys):
        assert main(["trace", "--workload", "paper", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["mvpp"]
        assert document["materialized"]
        assert document["total_cost"] > 0
        decisions = {step["decision"] for step in document["steps"]}
        assert "materialize" in decisions
        assert all(
            {"vertex", "weight", "saving", "decision", "pruned"} == set(step)
            for step in document["steps"]
        )


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"


class TestDotCommand:
    def test_stdout(self, capsys):
        assert main(["dot", "--workload", "paper", "--rotations", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_file_output(self, tmp_path, capsys):
        target = tmp_path / "mvpp.dot"
        assert (
            main(
                [
                    "dot",
                    "--workload",
                    "paper",
                    "--rotations",
                    "1",
                    "--output",
                    str(target),
                ]
            )
            == 0
        )
        assert target.read_text().startswith("digraph")


class TestErrors:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["design", "--workload", "nope"])


class TestReportCommand:
    def test_report_sections(self, capsys):
        assert main(["report", "--workload", "paper", "--rotations", "1"]) == 0
        out = capsys.readouterr().out
        assert "Chosen views" in out
        assert "Drop-one sensitivity" in out


class TestErrorExit:
    def test_repro_error_exits_nonzero(self, capsys):
        # compare --exhaustive on a large synthetic MVPP exceeds the 2^n
        # cap and must exit 1 with a message on stderr.
        code = main(
            [
                "compare",
                "--workload",
                "synthetic",
                "--relations",
                "10",
                "--queries",
                "12",
                "--exhaustive",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestRefreshCommand:
    def test_clean_refresh_exits_zero(self, capsys):
        assert main(["refresh", "--workload", "paper", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "resilient refresh" in out
        assert "refreshed" in out
        assert "stale views remaining: 0" in out

    def test_refresh_with_faults_reports_injections(self, capsys):
        assert (
            main(
                [
                    "refresh",
                    "--workload",
                    "paper",
                    "--scale",
                    "0.02",
                    "--failure-rate",
                    "0.3",
                    "--seed",
                    "7",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "failure rate 0.3" in out
        assert "faults injected:" in out


class TestSimulateCommand:
    def test_fault_simulation_converges(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--faults",
                    "--workload",
                    "paper",
                    "--scale",
                    "0.02",
                    "--seed",
                    "7",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "converged: True" in out
        assert "0 consistency violations" in out

    def test_json_format_is_machine_readable(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--faults",
                    "--workload",
                    "paper",
                    "--scale",
                    "0.02",
                    "--rounds",
                    "2",
                    "--seed",
                    "7",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["converged"] is True
        assert document["queries"]["consistency_violations"] == 0
        assert document["refreshes"]["succeeded"] >= 2

    def test_without_faults_flag_runs_failure_free(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--workload",
                    "paper",
                    "--scale",
                    "0.02",
                    "--rounds",
                    "1",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["faults_injected"].get("storage_faults", 0) == 0
        assert document["refreshes"]["retries"] == 0

    def test_bad_rounds_rejected(self, capsys):
        assert main(["simulate", "--faults", "--rounds", "0"]) == 1
        assert "error:" in capsys.readouterr().err


class TestSimulateDrift:
    def test_drift_replay_beats_baselines(self, capsys):
        assert main(["simulate", "--drift", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        for name in ("static", "adaptive", "eager"):
            assert name in out
        assert "accepted" in out

    def test_stationary_control_exits_zero(self, capsys):
        assert main(["simulate", "--drift", "--stationary", "--seed", "1"]) == 0
        assert "stationary control" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert (
            main(
                [
                    "simulate", "--drift", "--seed", "7",
                    "--windows-per-phase", "2", "--format", "json",
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["windows"] == 6
        assert set(document["variants"]) == {"static", "adaptive", "eager"}

    def test_bad_windows_rejected(self, capsys):
        assert main(["simulate", "--drift", "--windows-per-phase", "0"]) == 1
        assert "error:" in capsys.readouterr().err


class TestAdaptCommand:
    def test_inverting_hot_set_adapts(self, capsys):
        assert main(["adapt", "--windows", "8"]) == 0
        out = capsys.readouterr().out
        assert "hot set inverts" in out
        assert "accepted" in out
        assert "serving views:" in out

    def test_stationary_accepts_nothing(self, capsys):
        assert main(["adapt", "--windows", "6", "--stationary"]) == 0
        out = capsys.readouterr().out
        assert "accepted redesigns: 0" in out

    def test_json_format(self, capsys):
        assert (
            main(["adapt", "--windows", "6", "--format", "json"]) == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert len(document["decisions"]) == 6
        assert document["accepted"] >= 1
        assert document["final_views"]

    def test_too_few_windows_rejected(self, capsys):
        assert main(["adapt", "--windows", "1"]) == 1
        assert "--windows" in capsys.readouterr().err


class TestTraceEventsFlag:
    def test_jsonl_on_stdout(self, capsys):
        assert main(["trace", "--workload", "paper", "--events"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        for event in events:
            assert {"seq", "kind", "correlation_id", "tick", "attributes"} <= (
                set(event)
            )
        # one refresh story is threaded through a single correlation id
        refresh_ids = {
            e["correlation_id"]
            for e in events
            if e["kind"].startswith("resilience.refresh.")
        }
        assert refresh_ids
        assert all(cid.startswith("refresh-") for cid in refresh_ids)
        kinds = {e["kind"] for e in events}
        assert "resilience.refresh.begin" in kinds
        assert "resilience.epoch.advance" in kinds
        assert "adaptive.decision" in kinds

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "trace", "--workload", "paper", "--events",
                    "--output", str(target),
                ]
            )
            == 0
        )
        assert "event(s)" in capsys.readouterr().out
        lines = target.read_text().strip().splitlines()
        assert all(json.loads(line)["seq"] >= 1 for line in lines)


class TestCalibrateCommand:
    def test_text_report(self, capsys):
        assert main(["calibrate", "--workload", "paper"]) == 0
        out = capsys.readouterr().out
        assert "cost-model calibration on paper" in out
        assert "mean relative error" in out
        assert "worst calibrated:" in out

    def test_json_report(self, capsys):
        assert (
            main(["calibrate", "--workload", "paper", "--format", "json"])
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["workload"] == "paper-example"
        assert document["samples"] > 0
        phases = {entry["phase"] for entry in document["entries"]}
        assert phases == {"access", "maintenance"}
        errors = [e["mean_relative_error"] for e in document["entries"]]
        assert errors == sorted(errors, reverse=True)

    def test_bad_scale_rejected(self, capsys):
        assert main(["calibrate", "--workload", "paper", "--scale", "0"]) == 1
        assert "--scale" in capsys.readouterr().err


class TestBenchCommand:
    def _run(self, tmp_path, extra=()):
        target = tmp_path / "BENCH_macro.json"
        argv = [
            "bench", "--suite", "macro", "--smoke",
            "--repeats", "1", "--windows", "2", "--output", str(target),
        ]
        return main(argv + list(extra)), target

    def test_smoke_run_writes_valid_document(self, tmp_path, capsys):
        code, target = self._run(tmp_path)
        assert code == 0
        out = capsys.readouterr().out
        assert "macro bench on paper-example (smoke" in out
        assert "calibration:" in out
        document = json.loads(target.read_text())
        assert document["schema"] == 1
        assert document["smoke"] is True
        assert set(document["phases"]) == {
            "design", "load", "queries", "refresh", "drift",
        }

    def test_second_run_gates_against_committed_baseline(
        self, tmp_path, capsys
    ):
        assert self._run(tmp_path)[0] == 0
        capsys.readouterr()
        code, _ = self._run(tmp_path)
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        code, target = self._run(tmp_path)
        assert code == 0
        document = json.loads(target.read_text())
        document["phases"]["queries"]["io_blocks"] /= 10.0
        target.write_text(json.dumps(document))
        capsys.readouterr()
        code, _ = self._run(tmp_path)
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_explicit_baseline_flag(self, tmp_path, capsys):
        code, target = self._run(tmp_path)
        assert code == 0
        baseline = tmp_path / "baseline.json"
        baseline.write_text(target.read_text())
        capsys.readouterr()
        code, _ = self._run(tmp_path, ["--baseline", str(baseline)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_bad_knobs_rejected(self, capsys):
        assert main(["bench", "--suite", "macro", "--windows", "1"]) == 1
        assert "windows" in capsys.readouterr().err


class TestShardingSimulation:
    def test_sharded_lifecycle_passes(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--shards", "4",
                    "--workload", "paper",
                    "--scale", "0.02",
                    "--seed", "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "rows identical: True" in out
        assert "affected shards only=True" in out

    def test_json_format_reports_contracts(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--shards", "4",
                    "--workload", "paper",
                    "--scale", "0.02",
                    "--format", "json",
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["rows_identical"] is True
        assert document["pruning_wins"] is True
        assert document["refresh"]["identical_across_workers"] is True
        assert document["selective_queries"] >= 2

    def test_bad_shard_count_rejected(self, capsys):
        assert main(["simulate", "--shards", "-2"]) == 1
        assert "--shards" in capsys.readouterr().err


class TestDesignSharding:
    def test_design_reports_partition_aware_cost(self, capsys):
        assert (
            main(["design", "--workload", "paper", "--shards", "8"]) == 0
        )
        out = capsys.readouterr().out
        assert "8-way partitions" in out
        assert "partition-aware=" in out

    def test_json_includes_shard_catalog(self, tmp_path, capsys):
        target = tmp_path / "design.json"
        assert (
            main(
                [
                    "design",
                    "--workload", "paper",
                    "--shards", "4",
                    "--replicas", "2",
                    "--json", str(target),
                ]
            )
            == 0
        )
        document = json.loads(target.read_text())
        sharding = document["sharding"]
        assert sharding["shards"] == 4
        assert sharding["replicas"] == 2
        assert set(sharding["catalog"]) == {
            s["relation"] for s in sharding["schemes"]
        }
        assert (
            sharding["cost"]["partition_aware"]
            <= sharding["cost"]["whole_object"]
        )


class TestStreamCommand:
    def test_fault_free_run_converges(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--workload", "paper",
                    "--scale", "0.02",
                    "--rounds", "2",
                    "--seed", "7",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "converged: True" in out
        assert "0 violations" in out
        assert "0 partial writes" in out

    def test_faulted_json_is_machine_readable(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--faults",
                    "--failure-rate", "0.3",
                    "--workload", "paper",
                    "--scale", "0.02",
                    "--rounds", "2",
                    "--seed", "7",
                    "--format", "json",
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["converged"] is True
        assert document["consistency_violations"] == 0
        assert document["partial_writes"] == 0
        assert sum(document["faults_injected"].values()) > 0

    def test_policy_overrides_accepted(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--workload", "paper",
                    "--scale", "0.02",
                    "--rounds", "1",
                    "--seed", "7",
                    "--max-lag", "4",
                    "--coalesce", "8",
                    "--retention", "64",
                    "--format", "json",
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["drains"]["total"] >= 1

    def test_bad_rounds_rejected(self, capsys):
        assert main(["stream", "--rounds", "0"]) == 1
        assert "--rounds" in capsys.readouterr().err
