"""Unit tests for the exception hierarchy and top-level API surface."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_catalog_family(self):
        assert issubclass(errors.UnknownRelationError, errors.CatalogError)
        assert issubclass(errors.UnknownAttributeError, errors.CatalogError)
        assert issubclass(errors.DuplicateRelationError, errors.CatalogError)

    def test_sql_family(self):
        assert issubclass(errors.LexerError, errors.SQLError)
        assert issubclass(errors.ParseError, errors.SQLError)
        assert issubclass(errors.TranslationError, errors.SQLError)

    def test_mvpp_family(self):
        assert issubclass(errors.CycleError, errors.MVPPError)

    def test_messages_carry_context(self):
        error = errors.UnknownRelationError("Orders")
        assert "Orders" in str(error)
        assert error.name == "Orders"
        attribute_error = errors.UnknownAttributeError("city", "Division")
        assert "city" in str(attribute_error)
        assert "Division" in str(attribute_error)
        lexer_error = errors.LexerError("bad char", 17)
        assert lexer_error.position == 17
        assert "17" in str(lexer_error)

    def test_one_catch_all(self):
        """A caller can guard any repro API with one except clause."""
        from repro.catalog import Catalog

        with pytest.raises(errors.ReproError):
            Catalog().schema("nope")


class TestTopLevelAPI:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_headline_exports(self):
        import repro

        for name in (
            "DataWarehouse",
            "MVPP",
            "MVPPCostCalculator",
            "design",
            "generate_mvpps",
            "paper_workload",
            "select_views",
        ):
            assert hasattr(repro, name), name

    def test_all_list_is_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_lists_are_importable(self):
        import importlib

        for module_name in (
            "repro.algebra",
            "repro.analysis",
            "repro.catalog",
            "repro.distributed",
            "repro.executor",
            "repro.mvpp",
            "repro.sql",
            "repro.storage",
            "repro.warehouse",
            "repro.workload",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), f"{module_name}.{name}"
