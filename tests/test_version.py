"""The package version must be declared once and agree everywhere."""

import re
from pathlib import Path

import repro

PYPROJECT = Path(__file__).resolve().parent.parent / "pyproject.toml"


def test_version_is_pep440ish():
    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)


def test_version_matches_pyproject():
    match = re.search(
        r'^version\s*=\s*"([^"]+)"', PYPROJECT.read_text(), re.MULTILINE
    )
    assert match, "pyproject.toml has no version field"
    assert match.group(1) == repro.__version__


def test_version_exported():
    assert "__version__" in repro.__all__
