"""Unit tests for design migration as workloads drift."""

import pytest

from repro.warehouse import DataWarehouse
from repro.warehouse.evolution import plan_migration
from repro.warehouse.view import MaterializedView
from repro.workload import paper_rows, paper_workload


@pytest.fixture()
def loaded():
    wh = DataWarehouse.from_workload(paper_workload())
    wh.design()
    for relation, rows in paper_rows(scale=0.01, seed=17).items():
        wh.load(relation, rows)
    wh.materialize()
    return wh


class TestPlanMigration:
    def test_identical_sets_are_noop(self, loaded):
        migration = plan_migration(loaded.views, loaded.views)
        assert migration.is_noop
        assert len(migration.keep) == len(loaded.views)

    def test_signature_match_keeps_installed_identity(self, loaded):
        renamed = [
            MaterializedView(name=f"other_{i}", plan=v.plan)
            for i, v in enumerate(loaded.views)
        ]
        migration = plan_migration(loaded.views, renamed)
        assert migration.is_noop  # same plans -> nothing to create/drop
        assert {v.name for v in migration.keep} == {
            v.name for v in loaded.views
        }

    def test_disjoint_sets_create_and_drop(self, loaded, workload):
        from repro.algebra.operators import Relation

        new = [
            MaterializedView(
                name="mv_part",
                plan=Relation("Part", workload.catalog.schema("Part").qualify()),
            )
        ]
        migration = plan_migration(loaded.views, new)
        assert len(migration.drop) == len(loaded.views)
        assert [v.name for v in migration.create] == ["mv_part"]

    def test_describe_lists_sections(self, loaded):
        migration = plan_migration(loaded.views, [])
        text = migration.describe()
        assert "drop:" in text and "keep: (none)" in text


class TestRedesign:
    def test_same_workload_redesign_is_noop(self, loaded):
        before_tables = set(loaded.database.table_names)
        migration = loaded.redesign()
        assert migration.is_noop
        assert set(loaded.database.table_names) == before_tables
        assert loaded.stale_views() == []  # kept views stay fresh

    def test_drift_creates_and_drops(self, loaded):
        """Flip the workload so only Q1 matters: the Order⋈Customer view
        must be dropped and Q1's lineage kept or created."""
        # Crank Q1, silence everything else.
        loaded._queries = [
            type(q)(q.name, q.sql, 50.0 if q.name == "Q1" else 0.0)
            for q in loaded._queries
        ]
        loaded._design = None
        migration = loaded.redesign()
        assert not migration.is_noop
        assert migration.drop  # the Q4-serving view goes away
        for view in loaded.views:
            assert view.base_relations <= {"Product", "Division"}
        # Dropped tables are gone from the database.
        for view in migration.drop:
            assert view.name not in loaded.database

    def test_created_views_are_materialized(self, loaded):
        loaded._queries = [
            type(q)(q.name, q.sql, 50.0 if q.name == "Q1" else 0.0)
            for q in loaded._queries
        ]
        loaded._design = None
        migration = loaded.redesign()
        for view in loaded.views:
            assert view.name in loaded.database
        # Queries still answer correctly after the migration.
        with_views, _ = loaded.execute("Q1", use_views=True)
        without, _ = loaded.execute("Q1", use_views=False)
        key = lambda t: sorted(  # noqa: E731
            tuple(sorted(r.items())) for r in t.rows()
        )
        assert key(with_views) == key(without)

    def test_design_clears_freshness(self, loaded):
        assert loaded.stale_views() == []
        loaded.design()  # plain design (not redesign) invalidates
        assert loaded.stale_views()  # everything needs re-materializing
