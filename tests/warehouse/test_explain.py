"""Unit tests for the EXPLAIN facility."""

import pytest

from repro.errors import WarehouseError
from repro.warehouse import DataWarehouse
from repro.workload import paper_workload


@pytest.fixture()
def warehouse():
    wh = DataWarehouse.from_workload(paper_workload())
    wh.design()
    return wh


class TestExplain:
    def test_shows_sql_and_cost(self, warehouse):
        text = warehouse.explain("Q1")
        assert "EXPLAIN Q1" in text
        assert "SELECT" in text
        assert "estimated cost:" in text

    def test_lists_views_used(self, warehouse):
        text = warehouse.explain("Q1", use_views=True)
        assert "materialized views used: mv_" in text

    def test_without_views(self, warehouse):
        text = warehouse.explain("Q1", use_views=False)
        assert "materialized views used: (none)" in text

    def test_rewritten_plan_references_views(self, warehouse):
        text = warehouse.explain("Q4", use_views=True)
        assert "mv_" in text

    def test_view_cost_lower_than_base_cost(self, warehouse):
        def cost(text):
            line = [l for l in text.splitlines() if "estimated cost" in l][0]
            return float(line.split(":")[1].split()[0].replace(",", ""))

        with_views = cost(warehouse.explain("Q4", use_views=True))
        without = cost(warehouse.explain("Q4", use_views=False))
        assert with_views <= without

    def test_unknown_query_rejected(self, warehouse):
        with pytest.raises(WarehouseError):
            warehouse.explain("Q99")

    def test_explain_before_design(self):
        wh = DataWarehouse.from_workload(paper_workload())
        text = wh.explain("Q1")
        assert "estimated cost:" in text
        assert "materialized views used: (none)" in text


class TestProfile:
    @pytest.fixture()
    def loaded(self, warehouse):
        from repro.workload import paper_rows

        for relation, rows in paper_rows(scale=0.02, seed=9).items():
            warehouse.load(relation, rows)
        warehouse.materialize()
        return warehouse

    def test_profile_fields(self, loaded):
        profile = loaded.profile("Q4")
        assert profile.query == "Q4"
        assert profile.measured_io >= 0
        assert profile.measured_rows >= 0
        assert profile.estimated_cost is not None

    def test_profile_after_sync_tracks_measurement(self, loaded):
        """With statistics synced to the loaded data, the estimate for a
        base-data execution lands within an order of magnitude."""
        loaded.sync_statistics()
        profile = loaded.profile("Q4", use_views=False)
        assert profile.cost_error is not None
        assert 0.1 <= profile.cost_error <= 10.0

    def test_profile_unknown_query(self, loaded):
        from repro.errors import WarehouseError

        with pytest.raises(WarehouseError):
            loaded.profile("Q99")
