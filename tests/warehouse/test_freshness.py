"""Unit tests for view freshness tracking and query-time policies."""

import datetime

import pytest

from repro.errors import WarehouseError
from repro.warehouse import DataWarehouse
from repro.workload import paper_rows, paper_workload

NEW_ORDER = {
    "Pid": 1,
    "Cid": 2,
    "quantity": 199,
    "date": datetime.date(1996, 10, 1),
}


@pytest.fixture()
def warehouse():
    wh = DataWarehouse.from_workload(paper_workload())
    wh.design()
    for relation, rows in paper_rows(scale=0.02, seed=23).items():
        wh.load(relation, rows)
    wh.materialize()
    return wh


class TestFreshnessTracking:
    def test_fresh_after_materialize(self, warehouse):
        assert warehouse.stale_views() == []

    def test_stale_after_deferred_update(self, warehouse):
        warehouse.apply_update("Order", [NEW_ORDER], policy="defer")
        stale = warehouse.stale_views()
        assert stale
        assert all(v.depends_on("Order") for v in stale)

    def test_unrelated_views_stay_fresh(self, warehouse):
        warehouse.apply_update("Part", [
            {"Tid": 10**6, "name": "P", "Pid": 0, "supplier": "S"}
        ], policy="defer")
        # Views over Order/Customer/Product/Division are unaffected.
        assert all(v.depends_on("Part") for v in warehouse.stale_views())

    def test_refresh_clears_staleness(self, warehouse):
        warehouse.apply_update("Order", [NEW_ORDER], policy="defer")
        warehouse.refresh()
        assert warehouse.stale_views() == []

    def test_maintaining_update_keeps_fresh(self, warehouse):
        warehouse.apply_update("Order", [NEW_ORDER])  # recompute policy
        assert warehouse.stale_views() == []


class TestQueryTimePolicies:
    def test_any_serves_stale_results(self, warehouse):
        before, _ = warehouse.execute("Q4")
        warehouse.apply_update("Order", [NEW_ORDER], policy="defer")
        stale, _ = warehouse.execute("Q4", freshness="any")
        assert stale.cardinality == before.cardinality  # misses the insert

    def test_fresh_falls_back_to_base_data(self, warehouse):
        before, _ = warehouse.execute("Q4")
        warehouse.apply_update("Order", [NEW_ORDER], policy="defer")
        fresh, _ = warehouse.execute("Q4", freshness="fresh")
        assert fresh.cardinality == before.cardinality + 1

    def test_refresh_policy_updates_then_serves(self, warehouse):
        before, _ = warehouse.execute("Q4")
        warehouse.apply_update("Order", [NEW_ORDER], policy="defer")
        refreshed, _ = warehouse.execute("Q4", freshness="refresh")
        assert refreshed.cardinality == before.cardinality + 1
        assert warehouse.stale_views() == []

    def test_refresh_is_sticky(self, warehouse):
        warehouse.apply_update("Order", [NEW_ORDER], policy="defer")
        warehouse.execute("Q4", freshness="refresh")
        # Subsequent 'any' queries see the refreshed view.
        result, _ = warehouse.execute("Q4", freshness="any")
        plain, _ = warehouse.execute("Q4", use_views=False)
        assert result.cardinality == plain.cardinality

    def test_unknown_policy_rejected(self, warehouse):
        with pytest.raises(WarehouseError):
            warehouse.execute("Q4", freshness="eventually")

    def test_unknown_update_policy_rejected(self, warehouse):
        with pytest.raises(WarehouseError):
            warehouse.apply_update("Order", [NEW_ORDER], policy="yolo")
