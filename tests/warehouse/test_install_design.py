"""Tests for the staged view-set migration behind redesign()/adapt()."""

import pytest

from repro.errors import WarehouseError
from repro.mvpp import DesignConfig, design as run_design
from repro.resilience import FaultPolicy, ResilienceConfig, RetryPolicy
from repro.warehouse import DataWarehouse
from repro.workload import paper_rows, paper_workload


def make_warehouse(load=True, materialize=True):
    warehouse = DataWarehouse.from_workload(paper_workload())
    warehouse.design(DesignConfig(seed=0))
    if load:
        for relation, rows in paper_rows(scale=0.01, seed=17).items():
            warehouse.load(relation, rows)
        if materialize:
            warehouse.materialize()
    return warehouse


def favor_q1(warehouse):
    """Re-rank the workload so only Q1 matters (forces a migration)."""
    for spec in warehouse.workload.queries:
        warehouse.set_query_frequency(
            spec.name, 50.0 if spec.name == "Q1" else 0.0
        )


def rows_equal(a, b):
    key = lambda t: sorted(  # noqa: E731
        tuple(sorted(r.items())) for r in t.rows()
    )
    return key(a) == key(b)


class TestInstallDesign:
    def test_reinstalling_current_design_is_noop(self):
        warehouse = make_warehouse()
        before = set(warehouse.database.table_names)
        migration = warehouse.install_design(warehouse.design_result)
        assert migration.is_noop
        assert set(warehouse.database.table_names) == before
        assert warehouse.stale_views() == []

    def test_swap_builds_creates_and_drops_obsolete(self):
        warehouse = make_warehouse()
        favor_q1(warehouse)
        result = run_design(warehouse.workload, DesignConfig(seed=0))
        migration = warehouse.install_design(result)
        assert not migration.is_noop
        assert migration.cost is not None
        for view in warehouse.views:
            assert view.name in warehouse.database
        for view in migration.drop:
            assert view.name not in warehouse.database
        with_views, _ = warehouse.execute("Q1", use_views=True)
        without, _ = warehouse.execute("Q1", use_views=False)
        assert rows_equal(with_views, without)

    def test_new_view_statistics_registered(self):
        warehouse = make_warehouse()
        favor_q1(warehouse)
        result = run_design(warehouse.workload, DesignConfig(seed=0))
        warehouse.install_design(result)
        for vertex in result.materialized:
            stats = warehouse.statistics.relation(f"mv_{vertex.name}")
            assert stats.cardinality == vertex.stats.cardinality

    def test_unloaded_warehouse_installs_unmaterialized(self):
        warehouse = make_warehouse(load=False)
        favor_q1(warehouse)
        result = run_design(warehouse.workload, DesignConfig(seed=0))
        warehouse.install_design(result)
        assert warehouse.views
        for view in warehouse.views:
            assert view.name not in warehouse.database
        # The usual load + materialize path completes the installation.
        for relation, rows in paper_rows(scale=0.01, seed=17).items():
            warehouse.load(relation, rows)
        warehouse.materialize()
        for view in warehouse.views:
            assert view.name in warehouse.database


class TestRedesignMaterializes:
    def test_creates_built_even_without_prior_view_tables(self):
        """Regression: redesign() must materialize new views whenever the
        base data is loaded — even if no view table existed before (the
        old ``had_tables`` guard skipped the build in that case)."""
        warehouse = make_warehouse(load=True, materialize=False)
        assert all(v.name not in warehouse.database for v in warehouse.views)
        favor_q1(warehouse)
        migration = warehouse.redesign()
        assert migration.create
        for view in migration.create:
            assert view.name in warehouse.database
        assert not warehouse.stale_views()


class TestResilientMigration:
    def test_failed_build_rolls_back_and_old_design_serves(self):
        warehouse = make_warehouse()
        before_views = tuple(v.name for v in warehouse.views)
        before_tables = set(warehouse.database.table_names)
        favor_q1(warehouse)
        result = run_design(warehouse.workload, DesignConfig(seed=0))
        injector = warehouse.attach_faults(
            FaultPolicy(storage_failure_rate=1.0, seed=0)
        )
        scheduler = warehouse.scheduler(
            ResilienceConfig(retry=RetryPolicy(max_attempts=2), seed=0),
            injector=injector,
        )
        with pytest.raises(WarehouseError, match="migration aborted"):
            warehouse.install_design(result, scheduler=scheduler)
        assert tuple(v.name for v in warehouse.views) == before_views
        assert set(warehouse.database.table_names) == before_tables
        warehouse.detach_faults()
        answered, _ = warehouse.execute("Q4", use_views=True)
        assert answered.rows()

    def test_scheduler_build_succeeds_without_faults(self):
        warehouse = make_warehouse()
        favor_q1(warehouse)
        result = run_design(warehouse.workload, DesignConfig(seed=0))
        migration = warehouse.install_design(
            result, scheduler=warehouse.scheduler()
        )
        assert migration.create
        for view in warehouse.views:
            assert view.name in warehouse.database
        assert not warehouse.stale_views()
