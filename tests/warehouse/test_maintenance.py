"""Unit tests for recompute and incremental view maintenance."""

import pytest

from repro.errors import WarehouseError
from repro.executor.engine import load_database
from repro.sql.translator import parse_query
from repro.optimizer.heuristics import optimize_query
from repro.warehouse.maintenance import INCREMENTAL, RECOMPUTE, ViewMaintainer
from repro.warehouse.view import MaterializedView
from repro.workload.datagen import paper_rows


@pytest.fixture()
def database(workload):
    return load_database(paper_rows(scale=0.02, seed=5), workload.catalog)


@pytest.fixture()
def view(workload, estimator):
    plan = optimize_query(
        parse_query(
            "SELECT Customer.city, date FROM Order, Customer "
            "WHERE Order.Cid = Customer.Cid",
            workload.catalog,
        ),
        estimator,
    )
    return MaterializedView(name="mv_oc", plan=plan)


def brute_force_rows(database, view):
    from repro.executor.engine import ExecutionEngine

    return sorted(
        tuple(sorted(r.items()))
        for r in ExecutionEngine(database).execute(view.plan).rows()
    )


class TestMaterialize:
    def test_contents_match_plan(self, database, view):
        maintainer = ViewMaintainer(database)
        report = maintainer.materialize(view)
        assert report.policy == RECOMPUTE
        stored = database.table("mv_oc")
        assert stored.cardinality == report.rows_after
        assert sorted(
            tuple(sorted(r.items())) for r in stored.rows()
        ) == brute_force_rows(database, view)

    def test_io_charged_including_write(self, database, view):
        maintainer = ViewMaintainer(database)
        report = maintainer.materialize(view)
        assert report.io.reads > 0
        assert report.io.writes >= database.table("mv_oc").num_blocks


class TestIncremental:
    def test_delta_insert_matches_recompute(self, database, view):
        import datetime

        maintainer = ViewMaintainer(database)
        maintainer.materialize(view)

        delta = [
            {"Pid": 1, "Cid": 5, "quantity": 42, "date": datetime.date(1996, 9, 9)},
            {"Pid": 2, "Cid": 6, "quantity": 7, "date": datetime.date(1996, 3, 3)},
        ]
        database.table("Order").insert_many(delta)
        report = maintainer.incremental_refresh(view, "Order", delta)
        assert report.policy == INCREMENTAL

        incremental_rows = sorted(
            tuple(sorted(r.items())) for r in database.table("mv_oc").rows()
        )
        assert incremental_rows == brute_force_rows(database, view)

    def test_incremental_cheaper_than_recompute(self, database, view):
        import datetime

        maintainer = ViewMaintainer(database)
        maintainer.materialize(view)
        delta = [
            {"Pid": 3, "Cid": 1, "quantity": 9, "date": datetime.date(1996, 5, 5)}
        ]
        database.table("Order").insert_many(delta)
        incremental = maintainer.incremental_refresh(view, "Order", delta)
        recompute = maintainer.materialize(view)
        assert incremental.io.total < recompute.io.total

    def test_unrelated_relation_is_noop(self, database, view):
        maintainer = ViewMaintainer(database)
        maintainer.materialize(view)
        report = maintainer.incremental_refresh(view, "Part", [])
        assert report.io.total == 0

    def test_requires_materialization_first(self, database, view):
        maintainer = ViewMaintainer(database)
        with pytest.raises(WarehouseError):
            maintainer.incremental_refresh(view, "Order", [])

    def test_self_join_views_fall_back_to_recompute(self, database, workload):
        """Regression: the overlay substitutes the delta for *every*
        occurrence of the updated relation, so a self-join view would be
        maintained as ``δR ⋈ δR`` instead of ``δR ⋈ R ∪ R_old ⋈ δR`` —
        silently dropping almost all new rows.  Multiple references must
        fall back to recomputation."""
        import datetime

        from repro.algebra.operators import Join, Project, Relation

        schema = workload.catalog.schema("Order").qualify()
        order = Relation("Order", schema)
        plan = Join(
            Project(order, ["Order.Pid"]),
            Project(order, ["Order.Cid"]),
            None,
        )
        view = MaterializedView(name="mv_self", plan=plan)
        maintainer = ViewMaintainer(database)
        maintainer.materialize(view)

        delta = [
            {"Pid": 4, "Cid": 2, "quantity": 3, "date": datetime.date(1996, 1, 1)}
        ]
        database.table("Order").insert_many(delta)
        report = maintainer.incremental_refresh(view, "Order", delta)

        assert report.policy == RECOMPUTE  # fell back — delta rule is unsound
        stored = sorted(
            tuple(sorted(r.items())) for r in database.table("mv_self").rows()
        )
        assert stored == brute_force_rows(database, view)

    def test_distinct_projection_does_not_accrue_duplicates(
        self, database, workload, estimator
    ):
        """A duplicate-eliminating projection view must stay a set: a
        delta row projecting onto an already-stored tuple is dropped."""
        plan = optimize_query(
            parse_query(
                "SELECT DISTINCT Customer.city FROM Customer",
                workload.catalog,
            ),
            estimator,
        )
        view = MaterializedView(name="mv_cities", plan=plan)
        maintainer = ViewMaintainer(database)
        maintainer.materialize(view)
        cities_before = {r["Customer.city"] for r in database.table("mv_cities").rows()}
        existing_city = sorted(cities_before)[0]

        delta = [
            {"Cid": 20_001, "name": "A", "city": existing_city},
            {"Cid": 20_002, "name": "B", "city": "Neverwhere"},
        ]
        database.table("Customer").insert_many(delta)
        report = maintainer.incremental_refresh(view, "Customer", delta)

        assert report.policy == INCREMENTAL
        stored = [r["Customer.city"] for r in database.table("mv_cities").rows()]
        assert len(stored) == len(set(stored)), "duplicates accrued"
        assert set(stored) == cities_before | {"Neverwhere"}
        assert sorted(
            tuple(sorted(r.items())) for r in database.table("mv_cities").rows()
        ) == brute_force_rows(database, view)

    def test_incremental_refresh_swaps_atomically(self, database, view):
        """The delta is applied to a shadow copy that replaces the stored
        table only once complete — a reader holding the old table never
        observes rows appearing mid-refresh."""
        import datetime

        maintainer = ViewMaintainer(database)
        maintainer.materialize(view)
        old_table = database.table("mv_oc")
        rows_before = list(old_table.rows())

        delta = [
            {"Pid": 1, "Cid": 2, "quantity": 5, "date": datetime.date(1996, 7, 7)}
        ]
        database.table("Order").insert_many(delta)
        maintainer.incremental_refresh(view, "Order", delta)

        new_table = database.table("mv_oc")
        assert new_table is not old_table
        assert old_table.rows() == rows_before  # old snapshot untouched
        assert new_table.cardinality > old_table.cardinality

    def test_aggregate_views_fall_back_to_recompute(self, database, workload, estimator):
        plan = optimize_query(
            parse_query(
                "SELECT Customer.city, COUNT(*) AS n FROM Customer GROUP BY Customer.city",
                workload.catalog,
            ),
            estimator,
        )
        view = MaterializedView(name="mv_agg", plan=plan)
        maintainer = ViewMaintainer(database)
        maintainer.materialize(view)
        delta = [{"Cid": 10_001, "name": "X", "city": "LA"}]
        database.table("Customer").insert_many(delta)
        report = maintainer.incremental_refresh(view, "Customer", delta)
        assert report.policy == RECOMPUTE  # fell back
        stored = {
            (r["Customer.city"], r["n"]) for r in database.table("mv_agg").rows()
        }
        recomputed = brute_force_rows(database, view)
        assert stored == {
            (dict(r)["Customer.city"], dict(r)["n"]) for r in recomputed
        }
