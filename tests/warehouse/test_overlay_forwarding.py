"""`_OverlayDatabase` forwarding contracts.

The overlay substitutes selected tables and reads everything else
through the real database — sharing its I/O counter and, critically,
its fault injector, so a delta or shard-union evaluation fails (and is
accounted) exactly like a direct one.  The composition test drives one
sharded refresh with overlay + :class:`ShardUnionTable` + an attached
injector all active at once."""

import datetime

import pytest

from repro.errors import StorageFault
from repro.resilience.faults import (
    FaultPolicy,
    FaultyTable,
    SCOPE_ALL,
)
from repro.storage.table import Table
from repro.warehouse.maintenance import OverlayDatabase
from repro.warehouse.sharding import ShardUnionTable

from tests.warehouse.test_sharding import build_sharded, canonical


def _plain_warehouse():
    warehouse, _, rows = build_sharded(materialize=False)
    return warehouse, rows


class TestOverlayUnit:
    def test_override_wins_and_rest_reads_through(self):
        warehouse, _ = _plain_warehouse()
        database = warehouse.database
        base = database.table("Order")
        substitute = Table(base.schema, base.blocking_factor)
        overlay = OverlayDatabase(database, {"Order": substitute})
        assert overlay.table("Order") is substitute
        assert overlay.table("Customer").rows() == (
            database.table("Customer").rows()
        )
        assert "Order" in overlay and "Customer" in overlay
        assert "NoSuch" not in overlay

    def test_io_counter_is_shared(self):
        warehouse, _ = _plain_warehouse()
        database = warehouse.database
        overlay = OverlayDatabase(database, {})
        assert overlay.io is database.io
        before = database.io.snapshot()
        list(overlay.table("Customer").scan())
        assert database.io.since(before).reads > 0

    def test_fault_injector_forwarded_to_read_through(self):
        warehouse, _ = _plain_warehouse()
        warehouse.attach_faults(
            FaultPolicy(storage_failure_rate=1.0, scope=SCOPE_ALL, seed=0)
        )
        database = warehouse.database
        base_schema = database._tables["Order"].schema
        substitute = Table(base_schema, 10)
        overlay = OverlayDatabase(database, {"Order": substitute})
        # Read-through tables arrive wrapped; overrides stay raw (a
        # delta table is transient scratch space, not stored state).
        assert isinstance(overlay.table("Customer"), FaultyTable)
        assert overlay.table("Order") is substitute
        with pytest.raises(StorageFault):
            overlay.table("Customer").rows()


class TestShardedRefreshComposition:
    DELTA = [
        {
            "Pid": 0,
            "Cid": 0,
            "quantity": 7,
            "date": datetime.date(1996, 5, 5),
        }
    ]

    def test_one_refresh_composes_overlay_union_and_injector(self):
        """apply_update → serve(refresh) on a sharded warehouse with an
        injector attached: the shard rebuild evaluates through an
        overlay whose overrides are ShardUnionTables, and every
        read-through consults the injector (counted via delay draws)."""
        warehouse, _, _ = build_sharded()
        warehouse.refresh_partitions()
        injector = warehouse.attach_faults(
            FaultPolicy(delay_rate=1.0, scope=SCOPE_ALL, seed=5)
        )
        warehouse.apply_update("Order", self.DELTA, policy="defer")
        manager = warehouse.sharding
        stale = [
            view
            for view in manager.shardable_views()
            if manager.copartition_base(view) == "Order"
            and manager.stale_shards(view)
        ]
        assert stale, "the deferred update left no shard stale"

        result = warehouse.serve("Q4", freshness="refresh")
        # The injector was consulted during the refresh/serve: every
        # instrumented table operation drew a (delay-only) decision.
        assert injector.delays > 0
        assert injector.storage_faults == 0
        # The shard-union substitution actually happened.
        assert result.partitions_read
        for view in stale:
            assert manager.stale_shards(view) == ()

        # And the faulted, sharded answer matches the unpruned baseline.
        warehouse.detach_faults()
        unpruned = warehouse.serve("Q4", prune=False)
        assert canonical(result.table) == canonical(unpruned.table)

    def test_union_tables_built_from_wrapped_shards(self):
        warehouse, _, _ = build_sharded()
        warehouse.refresh_partitions()
        injector = warehouse.attach_faults(
            FaultPolicy(delay_rate=1.0, scope=SCOPE_ALL, seed=5)
        )
        before = injector.delays
        result = warehouse.serve("Q2")
        assert isinstance(result.table, Table)
        assert injector.delays > before
        assert result.partitions_read  # pruned scan used shard unions
