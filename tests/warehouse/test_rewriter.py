"""Unit tests for view-based query rewriting."""

import pytest

from repro.algebra.operators import Relation
from repro.algebra.tree import contains, find
from repro.mvpp.cost import MVPPCostCalculator
from repro.mvpp.materialization import select_views
from repro.warehouse.rewriter import rewrite_with_views
from repro.warehouse.view import MaterializedView


@pytest.fixture(scope="module")
def views(paper_mvpp):
    calc = MVPPCostCalculator(paper_mvpp)
    result = select_views(paper_mvpp, calc)
    return [
        MaterializedView(name=f"mv_{v.name}", plan=v.operator)
        for v in result.materialized
    ]


class TestRewrite:
    def test_matched_subtrees_replaced(self, paper_mvpp, views):
        plan = paper_mvpp.query_root("Q1").operator
        rewritten, used = rewrite_with_views(plan, views)
        assert used, "Q1 should read the Product⋈σ(Division) view"
        assert any(
            isinstance(n, Relation) and n.name.startswith("mv_")
            for n in rewritten.walk()
        )

    def test_unmatched_plan_unchanged(self, views, workload):
        leaf = Relation("Part", workload.catalog.schema("Part").qualify())
        rewritten, used = rewrite_with_views(leaf, views)
        assert rewritten is leaf
        assert used == []

    def test_schema_preserved(self, paper_mvpp, views):
        for name in paper_mvpp.query_names:
            plan = paper_mvpp.query_root(name).operator
            rewritten, _ = rewrite_with_views(plan, views)
            assert rewritten.schema.attribute_names == plan.schema.attribute_names

    def test_topmost_match_wins(self, paper_mvpp, views):
        """When a view's own subtree contains another view, only the outer
        one is reported as used."""
        outer = views[0].plan
        nested_views = views + [
            MaterializedView(name="mv_nested", plan=outer.children[0])
        ]
        rewritten, used = rewrite_with_views(outer, nested_views)
        assert isinstance(rewritten, Relation)
        assert len(used) == 1

    def test_every_query_of_design_uses_some_view(self, paper_mvpp, views):
        used_by = {}
        for name in paper_mvpp.query_names:
            plan = paper_mvpp.query_root(name).operator
            _, used = rewrite_with_views(plan, views)
            used_by[name] = {v.name for v in used}
        # The design materialized shared nodes that cover all four queries.
        assert all(used_by.values())
