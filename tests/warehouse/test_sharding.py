"""Sharded warehouse tests: pruned serving, partition-wise refresh.

The contracts under test (see ``docs/distributed.md``):

* pruning is invisible in results — pruned serving returns rows
  identical to the unpruned baseline for every query and seed;
* pruning pays — queries with a selective predicate on a partition key
  read strictly fewer blocks at 8 shards;
* refresh is partition-wise — an update batch leaves only the shards it
  landed on stale on co-partitioned views, and refresh touches exactly
  those;
* parallelism is invisible in results — refresh with 1, 2 and 4 workers
  is bit-identical (rows, measured I/O, epochs).
"""

import datetime

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.distributed.partition import (
    RANGE,
    PartitionScheme,
    range_bounds,
    shard_table_name,
)
from repro.mvpp.config import DesignConfig
from repro.warehouse import DataWarehouse
from repro.workload import paper_rows, paper_workload

SHARDS = 8


def build_sharded(seed=0, scale=0.01, shards=SHARDS, materialize=False):
    workload = paper_workload()
    rows = paper_rows(scale=scale, seed=seed)
    warehouse = DataWarehouse.from_workload(workload)
    warehouse.design(DesignConfig(seed=seed))
    for relation, relation_rows in rows.items():
        warehouse.load(relation, relation_rows)
    schemes = [
        PartitionScheme(
            relation="Division", key="Division.city", shards=shards
        ),
        PartitionScheme(
            relation="Order",
            key="Order.quantity",
            shards=shards,
            kind=RANGE,
            bounds=range_bounds(
                [r["quantity"] for r in rows["Order"]], shards
            ),
        ),
    ]
    warehouse.enable_sharding(schemes, sites=("s0", "s1"), replication=2)
    if materialize:
        warehouse.materialize()
    return warehouse, workload, rows


def canonical(table):
    return sorted(tuple(sorted(row.items())) for row in table.rows())


@pytest.fixture(scope="module")
def sharded():
    return build_sharded()


class TestPrunedServing:
    def test_rows_identical_for_every_query(self, sharded):
        warehouse, workload, _ = sharded
        for spec in workload.queries:
            pruned = warehouse.serve(spec.name, prune=True)
            unpruned = warehouse.serve(spec.name, prune=False)
            assert canonical(pruned.table) == canonical(unpruned.table)

    def test_selective_queries_read_strictly_fewer_blocks(self, sharded):
        """Acceptance criterion: at 8 shards, partition-key-selective
        queries must win strictly on measured block I/O."""
        warehouse, workload, _ = sharded
        selective = 0
        for spec in workload.queries:
            pruned = warehouse.serve(spec.name, prune=True)
            unpruned = warehouse.serve(spec.name, prune=False)
            if pruned.partitions_pruned > 0:
                selective += 1
                assert pruned.io.total < unpruned.io.total, spec.name
        # Q1/Q2/Q3 hit Division.city = 'LA'; Q4 hits quantity > 100.
        assert selective >= 2

    def test_equality_on_hash_key_routes_to_one_shard(self, sharded):
        warehouse, _, _ = sharded
        served = warehouse.serve("Q1", prune=True)
        assert len(served.partitions_read.get("Division", ())) == 1
        assert served.partitions_pruned >= SHARDS - 1

    def test_range_predicate_prunes_range_scheme(self, sharded):
        warehouse, _, _ = sharded
        served = warehouse.serve("Q4", prune=True)
        read = served.partitions_read.get("Order", ())
        assert 0 < len(read) < SHARDS

    def test_unpruned_baseline_reads_every_shard(self, sharded):
        warehouse, _, _ = sharded
        served = warehouse.serve("Q4", prune=False)
        assert len(served.partitions_read.get("Order", ())) == SHARDS
        assert served.partitions_pruned == 0

    def test_materialized_views_still_answer(self):
        """Whole-object views shadow the shard path: serving stays
        correct when the rewriter answers from a stored view."""
        warehouse, workload, _ = build_sharded(materialize=True)
        for spec in workload.queries:
            pruned = warehouse.serve(spec.name, prune=True)
            unpruned = warehouse.serve(spec.name, prune=False)
            assert canonical(pruned.table) == canonical(unpruned.table)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_pruned_serving_is_row_identical_property(self, seed):
        """The issue's hypothesis property: for any data seed, pruned
        serving is row-identical to unpruned serving."""
        warehouse, workload, _ = build_sharded(seed=seed, scale=0.005)
        for spec in workload.queries:
            pruned = warehouse.serve(spec.name, prune=True)
            unpruned = warehouse.serve(spec.name, prune=False)
            assert canonical(pruned.table) == canonical(unpruned.table)


class TestShardStorage:
    def test_shards_partition_the_base_rows(self, sharded):
        warehouse, _, rows = sharded
        scattered = []
        for shard in range(SHARDS):
            name = shard_table_name("Order", shard)
            assert name in warehouse.database
            scattered.extend(warehouse.database.table(name).rows())
        base = warehouse.database.table("Order")
        assert sorted(map(str, scattered)) == sorted(
            map(str, base.rows())
        )

    def test_update_routes_to_owning_shards_only(self):
        warehouse, _, rows = build_sharded()
        scheme = warehouse.sharding.schemes["Order"]
        delta = [
            {
                "Pid": 0,
                "Cid": 0,
                "quantity": 1,
                "date": datetime.date(1996, 3, 1),
            }
        ]
        target = scheme.shard_of(1)
        before = {
            shard: warehouse.sharding.shard_version("Order", shard)
            for shard in scheme.all_shards
        }
        warehouse.apply_update("Order", delta, policy="defer")
        for shard in scheme.all_shards:
            version = warehouse.sharding.shard_version("Order", shard)
            if shard == target:
                assert version == before[shard] + 1
            else:
                assert version == before[shard]

    def test_replica_routing_is_deterministic(self, sharded):
        warehouse, _, _ = sharded
        catalog = warehouse.sharding.catalog
        first = [catalog.route_read("Order", 0) for _ in range(4)]
        sites = sorted(catalog.sites_for("Order", 0))
        assert len(sites) == 2  # replication=2
        # Round-robin over the sorted site list, from wherever the
        # cursor currently stands.
        start = sites.index(first[0])
        expected = [
            sites[(start + offset) % len(sites)] for offset in range(4)
        ]
        assert first == expected


class TestPartitionRefresh:
    def _delta(self, scheme):
        row = {
            "Pid": 0,
            "Cid": 0,
            "quantity": 7,
            "date": datetime.date(1996, 5, 5),
        }
        return [row], scheme.shard_of(7)

    def test_refresh_touches_only_affected_partitions(self):
        warehouse, _, _ = build_sharded()
        warehouse.refresh_partitions()  # baseline: everything fresh
        manager = warehouse.sharding
        delta, target = self._delta(manager.schemes["Order"])
        warehouse.apply_update("Order", delta, policy="defer")
        order_views = [
            v
            for v in manager.shardable_views()
            if manager.copartition_base(v) == "Order"
        ]
        assert order_views, "design should co-partition an Order view"
        for view in order_views:
            assert manager.stale_shards(view) == (target,)
        outcomes = warehouse.refresh_partitions()
        refreshed = sorted(o.view for o in outcomes)
        assert refreshed == sorted(
            f"{view.name}#{target}" for view in order_views
        )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_refresh_is_bit_identical(self, workers):
        """Acceptance criterion: worker count changes wall-clock, never
        rows, measured I/O, or epochs."""

        def run(worker_count):
            warehouse, _, _ = build_sharded()
            warehouse.refresh_partitions(workers=worker_count)
            manager = warehouse.sharding
            delta, _ = self._delta(manager.schemes["Order"])
            warehouse.apply_update("Order", delta, policy="defer")
            outcomes = warehouse.refresh_partitions(workers=worker_count)
            fingerprint = {}
            for view in manager.shardable_views():
                scheme = manager.schemes[manager.copartition_base(view)]
                for shard in scheme.all_shards:
                    name = f"{view.name}#{shard}"
                    if name in warehouse.database:
                        fingerprint[name] = canonical(
                            warehouse.database.table(name)
                        )
            io = warehouse.database.io.snapshot()
            return (
                fingerprint,
                (io.reads, io.writes),
                [(o.view, o.status, o.epoch) for o in outcomes],
            )

        assert run(1) == run(workers)

    def test_serve_refresh_policy_rebuilds_stale_shards(self):
        warehouse, workload, _ = build_sharded()
        warehouse.refresh_partitions()
        manager = warehouse.sharding
        delta, target = self._delta(manager.schemes["Order"])
        warehouse.apply_update("Order", delta, policy="defer")
        warehouse.serve("Q4", freshness="refresh")
        for view in manager.shardable_views():
            if manager.copartition_base(view) == "Order":
                assert manager.stale_shards(view) == ()
