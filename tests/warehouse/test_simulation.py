"""Unit tests for the multi-period warehouse simulator."""

import pytest

from repro.errors import WarehouseError
from repro.warehouse import DataWarehouse, MaterializedView
from repro.warehouse.maintenance import INCREMENTAL
from repro.warehouse.simulation import (
    SimulationConfig,
    WarehouseSimulator,
    simulate,
)
from repro.workload import paper_rows, paper_workload


@pytest.fixture()
def loaded():
    wh = DataWarehouse.from_workload(paper_workload())
    wh.design()
    for relation, rows in paper_rows(scale=0.01, seed=11).items():
        wh.load(relation, rows)
    wh.materialize()
    return wh


class TestConfig:
    def test_validation(self):
        with pytest.raises(WarehouseError):
            SimulationConfig(periods=0)
        with pytest.raises(WarehouseError):
            SimulationConfig(update_batch_size=0)
        with pytest.raises(WarehouseError):
            SimulationConfig(maintenance_policy="defer")


class TestSimulation:
    def test_execution_counts_follow_frequencies(self, loaded):
        report = simulate(loaded, SimulationConfig(periods=4, seed=1))
        # fq: Q1=10, Q2=0.5, Q3=0.8, Q4=5 over 4 periods.
        assert report.query_executions["Q1"] == 40
        assert report.query_executions["Q2"] == 2
        assert report.query_executions["Q3"] == 3  # floor(0.8 * 4)
        assert report.query_executions["Q4"] == 20

    def test_update_batches_follow_fu(self, loaded):
        report = simulate(loaded, SimulationConfig(periods=3, seed=1))
        for relation in ("Product", "Division", "Order", "Customer", "Part"):
            assert report.update_batches[relation] == 3

    def test_io_sides_populated(self, loaded):
        report = simulate(loaded, SimulationConfig(periods=2, seed=2))
        assert report.query_io > 0
        assert report.maintenance_io > 0
        assert report.total_io == report.query_io + report.maintenance_io
        assert report.per_period_io == pytest.approx(report.total_io / 2)

    def test_deterministic_for_seed(self, loaded):
        # Run on two identically-prepared warehouses.
        def build():
            wh = DataWarehouse.from_workload(paper_workload())
            wh.design()
            for relation, rows in paper_rows(scale=0.01, seed=11).items():
                wh.load(relation, rows)
            wh.materialize()
            return simulate(wh, SimulationConfig(periods=2, seed=5))

        a, b = build(), build()
        assert a.total_io == b.total_io
        assert a.query_executions == b.query_executions

    def test_incremental_policy_cheaper_maintenance(self):
        def run(policy):
            wh = DataWarehouse.from_workload(paper_workload())
            wh.design()
            for relation, rows in paper_rows(scale=0.01, seed=11).items():
                wh.load(relation, rows)
            wh.materialize()
            return simulate(
                wh,
                SimulationConfig(periods=2, seed=3, maintenance_policy=policy),
            )

        recompute = run("recompute")
        incremental = run(INCREMENTAL)
        assert incremental.maintenance_io < recompute.maintenance_io


class TestViewMixComparison:
    def test_designed_mix_beats_all_virtual_in_simulation(self, loaded):
        """The analytical objective's verdict holds under simulation: the
        designed views cost less measured I/O than running virtual."""
        designed = simulate(loaded, SimulationConfig(periods=3, seed=7))

        virtual = DataWarehouse.from_workload(paper_workload())
        virtual.design()
        for relation, rows in paper_rows(scale=0.01, seed=11).items():
            virtual.load(relation, rows)
        virtual.install_views([])  # the all-virtual mix
        empty = virtual.materialize()
        assert empty == []
        baseline = simulate(virtual, SimulationConfig(periods=3, seed=7))

        assert designed.total_io < baseline.total_io
        assert baseline.maintenance_io <= designed.maintenance_io

    def test_install_views_custom_mix(self, loaded):
        """A hand-picked single-view mix simulates end to end."""
        design = loaded.design_result
        vertex = design.materialized[0]
        loaded.install_views(
            [MaterializedView(name=f"mv_{vertex.name}", plan=vertex.operator)]
        )
        loaded.materialize()
        report = simulate(loaded, SimulationConfig(periods=1, seed=9))
        assert report.total_io > 0
