"""Unit tests for subsumption-based view rewriting (σ_p answered from σ_q,
p ⇒ q, with a compensating selection)."""

import pytest

from repro.algebra.expressions import column, compare, literal
from repro.algebra.operators import Join, Project, Relation, Select
from repro.algebra.tree import find
from repro.executor.engine import Database, ExecutionEngine
from repro.executor.reference import evaluate
from repro.storage.table import Table
from repro.warehouse.rewriter import rewrite_with_views
from repro.warehouse.view import MaterializedView


@pytest.fixture()
def order_leaf(workload):
    return Relation("Order", workload.catalog.schema("Order").qualify())


@pytest.fixture()
def wide_view(order_leaf):
    """A view over quantity > 50 — wider than any quantity > N, N >= 50."""
    return MaterializedView(
        name="mv_wide",
        plan=Select(order_leaf, compare("Order.quantity", ">", 50)),
    )


class TestSubsumptionMatching:
    def test_stronger_selection_uses_wider_view(self, order_leaf, wide_view):
        query = Select(order_leaf, compare("Order.quantity", ">", 100))
        rewritten, used = rewrite_with_views(query, [wide_view])
        assert used == [wide_view]
        assert isinstance(rewritten, Select)
        assert isinstance(rewritten.child, Relation)
        assert rewritten.child.name == "mv_wide"
        # The compensating predicate is the query's own.
        assert rewritten.predicate.signature == query.predicate.signature

    def test_weaker_selection_not_rewritten(self, order_leaf, wide_view):
        query = Select(order_leaf, compare("Order.quantity", ">", 10))
        rewritten, used = rewrite_with_views(query, [wide_view])
        assert used == []
        assert rewritten is query

    def test_unrelated_predicate_not_rewritten(self, order_leaf, wide_view):
        query = Select(order_leaf, compare("Order.Cid", "=", 5))
        _, used = rewrite_with_views(query, [wide_view])
        assert used == []

    def test_plain_view_body_subsumes_any_selection(self, order_leaf):
        view = MaterializedView(name="mv_all", plan=order_leaf)
        query = Select(order_leaf, compare("Order.quantity", ">", 100))
        rewritten, used = rewrite_with_views(query, [view])
        assert used == [view]
        assert isinstance(rewritten.child, Relation)
        assert rewritten.child.name == "mv_all"

    def test_exact_match_preferred_over_subsumption(self, order_leaf, wide_view):
        exact = MaterializedView(
            name="mv_exact",
            plan=Select(order_leaf, compare("Order.quantity", ">", 100)),
        )
        query = Select(order_leaf, compare("Order.quantity", ">", 100))
        rewritten, used = rewrite_with_views(query, [wide_view, exact])
        assert [v.name for v in used] == ["mv_exact"]
        assert isinstance(rewritten, Relation)

    def test_subsumption_can_be_disabled(self, order_leaf, wide_view):
        query = Select(order_leaf, compare("Order.quantity", ">", 100))
        rewritten, used = rewrite_with_views(
            query, [wide_view], subsumption=False
        )
        assert used == []

    def test_works_below_joins(self, workload, wide_view, order_leaf):
        customer = Relation(
            "Customer", workload.catalog.schema("Customer").qualify()
        )
        query = Join(
            Select(order_leaf, compare("Order.quantity", ">", 150)),
            customer,
            compare("Order.Cid", "=", column("Customer.Cid")),
        )
        rewritten, used = rewrite_with_views(query, [wide_view])
        assert used == [wide_view]
        scans = find(rewritten, lambda n: isinstance(n, Relation))
        assert any(s.name == "mv_wide" for s in scans)


class TestSubsumptionSemantics:
    def test_executed_results_identical(self, workload, order_leaf, wide_view):
        """End to end: the compensated rewrite returns exactly the rows of
        the original plan."""
        import random

        rng = random.Random(3)
        rows = [
            {
                "Order.Pid": i,
                "Order.Cid": i % 7,
                "Order.quantity": rng.randint(1, 200),
                "Order.date": None,
            }
            for i in range(300)
        ]
        database = Database()
        table = Table(workload.catalog.schema("Order").qualify(), 10)
        for row in rows:
            table.insert(row)
        database.register("Order", table)

        # Materialize the wide view by hand.
        engine = ExecutionEngine(database)
        view_table = engine.execute(wide_view.plan)
        stored = Table(view_table.schema, view_table.blocking_factor)
        stored.insert_many(view_table.rows(), count_io=False)
        database.register("mv_wide", stored)

        query = Select(order_leaf, compare("Order.quantity", ">", 120))
        rewritten, used = rewrite_with_views(query, [wide_view])
        assert used == [wide_view]
        direct = engine.execute(query)
        via_view = engine.execute(rewritten)
        key = lambda t: sorted(  # noqa: E731
            tuple(sorted(r.items())) for r in t.rows()
        )
        assert key(direct) == key(via_view)

    def test_view_scan_smaller_than_base(self, workload, order_leaf, wide_view):
        """The point of the rewrite: the wide view has fewer blocks than
        the base relation, so the compensated scan reads less."""
        import random

        rng = random.Random(4)
        database = Database()
        table = Table(workload.catalog.schema("Order").qualify(), 10)
        for i in range(500):
            table.insert(
                {
                    "Order.Pid": i,
                    "Order.Cid": i % 9,
                    "Order.quantity": rng.randint(1, 200),
                    "Order.date": None,
                }
            )
        database.register("Order", table)
        engine = ExecutionEngine(database)
        view_table = engine.execute(wide_view.plan)
        stored = Table(view_table.schema, view_table.blocking_factor, io=database.io)
        stored.insert_many(view_table.rows(), count_io=False)
        database.register("mv_wide", stored)

        query = Select(order_leaf, compare("Order.quantity", ">", 120))
        rewritten, _ = rewrite_with_views(query, [wide_view])
        _, io_direct = engine.run(query)
        _, io_view = engine.run(rewritten)
        assert io_view.total < io_direct.total