"""Unit tests for materialized view definitions."""

import pytest

from repro.mvpp.cost import MVPPCostCalculator
from repro.mvpp.materialization import select_views
from repro.warehouse.view import MaterializedView


@pytest.fixture(scope="module")
def view(paper_mvpp):
    calc = MVPPCostCalculator(paper_mvpp)
    result = select_views(paper_mvpp, calc)
    vertex = result.materialized[0]
    return MaterializedView(name=f"mv_{vertex.name}", plan=vertex.operator)


class TestMaterializedView:
    def test_signature_is_plan_signature(self, view):
        assert view.signature == view.plan.signature

    def test_schema_is_plan_schema(self, view):
        assert view.schema == view.plan.schema

    def test_base_relations(self, view):
        assert view.base_relations
        assert view.base_relations <= {
            "Product",
            "Division",
            "Order",
            "Customer",
            "Part",
        }

    def test_depends_on(self, view):
        some_base = next(iter(view.base_relations))
        assert view.depends_on(some_base)
        assert not view.depends_on("Nonexistent")

    def test_frozen(self, view):
        with pytest.raises(Exception):
            view.name = "other"
