"""Unit tests for the DataWarehouse facade."""

import datetime

import pytest

from repro.errors import WarehouseError
from repro.warehouse import INCREMENTAL, DataWarehouse
from repro.workload import paper_rows, paper_workload


@pytest.fixture()
def warehouse():
    return DataWarehouse.from_workload(paper_workload())


@pytest.fixture()
def loaded(warehouse):
    warehouse.design()
    for relation, rows in paper_rows(scale=0.02, seed=7).items():
        warehouse.load(relation, rows)
    warehouse.materialize()
    return warehouse


class TestRegistration:
    def test_duplicate_query_rejected(self, warehouse):
        with pytest.raises(WarehouseError):
            warehouse.add_query("Q1", "SELECT name FROM Product", 1.0)

    def test_bad_sql_rejected_early(self, warehouse):
        with pytest.raises(Exception):
            warehouse.add_query("bad", "SELECT missing FROM Nowhere", 1.0)

    def test_unknown_relation_frequency_rejected(self, warehouse):
        with pytest.raises(WarehouseError):
            warehouse.set_update_frequency("Nope", 1.0)

    def test_negative_frequency_rejected(self, warehouse):
        with pytest.raises(WarehouseError):
            warehouse.set_update_frequency("Order", -1.0)

    def test_design_requires_queries(self):
        empty = DataWarehouse(
            paper_workload().catalog, paper_workload().statistics
        )
        with pytest.raises(WarehouseError):
            empty.design()


class TestDesign:
    def test_design_installs_views(self, warehouse):
        result = warehouse.design()
        assert warehouse.views
        assert len(warehouse.views) == len(result.materialized)
        assert all(v.name.startswith("mv_") for v in warehouse.views)

    def test_design_invalidated_by_new_query(self, warehouse):
        warehouse.design()
        warehouse.add_query("Q5", "SELECT name FROM Product", 1.0)
        with pytest.raises(WarehouseError):
            warehouse.design_result

    def test_estimated_costs(self, warehouse):
        warehouse.design()
        breakdown = warehouse.estimated_costs()
        assert breakdown.total > 0


class TestExecution:
    def test_results_identical_with_and_without_views(self, loaded):
        for name in ("Q1", "Q2", "Q3", "Q4"):
            with_views, _ = loaded.execute(name, use_views=True)
            without, _ = loaded.execute(name, use_views=False)
            key = lambda t: sorted(  # noqa: E731
                tuple(sorted(r.items())) for r in t.rows()
            )
            assert key(with_views) == key(without), name

    def test_views_reduce_total_io(self, loaded):
        total_views = total_plain = 0
        for name in ("Q1", "Q2", "Q3", "Q4"):
            _, io_views = loaded.execute(name, use_views=True)
            _, io_plain = loaded.execute(name, use_views=False)
            total_views += io_views.total
            total_plain += io_plain.total
        assert total_views < total_plain

    def test_execute_unknown_query(self, loaded):
        with pytest.raises(WarehouseError):
            loaded.execute("Q99")

    def test_execute_requires_data(self, warehouse):
        warehouse.design()
        with pytest.raises(WarehouseError):
            warehouse.execute("Q1")

    def test_execute_without_design_uses_optimizer(self, warehouse):
        for relation, rows in paper_rows(scale=0.01, seed=2).items():
            warehouse.load(relation, rows)
        result, io = warehouse.execute("Q1")
        assert io.total > 0


class TestMaintenanceFlow:
    def test_recompute_refresh_after_update(self, loaded):
        before, _ = loaded.execute("Q4")
        loaded.apply_update(
            "Order",
            [
                {
                    "Pid": 1,
                    "Cid": 2,
                    "quantity": 180,
                    "date": datetime.date(1996, 8, 8),
                }
            ],
        )
        after, _ = loaded.execute("Q4")
        assert after.cardinality == before.cardinality + 1

    def test_incremental_refresh_matches_recompute(self, loaded):
        rows = [
            {"Pid": 5, "Cid": 9, "quantity": 150, "date": datetime.date(1996, 9, 1)}
        ]
        loaded.apply_update("Order", rows, policy=INCREMENTAL)
        incremental, _ = loaded.execute("Q4", use_views=True)
        plain, _ = loaded.execute("Q4", use_views=False)
        key = lambda t: sorted(  # noqa: E731
            tuple(sorted(r.items())) for r in t.rows()
        )
        assert key(incremental) == key(plain)

    def test_unknown_policy_rejected(self, loaded):
        with pytest.raises(WarehouseError):
            loaded.apply_update("Order", [], policy="lazy")

    def test_update_unloaded_relation_rejected(self, warehouse):
        warehouse.design()
        with pytest.raises(WarehouseError):
            warehouse.apply_update("Order", [])


class TestStatisticsSync:
    def test_sync_overwrites_with_actuals(self, loaded):
        loaded.sync_statistics()
        order = loaded.database.table("Order")
        stats = loaded.statistics.relation("Order")
        assert stats.cardinality == order.cardinality
        assert stats.blocks == order.num_blocks
