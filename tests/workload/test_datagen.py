"""Unit tests for synthetic data generation (statistics fidelity)."""

import pytest

from repro.errors import WorkloadError
from repro.workload.datagen import paper_rows, star_rows, synthetic_rows
from repro.workload.generator import GeneratorConfig, generate_workload
from repro.workload.star_schema import StarConfig


class TestPaperRows:
    def test_scaled_sizes(self):
        data = paper_rows(scale=0.01, seed=1)
        assert len(data["Product"]) == 300
        assert len(data["Division"]) == 50
        assert len(data["Order"]) == 500
        assert len(data["Customer"]) == 200
        assert len(data["Part"]) == 800

    def test_selectivities_track_table1(self):
        data = paper_rows(scale=0.2, seed=2)
        orders = data["Order"]
        qty = sum(1 for r in orders if r["quantity"] > 100) / len(orders)
        assert 0.45 <= qty <= 0.55  # paper: s = 0.5
        import datetime

        date = sum(
            1 for r in orders if r["date"] > datetime.date(1996, 7, 1)
        ) / len(orders)
        assert 0.4 <= date <= 0.6  # paper: s = 0.5

    def test_city_selectivity(self):
        data = paper_rows(scale=1.0, seed=3)
        divisions = data["Division"]
        la = sum(1 for r in divisions if r["city"] == "LA") / len(divisions)
        assert 0.01 <= la <= 0.03  # paper: s = 0.02

    def test_foreign_keys_resolve(self):
        data = paper_rows(scale=0.01, seed=4)
        division_ids = {r["Did"] for r in data["Division"]}
        assert all(r["Did"] in division_ids for r in data["Product"])
        product_ids = {r["Pid"] for r in data["Product"]}
        assert all(r["Pid"] in product_ids for r in data["Order"])

    def test_deterministic(self):
        assert paper_rows(scale=0.01, seed=9) == paper_rows(scale=0.01, seed=9)

    def test_bad_scale(self):
        with pytest.raises(WorkloadError):
            paper_rows(scale=0)


class TestSyntheticRows:
    def test_conventions_respected(self):
        generated = generate_workload(GeneratorConfig(seed=7))
        data = synthetic_rows(generated, scale=0.01, seed=7)
        for name, rows in data.items():
            assert rows, name
            targets = generated.foreign_keys[name]
            scaled = {
                t: max(1, int(generated.cardinalities[t] * 0.01)) for t in targets
            }
            for row in rows:
                assert "id" in row and "val" in row and "cat" in row
                for target in targets:
                    assert 0 <= row[f"{target}_fk"] < scaled[target]

    def test_loadable_into_database(self):
        from repro.executor.engine import load_database

        generated = generate_workload(GeneratorConfig(seed=8))
        data = synthetic_rows(generated, scale=0.005, seed=8)
        database = load_database(data, generated.workload.catalog)
        for name in generated.workload.catalog.relation_names:
            assert database.table(name).cardinality == len(data[name])


class TestStarRows:
    def test_shapes(self):
        config = StarConfig(num_dimensions=3, fact_rows=10_000, dimension_rows=500)
        data = star_rows(config, scale=0.1, seed=1)
        assert len(data["Fact"]) == 1_000
        assert len(data["Dim1"]) == 50
        assert {"Dim1", "Dim2", "Dim3", "Fact"} == set(data)

    def test_fact_fks_resolve(self):
        config = StarConfig(num_dimensions=2)
        data = star_rows(config, scale=0.01, seed=2)
        dim_count = len(data["Dim1"])
        for row in data["Fact"]:
            assert 0 <= row["Dim1_fk"] < dim_count
