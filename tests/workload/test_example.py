"""Unit tests for the paper-example workload (Table 1 fidelity)."""

import pytest

from repro.algebra.expressions import compare, literal
from repro.optimizer.cardinality import CardinalityEstimator
from repro.workload.example import (
    Q3_DATE,
    paper_statistics,
    paper_workload,
    paper_workload_fig7,
)


class TestTable1:
    @pytest.mark.parametrize(
        "relation,cardinality,blocks",
        [
            ("Product", 30_000, 3_000),
            ("Division", 5_000, 500),
            ("Order", 50_000, 6_000),
            ("Customer", 20_000, 2_000),
            ("Part", 80_000, 10_000),
        ],
    )
    def test_relation_sizes(self, relation, cardinality, blocks):
        stats = paper_statistics().relation(relation)
        assert stats.cardinality == cardinality
        assert stats.blocks == blocks

    def test_selection_selectivities(self):
        stats = paper_statistics()
        city = compare("Division.city", "=", literal("LA"))
        assert stats.predicate_selectivity(city.signature) == 0.02
        date = compare("Order.date", ">", literal(Q3_DATE))
        assert stats.predicate_selectivity(date.signature) == 0.5
        quantity = compare("Order.quantity", ">", literal(100))
        assert stats.predicate_selectivity(quantity.signature) == 0.5

    def test_join_selectivities(self):
        stats = paper_statistics()
        assert stats.join_selectivity("Product.Did", "Division.Did") == 1 / 5_000
        assert stats.join_selectivity("Order.Cid", "Customer.Cid") == 1 / 20_000
        assert stats.join_selectivity("Part.Pid", "Product.Pid") == 1 / 30_000
        assert stats.join_selectivity("Product.Pid", "Order.Pid") == 1 / 30_000


class TestWorkload:
    def test_four_queries_with_paper_frequencies(self):
        workload = paper_workload()
        frequencies = {q.name: q.frequency for q in workload.queries}
        assert frequencies == {"Q1": 10.0, "Q2": 0.5, "Q3": 0.8, "Q4": 5.0}

    def test_all_base_relations_updated_once(self):
        workload = paper_workload()
        for name in workload.catalog.relation_names:
            assert workload.update_frequency(name) == 1.0

    def test_unknown_query_raises(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            paper_workload().query("Q9")

    def test_queries_parse_and_estimate(self):
        from repro.sql.translator import parse_query

        workload = paper_workload()
        estimator = CardinalityEstimator(workload.statistics)
        for spec in workload.queries:
            plan = parse_query(spec.sql, workload.catalog)
            assert estimator.estimate(plan).cardinality >= 0


class TestFig7Variant:
    def test_different_division_selections(self):
        variant = paper_workload_fig7()
        assert "name = 'Re'" in variant.query("Q2").sql
        assert "city = 'SF'" in variant.query("Q3").sql

    def test_variant_selectivities_registered(self):
        variant = paper_workload_fig7()
        name_re = compare("Division.name", "=", literal("Re"))
        assert variant.statistics.predicate_selectivity(name_re.signature) == 1 / 5_000
