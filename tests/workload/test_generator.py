"""Unit tests for the synthetic SPJ workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.sql.translator import parse_query
from repro.optimizer.cardinality import CardinalityEstimator
from repro.workload.generator import GeneratorConfig, generate_workload


class TestConfigValidation:
    def test_bad_relation_count(self):
        with pytest.raises(WorkloadError):
            GeneratorConfig(num_relations=0)

    def test_bad_cardinality_range(self):
        with pytest.raises(WorkloadError):
            GeneratorConfig(min_cardinality=100, max_cardinality=10)

    def test_bad_probability(self):
        with pytest.raises(WorkloadError):
            GeneratorConfig(selection_probability=1.5)


class TestDeterminism:
    def test_same_seed_same_workload(self):
        a = generate_workload(GeneratorConfig(seed=5))
        b = generate_workload(GeneratorConfig(seed=5))
        assert [q.sql for q in a.workload.queries] == [
            q.sql for q in b.workload.queries
        ]
        assert a.cardinalities == b.cardinalities

    def test_different_seeds_differ(self):
        a = generate_workload(GeneratorConfig(seed=1))
        b = generate_workload(GeneratorConfig(seed=2))
        assert [q.sql for q in a.workload.queries] != [
            q.sql for q in b.workload.queries
        ] or a.cardinalities != b.cardinalities


class TestStructure:
    @pytest.fixture(scope="class")
    def generated(self):
        return generate_workload(GeneratorConfig(num_relations=6, num_queries=8, seed=3))

    def test_relation_count(self, generated):
        assert len(generated.workload.catalog) == 6

    def test_fk_graph_acyclic(self, generated):
        for relation, targets in generated.foreign_keys.items():
            index = int(relation[1:])
            for target in targets:
                assert int(target[1:]) < index

    def test_statistics_registered_for_all(self, generated):
        for name in generated.workload.catalog.relation_names:
            assert generated.workload.statistics.has_relation(name)

    def test_fk_join_selectivities_registered(self, generated):
        stats = generated.workload.statistics
        for relation, targets in generated.foreign_keys.items():
            for target in targets:
                js = stats.join_selectivity(f"{relation}.{target}_fk", f"{target}.id")
                assert js == pytest.approx(1.0 / generated.cardinalities[target])

    def test_queries_parse_and_optimize(self, generated):
        from repro.optimizer.heuristics import optimize_query

        estimator = CardinalityEstimator(generated.workload.statistics)
        for spec in generated.workload.queries:
            plan = parse_query(spec.sql, generated.workload.catalog)
            optimized = optimize_query(plan, estimator)
            assert optimized.schema.arity >= 1

    def test_frequencies_in_range(self, generated):
        config = GeneratorConfig()
        for spec in generated.workload.queries:
            assert config.min_frequency <= spec.frequency <= config.max_frequency

    def test_query_relations_connected(self, generated):
        """No accidental cross products: every generated multi-relation
        query joins through FK edges."""
        from repro.algebra.operators import Join
        from repro.algebra.tree import find

        for spec in generated.workload.queries:
            plan = parse_query(spec.sql, generated.workload.catalog)
            for join in find(plan, lambda n: isinstance(n, Join)):
                assert join.condition is not None, spec.sql
