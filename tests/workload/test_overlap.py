"""Unit tests for the overlap-controlled workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.mvpp import generate_mvpps
from repro.sql.translator import parse_query
from repro.workload.overlap import OverlapConfig, overlap_workload


class TestConfig:
    def test_overlap_range_validated(self):
        with pytest.raises(WorkloadError):
            OverlapConfig(overlap=1.5)

    def test_core_size_validated(self):
        with pytest.raises(WorkloadError):
            OverlapConfig(core_size=1)


class TestGeneration:
    def test_deterministic(self):
        a = overlap_workload(OverlapConfig(seed=3))
        b = overlap_workload(OverlapConfig(seed=3))
        assert [q.sql for q in a.queries] == [q.sql for q in b.queries]

    def test_queries_parse(self):
        workload = overlap_workload(OverlapConfig(num_queries=5, seed=4))
        for spec in workload.queries:
            plan = parse_query(spec.sql, workload.catalog)
            assert len(plan.base_relations()) >= 2

    def test_full_overlap_shares_join_cores(self):
        workload = overlap_workload(
            OverlapConfig(overlap=1.0, num_cores=1, num_queries=5, seed=5)
        )
        cores = {
            frozenset(parse_query(q.sql, workload.catalog).base_relations())
            for q in workload.queries
        }
        assert len(cores) == 1  # every query over the single shared core

    def test_zero_overlap_varies_cores(self):
        workload = overlap_workload(
            OverlapConfig(overlap=0.0, num_queries=8, seed=6)
        )
        cores = {
            frozenset(parse_query(q.sql, workload.catalog).base_relations())
            for q in workload.queries
        }
        assert len(cores) > 1

    def test_sharing_visible_in_mvpp(self):
        workload = overlap_workload(
            OverlapConfig(overlap=1.0, num_cores=1, num_queries=4, seed=7)
        )
        mvpp = generate_mvpps(workload, rotations=1)[0]
        max_fanout = max(
            len(mvpp.queries_using(v)) for v in mvpp.operations
        )
        assert max_fanout >= 3  # the shared core serves most queries
