"""Unit tests for frequency estimation from a query log."""

import pytest

from repro.errors import WorkloadError, WorkloadWarning
from repro.workload import paper_workload
from repro.workload.query_log import (
    FrequencyEstimate,
    LogEntry,
    apply_to_workload,
    estimate_frequencies,
)


def make_log():
    """Ten periods of 100s each: Q1 runs 10x/period, Q2 once per 2
    periods, Order updated once per period."""
    entries = []
    for period in range(10):
        base = period * 100.0
        for i in range(10):
            entries.append(LogEntry("query", "Q1", base + i))
        if period % 2 == 0:
            entries.append(LogEntry("query", "Q2", base + 50))
        entries.append(LogEntry("update", "Order", base + 99))
    return entries


class TestEstimate:
    def test_uniform_rates_recovered(self):
        estimate = estimate_frequencies(make_log(), period=100.0)
        assert estimate.query_frequencies["Q1"] == pytest.approx(10.0, rel=0.15)
        assert estimate.query_frequencies["Q2"] == pytest.approx(0.5, rel=0.25)
        assert estimate.update_frequencies["Order"] == pytest.approx(1.0, rel=0.15)

    def test_empty_log_rejected(self):
        with pytest.raises(WorkloadError):
            estimate_frequencies([], period=1.0)

    def test_bad_period_rejected(self):
        with pytest.raises(WorkloadError):
            estimate_frequencies(make_log(), period=0)

    def test_bad_kind_rejected(self):
        with pytest.raises(WorkloadError):
            LogEntry("wish", "Q1", 0.0)

    def test_decay_prefers_recent_behaviour(self):
        """Q1 was hot early and went quiet; Q2 took over.  With decay the
        estimate ranks Q2 above Q1; without, Q1 dominates."""
        entries = []
        for period in range(10):
            base = period * 100.0
            name = "Q1" if period < 5 else "Q2"
            for i in range(8):
                entries.append(LogEntry("query", name, base + i))
        flat = estimate_frequencies(entries, period=100.0)
        decayed = estimate_frequencies(
            entries, period=100.0, half_life_periods=1.0
        )
        assert flat.query_frequencies["Q1"] == flat.query_frequencies["Q2"]
        assert (
            decayed.query_frequencies["Q2"]
            > decayed.query_frequencies["Q1"] * 4
        )

    def test_single_event_log(self):
        estimate = estimate_frequencies(
            [LogEntry("query", "Q1", 5.0)], period=10.0
        )
        assert estimate.query_frequencies["Q1"] == 1.0


class TestApplyToWorkload:
    def test_frequencies_replaced(self):
        workload = paper_workload()
        estimate = FrequencyEstimate(
            query_frequencies={"Q1": 3.0, "Q4": 7.0},
            update_frequencies={"Order": 2.0},
            periods=5.0,
        )
        observed = apply_to_workload(workload, estimate)
        assert observed.query("Q1").frequency == 3.0
        assert observed.query("Q4").frequency == 7.0
        assert observed.query("Q2").frequency == 0.0  # unobserved
        assert observed.update_frequency("Order") == 2.0
        assert observed.update_frequency("Part") == 1.0  # untouched

    def test_drop_unobserved(self):
        workload = paper_workload()
        estimate = FrequencyEstimate({"Q1": 1.0}, {}, 1.0)
        observed = apply_to_workload(
            workload, estimate, drop_unobserved_queries=True
        )
        assert [q.name for q in observed.queries] == ["Q1"]

    def test_all_dropped_rejected(self):
        workload = paper_workload()
        estimate = FrequencyEstimate({"Q99": 1.0}, {}, 1.0)
        with pytest.warns(WorkloadWarning), pytest.raises(WorkloadError):
            apply_to_workload(workload, estimate, drop_unobserved_queries=True)

    def test_unknown_relations_ignored_with_warning(self):
        workload = paper_workload()
        estimate = FrequencyEstimate({"Q1": 1.0}, {"Elsewhere": 9.0}, 1.0)
        with pytest.warns(WorkloadWarning, match="'Elsewhere'"):
            observed = apply_to_workload(workload, estimate)
        assert "Elsewhere" not in observed.update_frequencies

    def test_unknown_queries_ignored_with_warning(self):
        workload = paper_workload()
        estimate = FrequencyEstimate({"Q1": 2.0, "Q99": 5.0}, {}, 1.0)
        with pytest.warns(WorkloadWarning, match="'Q99'"):
            observed = apply_to_workload(workload, estimate)
        assert observed.query("Q1").frequency == 2.0
        assert "Q99" not in {q.name for q in observed.queries}

    def test_known_names_warn_nothing(self):
        import warnings

        workload = paper_workload()
        estimate = FrequencyEstimate({"Q1": 2.0}, {"Order": 3.0}, 1.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            apply_to_workload(workload, estimate)

    def test_design_from_observed_frequencies(self):
        """A log-derived workload flows through the design pipeline, and
        skewed observations steer the design: if only Q4 is ever asked,
        only Q4's lineage is worth materializing."""
        from repro.mvpp import design

        workload = paper_workload()
        estimate = FrequencyEstimate({"Q4": 20.0}, {}, 1.0)
        observed = apply_to_workload(workload, estimate)
        result = design(observed, rotations=1)
        for vertex in result.materialized:
            assert vertex.operator.base_relations() <= {"Order", "Customer"}
