"""Unit tests for the star-schema workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.sql.translator import parse_query
from repro.workload.star_schema import StarConfig, star_workload


class TestStarWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        return star_workload(StarConfig(num_dimensions=3, num_queries=5, seed=4))

    def test_schema_shape(self, workload):
        assert "Fact" in workload.catalog
        assert {"Dim1", "Dim2", "Dim3"} <= set(workload.catalog.relation_names)
        fact = workload.catalog.schema("Fact")
        assert "Dim2_fk" in fact

    def test_queries_parse(self, workload):
        for spec in workload.queries:
            plan = parse_query(spec.sql, workload.catalog)
            assert "Fact" in plan.base_relations()

    def test_fact_updates_hotter_than_dims(self, workload):
        assert workload.update_frequency("Fact") > workload.update_frequency("Dim1")

    def test_aggregate_queries_when_enabled(self):
        workload = star_workload(
            StarConfig(num_queries=12, include_aggregates=True, seed=11)
        )
        assert any("GROUP BY" in q.sql for q in workload.queries)
        for spec in workload.queries:
            parse_query(spec.sql, workload.catalog)  # must all translate

    def test_deterministic(self):
        a = star_workload(StarConfig(seed=5))
        b = star_workload(StarConfig(seed=5))
        assert [q.sql for q in a.queries] == [q.sql for q in b.queries]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            StarConfig(num_dimensions=0)

    def test_designable(self):
        """A star workload flows through the full design pipeline."""
        from repro.mvpp.generation import design

        workload = star_workload(StarConfig(num_dimensions=2, num_queries=3, seed=6))
        result = design(workload, rotations=1)
        assert result.breakdown.total > 0
